"""Tests for the optimistic and conservative NTP DDoS classifiers."""

import numpy as np
import pytest

from repro.core.classify import (
    ClassifierThresholds,
    ConservativeClassifier,
    OptimisticClassifier,
)
from repro.flows.records import FlowTable
from repro.flows.timeseries import per_destination_stats


def ntp_flows(n, src_port=123, size=487, packets=1000, dst=None, src=None, time=None):
    dst = np.full(n, 1, dtype=np.uint32) if dst is None else np.asarray(dst, dtype=np.uint32)
    src = np.arange(n, dtype=np.uint32) if src is None else np.asarray(src, dtype=np.uint32)
    time = np.zeros(n) if time is None else np.asarray(time, dtype=float)
    return FlowTable(
        {
            "time": time,
            "src_ip": src,
            "dst_ip": dst,
            "proto": np.full(n, 17, dtype=np.uint8),
            "src_port": np.full(n, src_port, dtype=np.uint16),
            "dst_port": np.full(n, 50000, dtype=np.uint16),
            "packets": np.full(n, packets, dtype=np.int64),
            "bytes": np.full(n, packets * size, dtype=np.int64),
        }
    )


class TestThresholds:
    def test_defaults_match_paper(self):
        t = ClassifierThresholds()
        assert t.port == 123
        assert t.min_mean_packet_size == 200.0
        assert t.min_peak_gbps == 1.0
        assert t.min_sources == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ClassifierThresholds(port=0)
        with pytest.raises(ValueError):
            ClassifierThresholds(min_mean_packet_size=-1)
        with pytest.raises(ValueError):
            ClassifierThresholds(min_peak_gbps=-1)
        with pytest.raises(ValueError):
            ClassifierThresholds(min_sources=-1)


class TestOptimisticClassifier:
    def test_separates_by_size(self):
        clf = OptimisticClassifier()
        big = ntp_flows(5, size=487)
        small = ntp_flows(5, size=90)
        both = FlowTable.concat([big, small])
        assert len(clf.amplification_flows(both)) == 5
        assert len(clf.benign_flows(both)) == 5

    def test_threshold_exclusive(self):
        clf = OptimisticClassifier()
        exactly_200 = ntp_flows(1, size=200)
        assert len(clf.amplification_flows(exactly_200)) == 0
        assert len(clf.benign_flows(exactly_200)) == 1

    def test_ignores_other_ports(self):
        clf = OptimisticClassifier()
        dns = ntp_flows(3, src_port=53, size=487)
        assert len(clf.amplification_flows(dns)) == 0

    def test_victim_destinations(self):
        clf = OptimisticClassifier()
        t = ntp_flows(4, dst=[1, 1, 2, 3])
        np.testing.assert_array_equal(clf.victim_destinations(t), [1, 2, 3])

    def test_packet_size_sample_weighted(self):
        clf = OptimisticClassifier()
        t = FlowTable.concat([ntp_flows(1, size=487, packets=30), ntp_flows(1, size=90, packets=10)])
        sample = clf.packet_size_sample(t)
        assert sample.size == 40
        assert np.mean(sample > 200) == pytest.approx(0.75)

    def test_packet_size_sample_empty(self):
        clf = OptimisticClassifier()
        assert clf.packet_size_sample(FlowTable.empty()).size == 0


class TestConservativeClassifier:
    def big_attack(self):
        """300 sources, ~2 Gbps in one minute to dst 1."""
        n = 300
        per_flow_bytes = int(2e9 / 8 * 60 / n)
        packets = per_flow_bytes // 487
        return ntp_flows(n, packets=packets, dst=np.ones(n))

    def small_attack(self):
        """5 sources, low rate to dst 2."""
        return ntp_flows(5, packets=100, dst=np.full(5, 2), src=np.arange(5))

    def test_classify_keeps_only_real_attacks(self):
        clf = ConservativeClassifier()
        both = FlowTable.concat([self.big_attack(), self.small_attack()])
        stats = clf.classify_flows(both)
        assert len(stats) == 1
        assert stats.destinations[0] == 1

    def test_sampling_renormalization(self):
        """A sampled trace needs renormalization to cross the Gbps bar."""
        clf = ConservativeClassifier()
        attack = self.big_attack()
        # Thin counters by 100x: raw rate is now ~20 Mbps.
        thinned = attack.scale_counts(0.01)
        stats = per_destination_stats(thinned)
        assert not clf.destination_mask(stats, sampling_factor=1.0).any()
        assert clf.destination_mask(stats, sampling_factor=100.0).all()

    def test_source_counts_not_renormalized(self):
        clf = ConservativeClassifier()
        few_sources = ntp_flows(3, packets=10_000_000, dst=np.ones(3))
        stats = per_destination_stats(few_sources)
        # Plenty of traffic but only 3 sources: never classified.
        assert not clf.destination_mask(stats, sampling_factor=100.0).any()

    def test_rule_reductions(self):
        clf = ConservativeClassifier()
        both = FlowTable.concat([self.big_attack(), self.small_attack()])
        stats = per_destination_stats(
            OptimisticClassifier().amplification_flows(both)
        )
        red = clf.rule_reductions(stats)
        assert red["both"] == pytest.approx(0.5)
        assert 0.0 <= red["rule_a_only"] <= red["both"]
        assert 0.0 <= red["rule_b_only"] <= red["both"]

    def test_rule_reductions_empty(self):
        clf = ConservativeClassifier()
        stats = per_destination_stats(FlowTable.empty())
        assert clf.rule_reductions(stats)["both"] == 0.0

    def test_invalid_sampling_factor(self):
        clf = ConservativeClassifier()
        stats = per_destination_stats(self.big_attack())
        with pytest.raises(ValueError):
            clf.destination_mask(stats, sampling_factor=0)
        with pytest.raises(ValueError):
            clf.rule_reductions(stats, sampling_factor=0)
