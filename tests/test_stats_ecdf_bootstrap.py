"""Tests for ECDF/PDF helpers and bootstrap CIs."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats.bootstrap import bootstrap_mean_ci, bootstrap_ratio_ci
from repro.stats.ecdf import Ecdf, empirical_pdf


class TestEcdf:
    def test_basic(self):
        e = Ecdf.from_sample(np.array([1.0, 2.0, 2.0, 3.0]))
        assert e.evaluate(0.5) == 0.0
        assert e.evaluate(1.0) == pytest.approx(0.25)
        assert e.evaluate(2.0) == pytest.approx(0.75)
        assert e.evaluate(10.0) == 1.0

    def test_vector_evaluate(self):
        e = Ecdf.from_sample(np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_allclose(e.evaluate(np.array([1.0, 3.0])), [0.25, 0.75])

    def test_quantile(self):
        e = Ecdf.from_sample(np.arange(1, 101, dtype=float))
        assert e.quantile(0.5) == 50.0
        assert e.quantile(1.0) == 100.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Ecdf.from_sample(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Ecdf.from_sample(np.array([1.0, np.nan]))

    def test_quantile_validation(self):
        e = Ecdf.from_sample(np.array([1.0]))
        with pytest.raises(ValueError):
            e.quantile(0.0)

    @given(hnp.arrays(np.float64, st.integers(1, 50), elements=st.floats(-100, 100)))
    def test_monotone_and_bounded(self, sample):
        e = Ecdf.from_sample(sample)
        assert (np.diff(e.y) >= 0).all()
        assert e.y[-1] == pytest.approx(1.0)
        assert e.y[0] > 0


class TestEmpiricalPdf:
    def test_integrates_to_one(self):
        sample = np.random.default_rng(0).normal(0, 1, 10_000)
        centers, density = empirical_pdf(sample, bins=40)
        width = centers[1] - centers[0]
        assert np.sum(density * width) == pytest.approx(1.0, rel=1e-6)

    def test_range_restriction(self):
        centers, _ = empirical_pdf(np.array([1.0, 2.0, 3.0]), bins=4, range_=(0, 4))
        assert centers.min() >= 0 and centers.max() <= 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_pdf(np.array([]))


class TestBootstrap:
    def test_mean_ci_covers_truth(self):
        rng = np.random.default_rng(5)
        sample = rng.normal(50, 5, 200)
        ci = bootstrap_mean_ci(sample, rng)
        assert ci.contains(50.0)
        assert ci.low < ci.estimate < ci.high

    def test_ratio_ci(self):
        rng = np.random.default_rng(6)
        before = rng.normal(100, 10, 60)
        after = rng.normal(25, 5, 60)
        ci = bootstrap_ratio_ci(before, after, rng)
        assert ci.contains(ci.estimate)
        assert ci.estimate == pytest.approx(0.25, abs=0.05)
        assert ci.width < 0.2

    def test_mean_ci_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([1.0]), rng)
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([1.0, 2.0]), rng, confidence=1.0)

    def test_ratio_ci_zero_before_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bootstrap_ratio_ci(np.zeros(5), np.ones(5), rng)
