"""Tests for the measurement-AS router: ingress selection and BGP flaps."""

import numpy as np
import pytest

from repro.netmodel.asn import ASRegistry, ASRole, AutonomousSystem
from repro.netmodel.router import BGPSession, MeasurementRouter, RouteOrigin
from repro.netmodel.topology import ASTopology


@pytest.fixture
def setup():
    """Registry: transit T (AS1), member M (AS11) with customer C (AS21),
    non-member N (AS31), measurement AS (AS99, member)."""
    reg = ASRegistry()
    reg.register(AutonomousSystem(1, ASRole.TIER1, name="T"))
    reg.register(AutonomousSystem(11, ASRole.TIER2, ixp_member=True, name="M"))
    reg.register(AutonomousSystem(21, ASRole.STUB, name="C"))
    reg.register(AutonomousSystem(31, ASRole.STUB, name="N"))
    reg.register(AutonomousSystem(99, ASRole.MEASUREMENT, ixp_member=True, name="ME"))
    topo = ASTopology(reg)
    topo.add_customer_provider(11, 1)
    topo.add_customer_provider(21, 11)
    topo.add_customer_provider(31, 1)
    topo.add_customer_provider(99, 1)
    topo.add_peering(11, 99, via_ixp=True)
    return reg, topo


class TestIngressSelection:
    def test_member_arrives_via_peering(self, setup):
        reg, topo = setup
        router = MeasurementRouter(reg, topo, asn=99, transit_provider=1)
        origin, peer = router.ingress_for_source(11)
        assert origin is RouteOrigin.IXP_PEERING
        assert peer == 11

    def test_member_cone_arrives_via_that_member(self, setup):
        reg, topo = setup
        router = MeasurementRouter(reg, topo, asn=99, transit_provider=1)
        origin, peer = router.ingress_for_source(21)
        assert origin is RouteOrigin.IXP_PEERING
        assert peer == 11

    def test_non_member_uses_transit(self, setup):
        reg, topo = setup
        router = MeasurementRouter(reg, topo, asn=99, transit_provider=1)
        origin, peer = router.ingress_for_source(31)
        assert origin is RouteOrigin.TRANSIT
        assert peer == 1

    def test_transit_disabled_drops_non_members(self, setup):
        reg, topo = setup
        router = MeasurementRouter(reg, topo, asn=99, transit_provider=1, transit_enabled=False)
        origin, peer = router.ingress_for_source(31)
        assert origin is RouteOrigin.UNREACHABLE
        assert peer is None
        # Members still reachable.
        assert router.ingress_for_source(11)[0] is RouteOrigin.IXP_PEERING

    def test_vectorized_matches_scalar(self, setup):
        reg, topo = setup
        router = MeasurementRouter(reg, topo, asn=99, transit_provider=1)
        srcs = np.array([11, 21, 31, 11])
        origins, handover = router.ingress_for_sources(srcs)
        np.testing.assert_array_equal(origins, [1, 1, 0, 1])
        np.testing.assert_array_equal(handover, [11, 11, 1, 11])

    def test_source_is_self_rejected(self, setup):
        reg, topo = setup
        router = MeasurementRouter(reg, topo, asn=99, transit_provider=1)
        with pytest.raises(ValueError):
            router.ingress_for_source(99)

    def test_unknown_transit_provider_rejected(self, setup):
        reg, topo = setup
        with pytest.raises(KeyError):
            MeasurementRouter(reg, topo, asn=99, transit_provider=777)


class TestBGPSession:
    def test_stays_up_below_capacity(self):
        s = BGPSession(capacity_bps=10e9, trigger_seconds=3, holddown_seconds=5)
        assert all(s.step(5e9) for _ in range(100))
        assert s.flap_count == 0

    def test_flaps_after_sustained_saturation(self):
        s = BGPSession(capacity_bps=10e9, trigger_seconds=3, holddown_seconds=5)
        states = [s.step(20e9) for _ in range(20)]
        assert not all(states)
        assert s.flap_count >= 1
        # First trigger_seconds of saturation still up, then down.
        assert states[0] and states[1]
        assert not states[3]

    def test_recovers_after_holddown(self):
        s = BGPSession(capacity_bps=10e9, trigger_seconds=2, holddown_seconds=3)
        for _ in range(2):
            s.step(20e9)  # triggers the flap
        downs = [s.step(1e9) for _ in range(3)]
        assert not any(downs)
        assert s.step(1e9)  # re-established

    def test_short_burst_does_not_flap(self):
        s = BGPSession(capacity_bps=10e9, trigger_seconds=5, holddown_seconds=5)
        for _ in range(4):
            assert s.step(20e9)
        assert s.step(1e9)  # streak reset
        assert s.flap_count == 0

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            BGPSession(capacity_bps=1.0).step(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BGPSession(capacity_bps=0)
        with pytest.raises(ValueError):
            BGPSession(capacity_bps=1, trigger_seconds=0)


class TestDeliverTimeseries:
    def test_capacity_clipping(self, setup):
        reg, topo = setup
        router = MeasurementRouter(reg, topo, asn=99, transit_provider=1, capacity_bps=10e9)
        transit = np.full(5, 4e9)
        peering = np.full(5, 4e9)
        delivered, up = router.deliver_timeseries(transit, peering)
        assert (delivered <= 10e9).all()
        assert up.all()

    def test_flap_produces_dropout(self, setup):
        """A sustained 20 Gbps offered load produces the Figure 1(b) dip."""
        reg, topo = setup
        router = MeasurementRouter(reg, topo, asn=99, transit_provider=1, capacity_bps=10e9)
        n = 120
        transit = np.full(n, 16e9)  # ~80% via transit, as in the paper
        peering = np.full(n, 4e9)
        delivered, up = router.deliver_timeseries(transit, peering)
        assert not up.all()  # the session flapped
        # While down, only peering traffic is delivered.
        assert delivered[~up].max() == pytest.approx(4e9)

    def test_transit_disabled_never_up(self, setup):
        reg, topo = setup
        router = MeasurementRouter(
            reg, topo, asn=99, transit_provider=1, transit_enabled=False
        )
        delivered, up = router.deliver_timeseries(np.full(3, 1e9), np.full(3, 2e9))
        assert not up.any()
        np.testing.assert_allclose(delivered, 2e9)

    def test_misaligned_series_rejected(self, setup):
        reg, topo = setup
        router = MeasurementRouter(reg, topo, asn=99, transit_provider=1)
        with pytest.raises(ValueError):
            router.deliver_timeseries(np.ones(3), np.ones(4))
