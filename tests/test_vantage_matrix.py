"""VisibilityMatrix: parity with the lazy oracle, indexing, invalidation."""

import numpy as np
import pytest

from repro.netmodel.topology import TopologyConfig, build_topology
from repro.obs import MetricsRegistry, use_metrics
from repro.scenario import Scenario, ScenarioConfig
from repro.stats.rng import SeedSequenceTree
from repro.vantage.matrix import VisibilityMatrix
from repro.vantage.visibility import FlowVisibility


@pytest.fixture(scope="module")
def tiny_world():
    """A full Scenario world (topology + attached observatory AS)."""
    config = ScenarioConfig(
        seed=99,
        scale=0.05,
        topology=TopologyConfig(n_tier1=3, n_tier2=8, n_stub=30),
    )
    return Scenario(config)


class TestOracleParity:
    """The dense tables must be bit-identical to the per-pair oracle."""

    def test_ixp_all_pairs(self, tiny_world):
        topo = tiny_world.topology
        matrix = VisibilityMatrix(topo)
        oracle = FlowVisibility(topo)  # no matrix: pure lazy path
        visible, peer = matrix.ixp_tables()
        asns = matrix.asns.tolist()
        for i, src in enumerate(asns):
            for j, dst in enumerate(asns):
                verdict = oracle.at_ixp(src, dst)
                assert visible[i, j] == verdict.visible, (src, dst)
                assert peer[i, j] == verdict.peer_asn, (src, dst)

    @pytest.mark.parametrize("ingress_only", [True, False])
    def test_isp_all_pairs(self, tiny_world, ingress_only):
        topo = tiny_world.topology
        matrix = VisibilityMatrix(topo)
        oracle = FlowVisibility(topo)
        observer = tiny_world.tier1.asn if ingress_only else tiny_world.tier2.asn
        visible, peer = matrix.isp_tables(observer, ingress_only)
        asns = matrix.asns.tolist()
        for i, src in enumerate(asns):
            for j, dst in enumerate(asns):
                verdict = oracle.at_isp(observer, src, dst, ingress_only)
                assert visible[i, j] == verdict.visible, (src, dst)
                assert peer[i, j] == verdict.peer_asn, (src, dst)

    def test_observatory_as_is_covered(self, tiny_world):
        """The measurement AS attached post-build must appear in the index."""
        observatory_asn = tiny_world.config.observatory_asn
        matrix = tiny_world.visibility.matrix
        assert matrix is not None
        idx = matrix.index_of(np.array([observatory_asn]))
        assert idx[0] >= 0

    def test_unknown_observer_raises(self, tiny_world):
        matrix = VisibilityMatrix(tiny_world.topology)
        with pytest.raises(KeyError):
            matrix.isp_tables(999_999, True)


class TestMaskFallback:
    """Mask methods agree with the oracle when ASNs fall outside the registry."""

    def _pairs_with_unknowns(self, topo):
        asns = sorted(topo.asns)
        src = np.array([asns[0], -1, asns[3], asns[5], -1, 999_999], dtype=np.int64)
        dst = np.array([asns[4], asns[2], -1, asns[1], -1, asns[0]], dtype=np.int64)
        return src, dst

    def test_ixp_mask_matches_oracle(self, tiny_world):
        topo = tiny_world.topology
        with_matrix = FlowVisibility(topo, matrix=VisibilityMatrix(topo))
        oracle = FlowVisibility(topo)
        src, dst = self._pairs_with_unknowns(topo)
        vis_m, peer_m = with_matrix.ixp_mask(src, dst)
        vis_o, peer_o = oracle.ixp_mask(src, dst)
        np.testing.assert_array_equal(vis_m, vis_o)
        np.testing.assert_array_equal(peer_m, peer_o)

    @pytest.mark.parametrize("ingress_only", [True, False])
    def test_isp_mask_matches_oracle(self, tiny_world, ingress_only):
        topo = tiny_world.topology
        with_matrix = FlowVisibility(topo, matrix=VisibilityMatrix(topo))
        oracle = FlowVisibility(topo)
        observer = tiny_world.tier1.asn
        src, dst = self._pairs_with_unknowns(topo)
        vis_m, peer_m = with_matrix.isp_mask(observer, src, dst, ingress_only)
        vis_o, peer_o = oracle.isp_mask(observer, src, dst, ingress_only)
        np.testing.assert_array_equal(vis_m, vis_o)
        np.testing.assert_array_equal(peer_m, peer_o)

    def test_out_of_registry_observer_uses_oracle(self, tiny_world):
        topo = tiny_world.topology
        with_matrix = FlowVisibility(topo, matrix=VisibilityMatrix(topo))
        oracle = FlowVisibility(topo)
        src, dst = self._pairs_with_unknowns(topo)
        vis_m, peer_m = with_matrix.isp_mask(424242, src, dst, False)
        vis_o, peer_o = oracle.isp_mask(424242, src, dst, False)
        np.testing.assert_array_equal(vis_m, vis_o)
        np.testing.assert_array_equal(peer_m, peer_o)

    def test_hit_and_fallback_counters(self, tiny_world):
        topo = tiny_world.topology
        with_matrix = FlowVisibility(topo, matrix=VisibilityMatrix(topo))
        src, dst = self._pairs_with_unknowns(topo)  # 2 fully known, 4 with unknowns
        with use_metrics(MetricsRegistry()) as registry:
            with_matrix.ixp_mask(src, dst)
        assert registry.counter("visibility.matrix_hits") == 2
        assert registry.counter("visibility.fallback_lookups") == 4


class TestIndexing:
    def test_index_of_unknowns(self, tiny_world):
        matrix = VisibilityMatrix(tiny_world.topology)
        asns = matrix.asns
        values = np.array([-1, int(asns[0]), 999_999, int(asns[-1])], dtype=np.int64)
        idx = matrix.index_of(values)
        np.testing.assert_array_equal(idx, [-1, 0, -1, asns.size - 1])

    def test_pair_index_alignment_required(self, tiny_world):
        matrix = VisibilityMatrix(tiny_world.topology)
        with pytest.raises(ValueError, match="align"):
            matrix.pair_index(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64))

    def test_stale_pair_index_rejected(self, tiny_world):
        topo = tiny_world.topology
        with_matrix = FlowVisibility(topo, matrix=VisibilityMatrix(topo))
        asns = with_matrix.matrix.asns
        src = np.full(5, asns[0], dtype=np.int64)
        dst = np.full(5, asns[1], dtype=np.int64)
        bad = with_matrix.matrix.pair_index(src[:3], dst[:3])
        with pytest.raises(ValueError, match="pair_index"):
            with_matrix.ixp_mask(src, dst, pair_index=bad)


class TestInvalidation:
    def test_generation_tracks_topology_edits(self):
        _, topo = build_topology(
            TopologyConfig(n_tier1=2, n_tier2=4, n_stub=8), SeedSequenceTree(5).child("w")
        )
        matrix = VisibilityMatrix(topo)
        before = matrix.generation
        matrix.ixp_tables()
        asns = sorted(topo.asns)
        topo.add_peering(asns[-1], asns[-2], via_ixp=True)
        assert matrix.generation > before

    def test_tables_rebuilt_after_edit(self):
        _, topo = build_topology(
            TopologyConfig(n_tier1=2, n_tier2=4, n_stub=8), SeedSequenceTree(5).child("w")
        )
        matrix = VisibilityMatrix(topo)
        matrix.ixp_tables()
        asns = sorted(topo.asns)
        topo.add_peering(asns[-1], asns[-2], via_ixp=True)
        oracle = FlowVisibility(topo)
        visible, peer = matrix.ixp_tables()
        for i, src in enumerate(matrix.asns.tolist()):
            for j, dst in enumerate(matrix.asns.tolist()):
                verdict = oracle.at_ixp(src, dst)
                assert visible[i, j] == verdict.visible, (src, dst)
                assert peer[i, j] == verdict.peer_asn, (src, dst)
