"""Tests for reflector pools and set-churn processes."""

import numpy as np
import pytest

from repro.booter.reflectors import (
    ReflectorChurnConfig,
    ReflectorPool,
    ReflectorSetProcess,
    overlap_fraction,
)
from repro.netmodel.topology import TopologyConfig, build_topology
from repro.stats.rng import SeedSequenceTree


@pytest.fixture(scope="module")
def registry():
    reg, _ = build_topology(TopologyConfig(n_tier1=3, n_tier2=8, n_stub=40), SeedSequenceTree(1))
    return reg


@pytest.fixture(scope="module")
def pool(registry):
    return ReflectorPool.generate("ntp", 2000, registry, SeedSequenceTree(2))


class TestReflectorPool:
    def test_size(self, pool):
        assert len(pool) == 2000

    def test_unique_ips(self, pool):
        assert np.unique(pool.ips).size == len(pool)

    def test_ips_belong_to_claimed_as(self, pool, registry):
        resolved = registry.resolve_addresses(pool.ips)
        np.testing.assert_array_equal(resolved, pool.asns)

    def test_concentration_skews_placement(self, registry):
        spread = ReflectorPool.generate("a", 2000, registry, SeedSequenceTree(3), concentration=1.0)
        concentrated = ReflectorPool.generate(
            "b", 2000, registry, SeedSequenceTree(3), concentration=30.0
        )
        def top_share(p):
            _, counts = np.unique(p.asns, return_counts=True)
            return counts.max() / len(p)
        assert top_share(concentrated) > top_share(spread)

    def test_deterministic(self, registry):
        a = ReflectorPool.generate("x", 500, registry, SeedSequenceTree(5))
        b = ReflectorPool.generate("x", 500, registry, SeedSequenceTree(5))
        np.testing.assert_array_equal(a.ips, b.ips)

    def test_validation(self, registry):
        with pytest.raises(ValueError):
            ReflectorPool.generate("x", 0, registry, SeedSequenceTree(0))
        with pytest.raises(ValueError):
            ReflectorPool.generate("x", 10, registry, SeedSequenceTree(0), concentration=0)
        with pytest.raises(ValueError):
            ReflectorPool("x", np.array([1, 1], dtype=np.uint32), np.array([1, 2]))
        with pytest.raises(ValueError):
            ReflectorPool("x", np.array([], dtype=np.uint32), np.array([], dtype=np.int64))


class TestChurnConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReflectorChurnConfig(set_size=0)
        with pytest.raises(ValueError):
            ReflectorChurnConfig(daily_churn=1.5)
        with pytest.raises(ValueError):
            ReflectorChurnConfig(replacement_prob=-0.1)


class TestReflectorSetProcess:
    def make(self, pool, set_size=100, churn=0.03, replacement=0.0, seed=7, frac=1.0):
        return ReflectorSetProcess(
            pool,
            ReflectorChurnConfig(set_size=set_size, daily_churn=churn, replacement_prob=replacement),
            SeedSequenceTree(seed),
            draw_pool_fraction=frac,
        )

    def test_set_size_constant(self, pool):
        proc = self.make(pool)
        for day in (0, 5, 30):
            assert proc.set_for_day(day).size == 100

    def test_same_day_identical(self, pool):
        proc = self.make(pool)
        np.testing.assert_array_equal(proc.set_for_day(3), proc.set_for_day(3))

    def test_deterministic_across_instances(self, pool):
        a = self.make(pool, seed=9).set_for_day(10)
        b = self.make(pool, seed=9).set_for_day(10)
        np.testing.assert_array_equal(a, b)

    def test_moderate_churn_over_two_weeks(self, pool):
        """~30% churn over two weeks at 2.5%/day (paper, booter B)."""
        proc = self.make(pool, churn=0.025)
        day0 = proc.set_for_day(0)
        day14 = proc.set_for_day(14)
        overlap = overlap_fraction(day0, day14)
        # (1 - 0.025)^14 ~ 0.70 of members survive.
        inter = np.intersect1d(day0, day14).size / day0.size
        assert 0.55 < inter < 0.85
        assert overlap < 1.0

    def test_no_churn_stable(self, pool):
        proc = self.make(pool, churn=0.0)
        np.testing.assert_array_equal(proc.set_for_day(0), proc.set_for_day(20))

    def test_full_replacement(self, pool):
        proc = self.make(pool, churn=0.0, replacement=1.0)
        day0, day1 = proc.set_for_day(0), proc.set_for_day(1)
        assert overlap_fraction(day0, day1) < 0.2

    def test_indices_within_pool(self, pool):
        proc = self.make(pool)
        s = proc.set_for_day(10)
        assert s.min() >= 0 and s.max() < len(pool)
        assert np.unique(s).size == s.size

    def test_ips_and_asns_aligned(self, pool):
        proc = self.make(pool)
        idx = proc.set_for_day(2)
        np.testing.assert_array_equal(proc.ips_for_day(2), pool.ips[idx])
        np.testing.assert_array_equal(proc.asns_for_day(2), pool.asns[idx])

    def test_drawable_subset_respected(self, pool):
        proc = self.make(pool, set_size=50, frac=0.2, replacement=0.5)
        seen = set()
        for day in range(20):
            seen.update(proc.set_for_day(day).tolist())
        assert len(seen) <= int(len(pool) * 0.2)

    def test_negative_day_rejected(self, pool):
        with pytest.raises(ValueError):
            self.make(pool).set_for_day(-1)

    def test_oversized_set_rejected(self, pool):
        with pytest.raises(ValueError):
            self.make(pool, set_size=len(pool) + 1)
        with pytest.raises(ValueError):
            self.make(pool, set_size=1000, frac=0.1)

    def test_shared_source_increases_overlap(self, pool):
        """Booters drawing from the same narrow list source overlap more."""
        narrow_a = self.make(pool, seed=11, frac=0.12)
        narrow_b = self.make(pool, seed=11, frac=0.12)  # same seed tree -> same source
        wide_a = self.make(pool, seed=12, frac=1.0)
        wide_b = self.make(pool, seed=13, frac=1.0)
        overlap_narrow = overlap_fraction(narrow_a.set_for_day(0), narrow_b.set_for_day(0))
        overlap_wide = overlap_fraction(wide_a.set_for_day(0), wide_b.set_for_day(0))
        assert overlap_narrow > overlap_wide


class TestOverlapFraction:
    def test_identical(self):
        assert overlap_fraction(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_disjoint(self):
        assert overlap_fraction(np.array([1, 2]), np.array([3, 4])) == 0.0

    def test_partial(self):
        assert overlap_fraction(np.array([1, 2, 3]), np.array([3, 4, 5])) == pytest.approx(0.2)

    def test_empty(self):
        assert overlap_fraction(np.array([]), np.array([])) == 1.0
