"""Protocol conformance of the observatory HTTP server.

Two layers under test: the pure request parser
(:func:`repro.serve.http.parse_request_head` — every malformation maps
to its specific status) and the live connection loop
(:class:`repro.serve.server.ObservatoryServer` over real sockets —
keep-alive semantics, pipelining, slow-loris timeouts, rate limiting,
and the guarantee that a crashing handler never takes down the accept
loop).

The socket tests run against a stub router so no scenario is ever
built; each test drives raw bytes through ``asyncio.open_connection``
and asserts on the exact response framing.
"""

import asyncio
from contextlib import asynccontextmanager

import pytest

from repro.serve.http import (
    HttpError,
    HttpLimits,
    Request,
    Response,
    parse_request_head,
)
from repro.serve.ratelimit import RateLimiter, TokenBucket
from repro.serve.routes import Router
from repro.serve.server import ObservatoryServer


# -- pure parser ---------------------------------------------------------------


def _status_of(head: bytes, limits: HttpLimits = HttpLimits()) -> int:
    with pytest.raises(HttpError) as excinfo:
        parse_request_head(head, limits)
    return excinfo.value.status


class TestParseRequestHead:
    def test_minimal_get(self):
        request = parse_request_head(b"GET /v1/health HTTP/1.1\r\nHost: x")
        assert request.method == "GET"
        assert request.path == "/v1/health"
        assert request.version == "HTTP/1.1"
        assert request.headers == {"host": "x"}

    def test_query_string_parsed_and_path_unquoted(self):
        request = parse_request_head(
            b"GET /v1/days/2018%2D12%2D19?vantage=ixp&top=5&flag= HTTP/1.1"
        )
        assert request.path == "/v1/days/2018-12-19"
        assert request.query == {"vantage": "ixp", "top": "5", "flag": ""}
        assert request.param("vantage") == "ixp"
        assert request.param("missing", "dflt") == "dflt"

    @pytest.mark.parametrize(
        "line",
        [
            b"GARBAGE",
            b"GET /",
            b"GET  / HTTP/1.1",  # double space -> empty part
            b"GET / HTTP/1.1 extra",
            b"",
        ],
    )
    def test_malformed_request_line_is_400(self, line):
        assert _status_of(line) == 400

    def test_non_token_method_is_400(self):
        assert _status_of(b"GE T/ / HTTP/1.1") == 400
        assert _status_of(b'G"T / HTTP/1.1') == 400

    def test_unknown_token_method_is_501(self):
        assert _status_of(b"BREW /coffee HTTP/1.1") == 501

    def test_bad_version_prefix_is_400(self):
        assert _status_of(b"GET / SPDY/3") == 400

    @pytest.mark.parametrize("version", [b"HTTP/2.0", b"HTTP/0.9", b"HTTP/1.2"])
    def test_unsupported_version_is_505(self, version):
        assert _status_of(b"GET / " + version) == 505

    def test_non_origin_form_target_is_400(self):
        assert _status_of(b"GET http://example.com/ HTTP/1.1") == 400

    def test_asterisk_target_allowed(self):
        assert parse_request_head(b"OPTIONS * HTTP/1.1").target == "*"

    def test_oversized_head_is_431(self):
        limits = HttpLimits(max_head_bytes=128)
        head = b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 200
        assert _status_of(head, limits) == 431

    def test_too_many_headers_is_431(self):
        limits = HttpLimits(max_header_count=4)
        head = b"GET / HTTP/1.1\r\n" + b"\r\n".join(
            b"X-H%d: v" % i for i in range(6)
        )
        assert _status_of(head, limits) == 431

    def test_obsolete_line_folding_is_400(self):
        head = b"GET / HTTP/1.1\r\nX-A: one\r\n two"
        assert _status_of(head) == 400

    def test_malformed_header_field_is_400(self):
        assert _status_of(b"GET / HTTP/1.1\r\nno-colon-here") == 400
        assert _status_of(b"GET / HTTP/1.1\r\nbad name: v") == 400

    def test_transfer_encoding_is_501(self):
        head = b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked"
        assert _status_of(head) == 501

    def test_duplicate_headers_combine(self):
        request = parse_request_head(b"GET / HTTP/1.1\r\nAccept: a\r\nAccept: b")
        assert request.headers["accept"] == "a, b"

    def test_keep_alive_defaults(self):
        http11 = parse_request_head(b"GET / HTTP/1.1")
        assert http11.keep_alive
        closed = parse_request_head(b"GET / HTTP/1.1\r\nConnection: close")
        assert not closed.keep_alive
        http10 = parse_request_head(b"GET / HTTP/1.0")
        assert not http10.keep_alive
        http10_ka = parse_request_head(b"GET / HTTP/1.0\r\nConnection: keep-alive")
        assert http10_ka.keep_alive


# -- rate limiter units --------------------------------------------------------


class TestTokenBucket:
    def test_refill_math_with_fake_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.allow()
        assert bucket.allow()
        assert not bucket.allow()  # burst exhausted, no time passed
        now[0] += 0.5  # refills one token at 2/s
        assert bucket.allow()
        assert not bucket.allow()

    def test_limiter_lru_is_bounded(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, max_clients=3, clock=lambda: now[0])
        for i in range(10):
            limiter.allow(f"client-{i}")
        assert len(limiter._buckets) == 3

    def test_disabled_limiter_always_allows(self):
        limiter = RateLimiter(rate=None)
        assert all(limiter.allow("c") for _ in range(1000))
        assert limiter.rejected == 0


# -- live server ---------------------------------------------------------------


class _StubService:
    """Duck-typed stand-in: the stub router never touches the pipeline."""


def _stub_router() -> Router:
    router = Router()

    async def ping(request, params, ctx):
        return Response(body=b'{"pong":true}')

    async def echo(request, params, ctx):
        return Response(body=request.body or b"{}")

    async def boom(request, params, ctx):
        raise RuntimeError("handler exploded")

    router.add("GET", "/ping", ping)
    router.add("POST", "/echo", echo)
    router.add("GET", "/boom", boom)
    return router


@asynccontextmanager
async def _server(**kwargs):
    server = ObservatoryServer(_StubService(), router=_stub_router(), **kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.aclose()


async def _read_response(reader: asyncio.StreamReader):
    head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), 5)
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    body = await asyncio.wait_for(reader.readexactly(length), 5) if length else b""
    return status, headers, body


async def _one_shot(port: int, raw: bytes):
    """Send raw bytes on a fresh connection, read one response."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(raw)
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()


async def _at_eof(reader: asyncio.StreamReader) -> bool:
    data = await asyncio.wait_for(reader.read(1), 5)
    return data == b""


class TestServerProtocol:
    def test_keep_alive_sequential_requests(self):
        async def run():
            async with _server() as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                for _ in range(3):
                    writer.write(b"GET /ping HTTP/1.1\r\nHost: t\r\n\r\n")
                    await writer.drain()
                    status, headers, body = await _read_response(reader)
                    assert status == 200
                    assert headers["connection"] == "keep-alive"
                    assert body == b'{"pong":true}'
                writer.close()

        asyncio.run(run())

    def test_pipelined_requests_answered_in_order(self):
        async def run():
            async with _server() as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(
                    b"GET /ping HTTP/1.1\r\n\r\n"
                    b"POST /echo HTTP/1.1\r\nContent-Length: 7\r\n\r\nPAYLOAD"
                    b"GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                await writer.drain()
                first = await _read_response(reader)
                second = await _read_response(reader)
                third = await _read_response(reader)
                assert first[0] == second[0] == third[0] == 200
                assert second[2] == b"PAYLOAD"
                assert third[1]["connection"] == "close"
                assert await _at_eof(reader)
                writer.close()

        asyncio.run(run())

    def test_http10_closes_by_default(self):
        async def run():
            async with _server() as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"GET /ping HTTP/1.0\r\n\r\n")
                await writer.drain()
                status, headers, _ = await _read_response(reader)
                assert status == 200
                assert headers["connection"] == "close"
                assert await _at_eof(reader)
                writer.close()

        asyncio.run(run())

    def test_unknown_path_is_404_and_connection_survives(self):
        async def run():
            async with _server() as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"GET /nope HTTP/1.1\r\n\r\n")
                await writer.drain()
                status, _, body = await _read_response(reader)
                assert status == 404
                assert b"/nope" in body
                writer.write(b"GET /ping HTTP/1.1\r\n\r\n")
                await writer.drain()
                assert (await _read_response(reader))[0] == 200
                writer.close()

        asyncio.run(run())

    def test_wrong_method_is_405_listing_allowed(self):
        async def run():
            async with _server() as server:
                status, _, body = await _one_shot(
                    server.port, b"DELETE /ping HTTP/1.1\r\n\r\n"
                )
                assert status == 405
                assert b"GET" in body

        asyncio.run(run())

    def test_unknown_verb_is_501(self):
        async def run():
            async with _server() as server:
                status, _, _ = await _one_shot(
                    server.port, b"BREW /ping HTTP/1.1\r\n\r\n"
                )
                assert status == 501

        asyncio.run(run())

    def test_malformed_request_line_is_400_and_closes(self):
        async def run():
            async with _server() as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"total garbage\r\n\r\n")
                await writer.drain()
                status, headers, _ = await _read_response(reader)
                assert status == 400
                assert headers["connection"] == "close"
                assert await _at_eof(reader)
                writer.close()

        asyncio.run(run())

    def test_unsupported_version_is_505(self):
        async def run():
            async with _server() as server:
                status, _, _ = await _one_shot(
                    server.port, b"GET /ping HTTP/2.0\r\n\r\n"
                )
                assert status == 505

        asyncio.run(run())

    def test_oversized_headers_are_431(self):
        async def run():
            limits = HttpLimits(max_head_bytes=256, read_timeout_s=5.0)
            async with _server(limits=limits) as server:
                raw = (
                    b"GET /ping HTTP/1.1\r\nX-Pad: " + b"a" * 600 + b"\r\n\r\n"
                )
                status, _, _ = await _one_shot(server.port, raw)
                assert status == 431

        asyncio.run(run())

    def test_body_above_limit_is_413(self):
        async def run():
            limits = HttpLimits(max_body_bytes=64, read_timeout_s=5.0)
            async with _server(limits=limits) as server:
                raw = b"POST /echo HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"
                status, _, _ = await _one_shot(server.port, raw)
                assert status == 413

        asyncio.run(run())

    def test_truncated_body_is_400(self):
        async def run():
            async with _server() as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"POST /echo HTTP/1.1\r\nContent-Length: 10\r\n\r\nfour")
                await writer.drain()
                writer.write_eof()  # close our sending side mid-body
                status, _, body = await _read_response(reader)
                assert status == 400
                assert b"truncated" in body.lower()
                writer.close()

        asyncio.run(run())

    def test_slow_loris_head_times_out_408(self):
        async def run():
            limits = HttpLimits(read_timeout_s=0.2)
            async with _server(limits=limits) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"GET /ping HT")  # ...and stall forever
                await writer.drain()
                status, _, _ = await _read_response(reader)
                assert status == 408
                assert await _at_eof(reader)
                writer.close()

        asyncio.run(run())

    def test_slow_loris_body_times_out_408(self):
        async def run():
            limits = HttpLimits(read_timeout_s=0.2)
            async with _server(limits=limits) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"POST /echo HTTP/1.1\r\nContent-Length: 50\r\n\r\nstall")
                await writer.drain()
                status, _, _ = await _read_response(reader)
                assert status == 408
                writer.close()

        asyncio.run(run())

    def test_handler_crash_is_500_and_never_kills_the_loop(self):
        async def run():
            async with _server() as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"GET /boom HTTP/1.1\r\n\r\n")
                await writer.drain()
                status, _, _ = await _read_response(reader)
                assert status == 500
                # Same connection still serves.
                writer.write(b"GET /ping HTTP/1.1\r\n\r\n")
                await writer.drain()
                assert (await _read_response(reader))[0] == 200
                writer.close()
                # And the accept loop still accepts fresh connections.
                status, _, _ = await _one_shot(
                    server.port, b"GET /ping HTTP/1.1\r\n\r\n"
                )
                assert status == 200

        asyncio.run(run())

    def test_head_mirrors_get_headers_without_body(self):
        async def run():
            async with _server() as server:
                get_status, get_headers, get_body = await _one_shot(
                    server.port, b"GET /ping HTTP/1.1\r\n\r\n"
                )
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"HEAD /ping HTTP/1.1\r\nConnection: close\r\n\r\n")
                await writer.drain()
                head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), 5)
                assert b" 200 " in head.split(b"\r\n")[0]
                assert (
                    f"content-length: {len(get_body)}".encode()
                    in head.lower()
                )
                assert await _at_eof(reader)  # no body follows
                writer.close()
                assert get_status == 200

        asyncio.run(run())

    def test_rate_limited_request_is_429_and_connection_survives(self):
        async def run():
            now = [0.0]
            limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: now[0])
            async with _server(rate_limiter=limiter) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"GET /ping HTTP/1.1\r\n\r\n")
                await writer.drain()
                assert (await _read_response(reader))[0] == 200
                writer.write(b"GET /ping HTTP/1.1\r\n\r\n")
                await writer.drain()
                status, headers, _ = await _read_response(reader)
                assert status == 429
                assert headers["retry-after"] == "1"
                now[0] += 2.0  # refill
                writer.write(b"GET /ping HTTP/1.1\r\n\r\n")
                await writer.drain()
                assert (await _read_response(reader))[0] == 200
                writer.close()
                assert limiter.rejected == 1

        asyncio.run(run())

    def test_clean_eof_between_requests_closes_quietly(self):
        async def run():
            async with _server() as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"GET /ping HTTP/1.1\r\n\r\n")
                await writer.drain()
                assert (await _read_response(reader))[0] == 200
                writer.close()  # EOF with no next request: no error response
                await writer.wait_closed()

        asyncio.run(run())
