"""Run-provenance ledger: digests, append/read, runner wiring, determinism."""

import json

import pytest

from repro.booter.market import MarketConfig
from repro.core.parallel import day_cache
from repro.core.pipeline import TrafficSelector, collect_daily_port_series, collect_streaming
from repro.core.streaming import StreamingAnalyzer
from repro.netmodel.topology import TopologyConfig
from repro.obs import MetricsRegistry, use_metrics
from repro.obs.runledger import (
    RUN_SCHEMA,
    append_run_record,
    artifact_digest,
    build_run_record,
    counter_digest,
    deterministic_counters,
    read_ledger,
)
from repro.scenario import Scenario, ScenarioConfig

SELECTORS = [
    TrafficSelector("ntp_to", 123, "to_reflectors"),
    TrafficSelector("ntp_from", 123, "from_reflectors"),
]


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        ScenarioConfig(
            scale=0.1,
            topology=TopologyConfig(n_tier1=3, n_tier2=10, n_stub=60),
            market=MarketConfig(daily_attacks=60.0, n_victims=300),
            pool_sizes=(
                ("ntp", 1500),
                ("dns", 1000),
                ("cldap", 400),
                ("memcached", 200),
                ("ssdp", 250),
            ),
        )
    )


class TestDigests:
    def test_deterministic_counters_filters_and_sorts(self):
        counters = {
            "pool.tasks": 4.0,
            "scenario.days_generated": 2.0,
            "cache.hits": 1.0,
            "pipeline.days_processed": 2.0,
            "streaming.days_ingested": 2.0,
        }
        assert list(deterministic_counters(counters)) == [
            "pipeline.days_processed",
            "scenario.days_generated",
            "streaming.days_ingested",
        ]

    def test_counter_digest_ignores_strategy_counters(self):
        base = {"scenario.days_generated": 2.0}
        with_pool = dict(base, **{"pool.tasks": 8.0, "cache.hits": 3.0})
        assert counter_digest(base) == counter_digest(with_pool)

    def test_counter_digest_changes_on_logic_change(self):
        a = {"scenario.days_generated": 2.0}
        b = {"scenario.days_generated": 3.0}
        assert counter_digest(a) != counter_digest(b)

    def test_artifact_digest_matches_content(self, tmp_path):
        f = tmp_path / "artifact.bin"
        f.write_bytes(b"hello")
        import hashlib

        assert artifact_digest(f) == hashlib.sha256(b"hello").hexdigest()


class TestDigestBitIdentityAcrossStrategies:
    """The acceptance bar: the ledger's deterministic counter digest must be
    bit-identical for jobs=1 vs jobs=4, with the day cache on and off."""

    def _run(self, scenario, jobs, cache):
        day_cache().clear()
        registry = MetricsRegistry()
        with use_metrics(registry):
            collect_daily_port_series(
                scenario, "ixp", SELECTORS, day_range=(40, 44), jobs=jobs, cache=cache
            )
            analyzer = StreamingAnalyzer(
                SELECTORS, n_days=scenario.config.n_days, sampling_factor=10_000.0
            )
            collect_streaming(
                scenario, "ixp", analyzer, day_range=(40, 44), jobs=jobs, cache=cache
            )
        day_cache().clear()
        return registry

    def test_digest_identical_jobs1_jobs4_cache_on_off(self, scenario):
        digests = {
            (jobs, cache): counter_digest(self._run(scenario, jobs, cache).counters)
            for jobs in (1, 4)
            for cache in (False, True)
        }
        assert len(set(digests.values())) == 1, digests
        # And the strategy-dependent counters did differ, so the digest's
        # indifference is doing real work (pool ran only in jobs=4 runs).
        jobs4 = self._run(scenario, 4, False)
        assert jobs4.counter("pool.tasks") > 0


class TestRecordAppendRead:
    def _record(self, tmp_path, **overrides):
        artifact = tmp_path / "metrics.json"
        artifact.write_text("{}")
        params = dict(
            config_hash="abc123",
            seed=2018,
            preset="small",
            jobs=2,
            cache=True,
            experiments=["fig2a"],
            counters={"scenario.days_generated": 2.0, "pool.tasks": 4.0},
            wall_s=1.25,
            experiment_wall_s={"fig2a": 1.25},
            artifacts={"metrics": artifact},
        )
        params.update(overrides)
        return build_run_record(**params)

    def test_build_run_record_shape(self, tmp_path):
        record = self._record(tmp_path)
        assert record["schema"] == RUN_SCHEMA
        assert record["config_hash"] == "abc123"
        assert record["counters"] == {"scenario.days_generated": 2.0}
        assert record["counter_digest"] == counter_digest(record["counters"])
        assert record["experiment_wall_s"] == {"fig2a": 1.25}
        assert record["artifacts"]["metrics"]["sha256"] == artifact_digest(
            tmp_path / "metrics.json"
        )
        from repro import __version__

        assert record["version"] == __version__
        assert json.dumps(record)  # JSON-serializable as-is

    def test_append_and_read_roundtrip(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        first = self._record(tmp_path)
        second = self._record(tmp_path, seed=7)
        append_run_record(ledger, first)
        append_run_record(ledger, second)
        records = read_ledger(ledger)
        assert len(records) == 2
        assert records[0]["seed"] == 2018
        assert records[1]["seed"] == 7

    def test_append_rejects_wrong_schema(self, tmp_path):
        with pytest.raises(ValueError, match="schema"):
            append_run_record(tmp_path / "runs.jsonl", {"schema": "nope/9"})

    def test_read_rejects_foreign_lines(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        ledger.write_text('{"schema": "other/1"}\n')
        with pytest.raises(ValueError, match="other/1"):
            read_ledger(ledger)

    def test_read_rejects_garbage(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        ledger.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_ledger(ledger)

    def test_read_empty_ledger(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        ledger.write_text("\n")
        with pytest.raises(ValueError, match="no records"):
            read_ledger(ledger)


class TestRunnerLedgerWiring:
    def test_runner_appends_matching_records(self, tmp_path):
        """Two runner invocations (jobs=1 vs jobs=4) append two records with
        identical config hash and deterministic counter digest."""
        from repro.experiments.runner import main

        ledger = tmp_path / "runs.jsonl"
        assert main(["fig2a", "--no-cache", "--ledger", str(ledger)]) == 0
        assert main(["fig2a", "--no-cache", "--jobs", "4", "--ledger", str(ledger)]) == 0
        a, b = read_ledger(ledger)
        assert a["schema"] == b["schema"] == RUN_SCHEMA
        assert a["jobs"] == 1 and b["jobs"] == 4
        assert a["config_hash"] == b["config_hash"]
        assert a["counter_digest"] == b["counter_digest"]
        assert a["counters"] and a["counters"] == b["counters"]
        assert a["wall_s"] > 0 and "fig2a" in a["experiment_wall_s"]
        assert a["platform"]["python"]

    def test_ledger_records_artifact_digests(self, tmp_path):
        from repro.experiments.runner import main

        ledger = tmp_path / "runs.jsonl"
        metrics_out = tmp_path / "metrics.json"
        trace_out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "fig2a",
                    "--no-cache",
                    "--ledger",
                    str(ledger),
                    "--metrics-out",
                    str(metrics_out),
                    "--trace-out",
                    str(trace_out),
                ]
            )
            == 0
        )
        (record,) = read_ledger(ledger)
        assert set(record["artifacts"]) == {"metrics", "trace"}
        assert record["artifacts"]["metrics"]["sha256"] == artifact_digest(metrics_out)
        assert record["artifacts"]["trace"]["sha256"] == artifact_digest(trace_out)
