"""FlowTableBuilder: bit-identity with the concat path, validation, snapshots."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.builder import FlowTableBuilder
from repro.flows.records import SCHEMA, FlowTable


def _block(rng: np.random.Generator, n: int, with_asns: bool) -> dict:
    block = {
        "time": rng.uniform(0.0, 86_400.0, n),
        "src_ip": rng.integers(0, 1 << 32, n, dtype=np.uint32),
        "dst_ip": rng.integers(0, 1 << 32, n, dtype=np.uint32),
        "proto": np.full(n, 17, dtype=np.uint8),
        "src_port": rng.integers(0, 1 << 16, n, dtype=np.uint16),
        "dst_port": rng.integers(0, 1 << 16, n, dtype=np.uint16),
        "packets": rng.integers(1, 10_000, n),
        "bytes": rng.integers(64, 10_000_000, n),
    }
    if with_asns:
        block["src_asn"] = rng.integers(-1, 500, n)
        block["dst_asn"] = rng.integers(-1, 500, n)
    return block


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    sizes=st.lists(st.integers(min_value=0, max_value=200), max_size=8),
    capacity=st.sampled_from([0, 1, 7, 4096]),
)
def test_builder_bit_identical_to_concat(seed, sizes, capacity):
    """Appending blocks == building one table per block and concatenating."""
    rng = np.random.default_rng(seed)
    blocks = [_block(rng, n, with_asns=(i % 2 == 0)) for i, n in enumerate(sizes)]
    builder = FlowTableBuilder(capacity=capacity)
    for block in blocks:
        assert builder.add_block(block) is builder
    built = builder.build()
    reference = FlowTable.concat([FlowTable(b) for b in blocks])
    assert len(built) == len(builder) == len(reference)
    for name, dtype in SCHEMA.items():
        assert built[name].dtype == dtype
        np.testing.assert_array_equal(built[name], reference[name], err_msg=name)


class TestValidation:
    def _good(self, n=3):
        return _block(np.random.default_rng(0), n, with_asns=True)

    def test_missing_required_column(self):
        block = self._good()
        del block["packets"]
        with pytest.raises(ValueError, match="missing columns"):
            FlowTableBuilder().add_block(block)

    def test_unknown_column(self):
        block = self._good()
        block["ttl"] = np.zeros(3)
        with pytest.raises(ValueError, match="unknown columns"):
            FlowTableBuilder().add_block(block)

    def test_misaligned_lengths(self):
        block = self._good()
        block["bytes"] = block["bytes"][:-1]
        with pytest.raises(ValueError, match="rows, expected"):
            FlowTableBuilder().add_block(block)

    def test_non_1d_column(self):
        block = self._good(4)
        block["time"] = block["time"].reshape(2, 2)
        with pytest.raises(ValueError, match="1-D"):
            FlowTableBuilder().add_block(block)

    def test_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            FlowTableBuilder(capacity=-1)

    def test_omitted_asn_columns_default(self):
        built = FlowTableBuilder().add_block(_block(np.random.default_rng(1), 5, False)).build()
        assert (built["src_asn"] == -1).all()
        assert (built["dst_asn"] == -1).all()
        assert (built["peer_asn"] == -1).all()


class TestSemantics:
    def test_empty_build(self):
        built = FlowTableBuilder().build()
        assert len(built) == 0
        for name, dtype in SCHEMA.items():
            assert built[name].dtype == dtype

    def test_empty_block_is_noop(self):
        builder = FlowTableBuilder()
        builder.add_block(_block(np.random.default_rng(2), 0, True))
        assert len(builder) == 0

    def test_add_table_round_trip(self):
        table = FlowTable(_block(np.random.default_rng(3), 17, True))
        built = FlowTableBuilder().add_table(table).build()
        for name in SCHEMA:
            np.testing.assert_array_equal(built[name], table[name])

    def test_build_snapshots_do_not_alias(self):
        """Building twice must not let later appends mutate the first table."""
        rng = np.random.default_rng(4)
        builder = FlowTableBuilder()
        builder.add_block(_block(rng, 10, True))
        first = builder.build()
        first_times = first["time"].copy()
        builder.add_block(_block(rng, 1500, True))  # forces regrowth too
        second = builder.build()
        np.testing.assert_array_equal(first["time"], first_times)
        assert len(second) == 1510
        np.testing.assert_array_equal(second["time"][:10], first_times)

    def test_casts_input_dtypes(self):
        block = _block(np.random.default_rng(5), 6, True)
        block["packets"] = block["packets"].astype(np.int32)
        block["time"] = np.arange(6, dtype=np.int64)
        built = FlowTableBuilder().add_block(block).build()
        assert built["packets"].dtype == np.int64
        assert built["time"].dtype == np.float64


class TestTake:
    def test_take_matches_build_and_resets(self):
        rng = np.random.default_rng(6)
        block = _block(rng, 137, True)
        want = FlowTableBuilder().add_block(block).build()
        builder = FlowTableBuilder().add_block(block)
        taken = builder.take()
        for name in SCHEMA:
            np.testing.assert_array_equal(taken[name], want[name])
        assert len(builder) == 0
        # The builder is reusable after take and starts from scratch.
        second = _block(rng, 9, True)
        again = builder.add_block(second).take()
        assert len(again) == 9
        np.testing.assert_array_equal(again["time"], second["time"])

    def test_take_exactly_full_hands_over_without_copy(self):
        rng = np.random.default_rng(7)
        block = _block(rng, 64, True)
        builder = FlowTableBuilder(capacity=64)
        column = builder._columns["time"]
        builder.add_block(block)
        taken = builder.take()
        # Move semantics: the table owns the very buffer the builder filled.
        assert taken["time"] is column
        # ...and the builder no longer references it.
        assert builder._columns["time"] is not column
        assert len(builder) == 0

    def test_take_oversized_buffer_copies(self):
        rng = np.random.default_rng(8)
        builder = FlowTableBuilder(capacity=100)
        builder.add_block(_block(rng, 10, True))
        column = builder._columns["time"]
        taken = builder.take()
        assert len(taken) == 10
        assert taken["time"] is not column
        assert taken["time"].base is None  # real copy, not a view pinning 100

    def test_take_empty(self):
        taken = FlowTableBuilder().take()
        assert len(taken) == 0
