"""Tests for the binary flow format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.binio import (
    HEADER,
    MAGIC,
    RECORD_DTYPE,
    read_flows_binary,
    write_flows_binary,
)
from repro.flows.io import write_flows_csv
from repro.flows.records import SCHEMA, FlowTable


def random_table(n, seed=0):
    rng = np.random.default_rng(seed)
    return FlowTable(
        {
            "time": rng.uniform(0, 1e9, n),
            "src_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
            "dst_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
            "proto": rng.integers(0, 256, n).astype(np.uint8),
            "src_port": rng.integers(0, 65536, n).astype(np.uint16),
            "dst_port": rng.integers(0, 65536, n).astype(np.uint16),
            "packets": rng.integers(0, 2**40, n),
            "bytes": rng.integers(0, 2**50, n),
            "src_asn": rng.integers(-1, 1 << 30, n),
            "dst_asn": rng.integers(-1, 1 << 30, n),
            "peer_asn": rng.integers(-1, 1 << 30, n),
        }
    )


class TestRoundtrip:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 200), st.integers(0, 1000))
    def test_exact_roundtrip(self, tmp_path_factory, n, seed):
        path = tmp_path_factory.mktemp("bin") / "flows.bin"
        table = random_table(n, seed)
        assert write_flows_binary(table, path) == n
        back = read_flows_binary(path)
        for name in SCHEMA:
            np.testing.assert_array_equal(table[name], back[name], err_msg=name)

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_flows_binary(FlowTable.empty(), path)
        assert len(read_flows_binary(path)) == 0

    def test_more_compact_than_csv(self, tmp_path):
        table = random_table(2000)
        bin_path = tmp_path / "f.bin"
        csv_path = tmp_path / "f.csv"
        write_flows_binary(table, bin_path)
        write_flows_csv(table, csv_path)
        assert bin_path.stat().st_size < 0.6 * csv_path.stat().st_size

    def test_asn_clamping(self, tmp_path):
        table = random_table(1).with_columns(src_asn=np.array([2**40]))
        path = tmp_path / "c.bin"
        write_flows_binary(table, path)
        assert read_flows_binary(path)["src_asn"][0] == 2**31 - 1

    def test_asn_clamping_both_bounds(self, tmp_path):
        """Clamping saturates at both edges of the signed 32-bit range."""
        table = random_table(4).with_columns(
            dst_asn=np.array([2**31, -(2**31) - 1, 2**31 - 1, -(2**31)])
        )
        path = tmp_path / "cb.bin"
        write_flows_binary(table, path)
        np.testing.assert_array_equal(
            read_flows_binary(path)["dst_asn"],
            [2**31 - 1, -(2**31), 2**31 - 1, -(2**31)],
        )

    def test_empty_table_roundtrip_file_is_header_only(self, tmp_path):
        path = tmp_path / "e.bin"
        assert write_flows_binary(FlowTable.empty(), path) == 0
        assert path.stat().st_size == HEADER.size
        back = read_flows_binary(path)
        assert len(back) == 0
        for name in SCHEMA:
            assert back[name].dtype == np.dtype(SCHEMA[name]), name


class TestFormatConstants:
    def test_record_itemsize_matches_docs(self):
        # The module docstring promises a 50-byte packed record and a
        # 16-byte header; this pin keeps the docs from rotting again.
        assert RECORD_DTYPE.itemsize == 50
        assert HEADER.size == 16

    def test_file_size_is_header_plus_records(self, tmp_path):
        path = tmp_path / "s.bin"
        write_flows_binary(random_table(7), path)
        assert path.stat().st_size == HEADER.size + 7 * RECORD_DTYPE.itemsize


class TestValidation:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 12)
        with pytest.raises(ValueError, match="magic"):
            read_flows_binary(path)

    def test_truncated_body(self, tmp_path):
        path = tmp_path / "trunc.bin"
        write_flows_binary(random_table(10), path)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(ValueError, match="truncated"):
            read_flows_binary(path)

    def test_too_short_for_header(self, tmp_path):
        path = tmp_path / "tiny.bin"
        path.write_bytes(b"RF")
        with pytest.raises(ValueError, match="too short"):
            read_flows_binary(path)

    def test_flipped_magic_byte(self, tmp_path):
        """Bytes-level corruption of the magic is rejected, not misread."""
        path = tmp_path / "flip.bin"
        write_flows_binary(random_table(5), path)
        data = bytearray(path.read_bytes())
        data[2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="magic"):
            read_flows_binary(path)

    def test_truncated_mid_record(self, tmp_path):
        """A cut anywhere inside the body — not just on a record
        boundary — is detected from the declared count."""
        path = tmp_path / "mid.bin"
        write_flows_binary(random_table(3), path)
        data = path.read_bytes()
        path.write_bytes(data[: HEADER.size + RECORD_DTYPE.itemsize + 17])
        with pytest.raises(ValueError, match="truncated"):
            read_flows_binary(path)

    def test_inflated_count(self, tmp_path):
        """A header claiming more records than the body holds is rejected."""
        path = tmp_path / "inflate.bin"
        write_flows_binary(random_table(2), path)
        data = bytearray(path.read_bytes())
        data[4:8] = (100).to_bytes(4, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="truncated"):
            read_flows_binary(path)
