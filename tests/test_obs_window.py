"""Rolling-window telemetry: rates, quantiles, expiry, SLO burn.

All tests drive :class:`~repro.obs.window.RollingWindow` with an
injected fake clock, so rates and expiry are exact rather than
timing-dependent.
"""

import threading

import pytest

from repro.obs.window import DEFAULT_OBJECTIVE, RollingWindow


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def _window(clock, **kwargs) -> RollingWindow:
    kwargs.setdefault("horizon_s", 300)
    return RollingWindow(clock=clock, **kwargs)


class TestRecordAndSnapshot:
    def test_counts_and_rps(self, clock):
        window = _window(clock)
        clock.advance(60)  # age past boot so the rate denominator is full
        for _ in range(60):
            clock.advance(1)
            window.record(0.002)
            window.record(0.002)
        snap = window.snapshot(60)
        assert snap.requests == 120
        assert snap.rps == pytest.approx(2.0)
        assert snap.errors == 0
        assert snap.error_rate == 0.0

    def test_error_rate_and_slo_burn(self, clock):
        window = _window(clock)
        clock.advance(60)
        for i in range(100):
            window.record(0.001, error=(i % 10 == 0))
            clock.advance(0.1)
        snap = window.snapshot(60)
        assert snap.errors == 10
        assert snap.error_rate == pytest.approx(0.1)
        # 10% errors against a 99.9% objective burn 100x the budget rate.
        assert snap.slo_burn == pytest.approx(0.1 / (1 - DEFAULT_OBJECTIVE))

    def test_quantiles_from_retained_samples(self, clock):
        window = _window(clock)
        clock.advance(60)
        for i in range(1, 101):
            window.record(i / 1000.0)  # 1ms .. 100ms
        snap = window.snapshot(60)
        assert snap.p50_s == pytest.approx(0.0505, rel=0.02)
        assert snap.p99_s == pytest.approx(0.09901, rel=0.02)

    def test_empty_window_has_no_quantiles(self, clock):
        snap = _window(clock).snapshot(60)
        assert snap.requests == 0
        assert snap.p50_s is None and snap.p99_s is None
        assert snap.rps == 0.0
        assert snap.slo_burn == 0.0

    def test_early_boot_rate_uses_elapsed_not_window(self, clock):
        window = _window(clock)
        for _ in range(10):
            window.record(0.001)
        clock.advance(2.0)
        # 10 requests in the 2 seconds since boot is 5 rps, not 10/60.
        assert window.snapshot(60).rps == pytest.approx(5.0)


class TestExpiry:
    def test_old_slots_fall_out_of_the_window(self, clock):
        window = _window(clock)
        clock.advance(60)
        window.record(0.001)
        clock.advance(120)
        window.record(0.002)
        assert window.snapshot(60).requests == 1
        assert window.snapshot(300).requests == 2

    def test_ring_wrap_recycles_stale_slots(self, clock):
        window = _window(clock, horizon_s=10)
        window.record(0.001)
        clock.advance(10)  # a full revolution lands on the same slot index
        window.record(0.002)
        snap = window.snapshot(10)
        assert snap.requests == 1
        assert snap.p50_s == pytest.approx(0.002)

    def test_window_larger_than_horizon_rejected(self, clock):
        with pytest.raises(ValueError):
            _window(clock, horizon_s=10).snapshot(11)


class TestSampleCap:
    def test_overflow_keeps_counting_but_stops_sampling(self, clock):
        window = _window(clock, slot_samples=4)
        for _ in range(10):
            window.record(0.001)
        snap = window.snapshot(60)
        assert snap.requests == 10  # rate counting is exact
        slot = window._slots[int(clock()) % window.horizon_s]
        assert len(slot.samples) == 4
        assert slot.overflow == 6


class TestValidationAndSafety:
    def test_constructor_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RollingWindow(horizon_s=0)
        with pytest.raises(ValueError):
            RollingWindow(slot_samples=0)
        with pytest.raises(ValueError):
            RollingWindow(objective=1.0)

    def test_snapshot_dict_is_json_ready(self, clock):
        window = _window(clock)
        window.record(0.0042)
        payload = window.snapshot(60).to_dict()
        assert payload["p50_ms"] == pytest.approx(4.2)
        assert set(payload) == {
            "window_s", "requests", "errors", "rps",
            "error_rate", "slo_burn", "p50_ms", "p99_ms",
        }

    def test_concurrent_recording_loses_nothing(self):
        window = RollingWindow(horizon_s=300)
        n_threads, per_thread = 8, 500

        def worker():
            for _ in range(per_thread):
                window.record(0.001)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert window.snapshot(300).requests == n_threads * per_thread
