"""Tests for the HyperLogLog cardinality sketches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.sketch import HyperLogLog, PerKeyCardinality


class TestHyperLogLog:
    def test_empty(self):
        hll = HyperLogLog()
        assert hll.cardinality() == pytest.approx(0.0, abs=1e-9)

    def test_single_item(self):
        hll = HyperLogLog().add(42)
        assert hll.cardinality() == pytest.approx(1.0, rel=0.1)

    @pytest.mark.parametrize("true_n", [100, 5_000, 200_000])
    def test_accuracy_within_error_bounds(self, true_n):
        hll = HyperLogLog(precision=12)
        items = np.random.default_rng(true_n).choice(10**12, size=true_n, replace=False)
        hll.add(items)
        estimate = hll.cardinality()
        # Allow 5x the theoretical standard error.
        assert abs(estimate - true_n) / true_n < 5 * hll.standard_error

    def test_duplicates_not_double_counted(self):
        hll = HyperLogLog(precision=12)
        items = np.arange(1000)
        for _ in range(5):
            hll.add(items)
        assert hll.cardinality() == pytest.approx(1000, rel=0.1)

    def test_merge_equals_union(self):
        a = HyperLogLog(precision=12).add(np.arange(0, 3000))
        b = HyperLogLog(precision=12).add(np.arange(2000, 6000))
        a.merge(b)
        assert a.cardinality() == pytest.approx(6000, rel=0.1)

    def test_merge_precision_mismatch(self):
        with pytest.raises(ValueError):
            HyperLogLog(8).merge(HyperLogLog(10))

    def test_copy_independent(self):
        a = HyperLogLog().add(np.arange(100))
        b = a.copy()
        b.add(np.arange(100, 20_000))
        assert a.cardinality() < b.cardinality()

    def test_precision_validation(self):
        with pytest.raises(ValueError):
            HyperLogLog(3)
        with pytest.raises(ValueError):
            HyperLogLog(19)

    def test_add_empty_array(self):
        hll = HyperLogLog()
        hll.add(np.array([], dtype=np.uint64))
        assert hll.cardinality() == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3000), st.integers(0, 10_000))
    def test_estimate_tracks_truth(self, n, seed):
        rng = np.random.default_rng(seed)
        items = rng.choice(10**10, size=n, replace=False)
        hll = HyperLogLog(precision=12).add(items)
        assert abs(hll.cardinality() - n) / n < 0.25

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_merge_commutative(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 10**9, 500)
        y = rng.integers(0, 10**9, 500)
        ab = HyperLogLog(10).add(x).merge(HyperLogLog(10).add(y))
        ba = HyperLogLog(10).add(y).merge(HyperLogLog(10).add(x))
        np.testing.assert_array_equal(ab.registers, ba.registers)


class TestPerKeyCardinality:
    def test_per_key_counting(self):
        counter = PerKeyCardinality(precision=12)
        keys = np.array([1] * 500 + [2] * 100)
        items = np.concatenate([np.arange(500), np.arange(100)])
        counter.update(keys, items)
        assert counter.estimate(1) == pytest.approx(500, rel=0.15)
        assert counter.estimate(2) == pytest.approx(100, rel=0.15)
        assert counter.estimate(999) == 0.0
        assert counter.keys() == [1, 2]

    def test_streaming_matches_batch(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 5, 2000)
        items = rng.integers(0, 800, 2000)
        batch = PerKeyCardinality(precision=12)
        batch.update(keys, items)
        streaming = PerKeyCardinality(precision=12)
        for start in range(0, 2000, 100):
            streaming.update(keys[start : start + 100], items[start : start + 100])
        for key in batch.keys():
            assert streaming.estimate(key) == pytest.approx(batch.estimate(key), rel=1e-9)

    def test_merge_across_days(self):
        """Per-day sketches merge into the multi-day answer (the reason
        the sketch exists: month-scale traces processed day by day)."""
        day1 = PerKeyCardinality(precision=12)
        day1.update(np.full(300, 7), np.arange(300))
        day2 = PerKeyCardinality(precision=12)
        day2.update(np.full(300, 7), np.arange(150, 450))  # half overlap
        day1.merge(day2)
        assert day1.estimate(7) == pytest.approx(450, rel=0.15)

    def test_merge_precision_mismatch(self):
        with pytest.raises(ValueError):
            PerKeyCardinality(8).merge(PerKeyCardinality(10))

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            PerKeyCardinality().update(np.array([1, 2]), np.array([1]))

    def test_agrees_with_exact_counts_on_flow_data(self):
        """Cross-check against exact per-destination unique sources."""
        rng = np.random.default_rng(3)
        dsts = rng.integers(0, 10, 5000).astype(np.uint32)
        srcs = rng.integers(0, 2000, 5000).astype(np.uint32)
        counter = PerKeyCardinality(precision=12)
        counter.update(dsts, srcs)
        for dst in np.unique(dsts):
            exact = np.unique(srcs[dsts == dst]).size
            assert counter.estimate(int(dst)) == pytest.approx(exact, rel=0.2)
