"""Warm worker pool: reuse semantics, executor-mode parity, batching, sharding."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.booter.market import MarketConfig
from repro.core.parallel import daily_port_counts, day_attack_tables, observed_days
from repro.core.pipeline import TrafficSelector
from repro.core.workerpool import (
    EXECUTORS,
    ExecutionPolicy,
    WorkerPool,
    execution_policy,
    get_pool,
    record_inline_pool,
    register_scenario,
    set_execution_policy,
    shutdown_pool,
    worker_init_count,
)
from repro.netmodel.topology import TopologyConfig
from repro.obs.metrics import MetricsRegistry, metrics, set_metrics, set_thread_metrics
from repro.obs.runledger import counter_digest
from repro.scenario import Scenario, ScenarioConfig

SELECTORS = [
    TrafficSelector("ntp_to", 123, "to_reflectors"),
    TrafficSelector("ntp_from", 123, "from_reflectors"),
]


def _config(**overrides) -> ScenarioConfig:
    params = dict(
        scale=0.05,
        topology=TopologyConfig(n_tier1=3, n_tier2=8, n_stub=40),
        market=MarketConfig(daily_attacks=40.0, n_victims=200),
        pool_sizes=(
            ("ntp", 800),
            ("dns", 500),
            ("cldap", 200),
            ("memcached", 100),
            ("ssdp", 120),
        ),
    )
    params.update(overrides)
    return ScenarioConfig(**params)


@pytest.fixture(scope="module")
def scenario():
    return Scenario(_config())


@pytest.fixture(autouse=True)
def _clean_pool():
    """Every test starts and ends without a live pool or policy override."""
    shutdown_pool()
    previous = set_execution_policy(ExecutionPolicy())
    yield
    set_execution_policy(previous)
    shutdown_pool()


def _tables_equal(a, b) -> bool:
    return np.array_equal(a.to_structured(), b.to_structured())


class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.executor == "process"
        assert policy.batch_days == 0
        assert policy.day_shards == 0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ExecutionPolicy(executor="gpu")
        with pytest.raises(ValueError, match="batch_days"):
            ExecutionPolicy(batch_days=-1)
        with pytest.raises(ValueError, match="day_shards"):
            ExecutionPolicy(day_shards=-2)

    def test_set_and_restore(self):
        previous = set_execution_policy(executor="thread", batch_days=3)
        assert execution_policy().executor == "thread"
        assert execution_policy().batch_days == 3
        set_execution_policy(previous)
        assert execution_policy() == previous


class TestWarmPoolReuse:
    def test_pool_survives_consecutive_fans(self, scenario):
        registry = MetricsRegistry(enabled=True)
        previous = set_metrics(registry)
        try:
            observed_days(scenario, "ixp", [40, 41], jobs=2, executor="process")
            observed_days(scenario, "ixp", [42, 43], jobs=2, executor="process")
            daily_port_counts(
                scenario, "ixp", SELECTORS, [44, 45], jobs=2, executor="process"
            )
        finally:
            set_metrics(previous)
        assert registry.counter("pool.spawns") == 1
        assert registry.counter("pool.reuses") >= 2

    def test_initializer_runs_once_per_worker(self, scenario):
        pool = get_pool(scenario, 2, "process")
        reports = pool.probe()
        # The parent never runs the initializer itself.
        assert worker_init_count() == 0
        by_pid = {r["pid"]: r for r in reports}
        assert len(by_pid) >= 1  # every probe came from a live worker
        for report in by_pid.values():
            assert report["worker_inits"] == 1
            assert scenario.config.content_hash() in report["scenarios"]

    def test_reregistration_shuts_down_stale_pool(self, scenario):
        pool = get_pool(scenario, 2, "process")
        assert not pool.closed
        other = Scenario(_config(seed=7))
        register_scenario(other)
        assert pool.closed
        fresh = get_pool(other, 2, "process")
        assert fresh is not pool
        assert fresh.key[2] == other.config.content_hash()

    def test_same_key_returns_same_pool(self, scenario):
        a = get_pool(scenario, 2, "process")
        b = get_pool(scenario, 2, "process")
        assert a is b
        assert b.reuses == 1
        c = get_pool(scenario, 2, "thread")
        assert c is not a
        assert a.closed  # differing key replaced the singleton

    def test_closed_pool_refuses_work(self, scenario):
        pool = get_pool(scenario, 2, "thread")
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.map_with_deltas(len, [[1]])

    def test_inline_mode_never_builds_a_pool(self, scenario):
        with pytest.raises(ValueError, match="inline"):
            get_pool(scenario, 2, "inline")
        with pytest.raises(ValueError):
            WorkerPool("inline", 2, scenario.config)


class TestExecutorParity:
    def test_results_and_digest_identical_across_modes(self, scenario):
        days = [40, 41, 42, 43]
        tables = {}
        digests = {}
        for mode in EXECUTORS:
            registry = MetricsRegistry(enabled=True)
            previous = set_metrics(registry)
            try:
                tables[mode] = observed_days(
                    scenario, "ixp", days, jobs=2, executor=mode
                )
            finally:
                set_metrics(previous)
            shutdown_pool()
            digests[mode] = counter_digest(registry.counters)
        assert len(set(digests.values())) == 1, digests
        for mode in ("process", "thread"):
            for a, b in zip(tables["inline"], tables[mode]):
                assert _tables_equal(a, b), mode

    def test_digest_identical_across_batch_sizes(self, scenario):
        days = list(range(40, 46))
        digests = {}
        baseline = None
        for batch in (1, 2, 6):
            registry = MetricsRegistry(enabled=True)
            previous = set_metrics(registry)
            try:
                counts = daily_port_counts(
                    scenario, "ixp", SELECTORS, days,
                    jobs=2, executor="process", batch_days=batch,
                )
            finally:
                set_metrics(previous)
            shutdown_pool()
            digests[batch] = counter_digest(registry.counters)
            if baseline is None:
                baseline = counts
            else:
                assert counts == baseline
        assert len(set(digests.values())) == 1, digests

    def test_thread_mode_records_no_transport_bytes(self, scenario):
        registry = MetricsRegistry(enabled=True)
        previous = set_metrics(registry)
        try:
            observed_days(scenario, "ixp", [40, 41, 42], jobs=2, executor="thread")
        finally:
            set_metrics(previous)
        assert registry.counter("pool.pipe_bytes") == 0
        assert registry.counter("shm.bytes") == 0
        assert registry.counter("pool.tasks") == 3

    def test_inline_records_pool_counter_family(self, scenario):
        registry = MetricsRegistry(enabled=True)
        previous = set_metrics(registry)
        try:
            observed_days(scenario, "ixp", [40, 41], jobs=2, executor="inline")
        finally:
            set_metrics(previous)
        assert registry.counter("pool.tasks") == 2
        assert registry.counter("pool.wall_s") > 0
        assert registry.counter("pool.capacity_s") == registry.counter("pool.wall_s")
        assert registry.counter("pool.busy_s") > 0
        assert registry.gauges["pool.workers"] == 1

    def test_record_inline_pool_noop_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        record_inline_pool(registry, 5, 1.0)
        assert registry.counter("pool.tasks") == 0
        record_inline_pool(MetricsRegistry(enabled=True), 0, 1.0)  # no tasks, no-op


class TestDayBatching:
    def test_resolve_batch_auto_and_explicit(self, scenario):
        pool = get_pool(scenario, 2, "thread")
        # Auto: about _OVERSUBSCRIBE batches per worker.
        assert pool.resolve_batch(16, None) == 2
        assert pool.resolve_batch(16, 0) == 2
        assert pool.resolve_batch(3, None) == 1
        # Explicit, clamped to the item count.
        assert pool.resolve_batch(10, 4) == 4
        assert pool.resolve_batch(2, 100) == 2
        assert pool.resolve_batch(1, 0) == 1

    def test_batching_collapses_dispatches(self, scenario):
        days = list(range(40, 46))
        registry = MetricsRegistry(enabled=True)
        previous = set_metrics(registry)
        try:
            observed_days(
                scenario, "ixp", days, jobs=2, executor="process", batch_days=3
            )
        finally:
            set_metrics(previous)
        assert registry.counter("pool.tasks") == 6
        assert registry.counter("pool.batches") == 2
        assert registry.gauges["pool.batch_size"] == 3

    def test_per_day_deltas_survive_batching(self, scenario):
        days = [40, 41, 42, 43]
        per_batch = {}
        for batch in (1, 4):
            registry = MetricsRegistry(enabled=True)
            previous = set_metrics(registry)
            try:
                day_attack_tables(
                    scenario, days, jobs=2, executor="process",
                    batch_days=batch, cache=True,
                )
            finally:
                set_metrics(previous)
            shutdown_pool()
            from repro.core.parallel import day_cache

            per_batch[batch] = registry.counter("scenario.days_generated")
            day_cache().clear()
        # The logical work counters are batch-size invariant.
        assert per_batch[1] == per_batch[4] == len(days)


class TestIntraDaySharding:
    def test_shard_path_matches_unsharded_per_event_world(self):
        config = _config(per_event_seeds=True)
        whole = Scenario(config)
        days = [40, 41]
        expected = observed_days(whole, "ixp", days, jobs=1)

        sharded_scenario = Scenario(config)
        previous = set_execution_policy(day_shards=2)
        registry = MetricsRegistry(enabled=True)
        previous_reg = set_metrics(registry)
        try:
            # One missing day at a time (< jobs) engages the shard path.
            got = [
                observed_days(sharded_scenario, "ixp", [day], jobs=2)[0]
                for day in days
            ]
        finally:
            set_metrics(previous_reg)
            set_execution_policy(previous)
        assert registry.counter("pool.shard_tasks") == 2 * len(days)
        for a, b in zip(expected, got):
            assert _tables_equal(a, b)

    def test_shard_digest_matches_unsharded(self):
        config = _config(per_event_seeds=True)
        digests = {}
        for shards in (1, 3):
            registry = MetricsRegistry(enabled=True)
            previous_reg = set_metrics(registry)
            previous = set_execution_policy(day_shards=shards)
            try:
                scenario = Scenario(config)
                observed_days(scenario, "ixp", [40], jobs=2 if shards > 1 else 1)
            finally:
                set_execution_policy(previous)
                set_metrics(previous_reg)
            shutdown_pool()
            digests[shards] = counter_digest(registry.counters)
        assert digests[1] == digests[3]

    def test_sharding_requires_per_event_seeds(self, scenario):
        # Legacy seeding: the shard path never engages even when enabled.
        previous = set_execution_policy(day_shards=4)
        registry = MetricsRegistry(enabled=True)
        previous_reg = set_metrics(registry)
        try:
            observed_days(scenario, "ixp", [40], jobs=2)
        finally:
            set_metrics(previous_reg)
            set_execution_policy(previous)
        assert registry.counter("pool.shard_tasks") == 0
        with pytest.raises(ValueError, match="per_event_seeds"):
            scenario.day_traffic_shard(40, 0, 2)

    def test_per_event_seeds_changes_content_hash(self):
        legacy = _config()
        per_event = _config(per_event_seeds=True)
        assert legacy.content_hash() != per_event.content_hash()


class TestHypothesisTransportInvariance:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        batch=st.integers(min_value=1, max_value=5),
        shards=st.integers(min_value=1, max_value=4),
    )
    def test_batch_and_shard_counts_never_change_results(self, batch, shards):
        """Transport knobs (batch size, shard count) are invisible in results
        and in the scenario.* replay deltas."""
        config = _config(per_event_seeds=True, n_days=46, takedown_day=43)
        expected = Scenario(config).day_traffic(41)

        shutdown_pool()
        previous = set_execution_policy(
            executor="thread", batch_days=batch, day_shards=shards
        )
        registry = MetricsRegistry(enabled=True)
        previous_reg = set_metrics(registry)
        try:
            scenario = Scenario(config)
            tables = observed_days(scenario, "ixp", [41], jobs=2)
            reference = scenario.observe_day("ixp", expected)
        finally:
            set_metrics(previous_reg)
            set_execution_policy(previous)
            shutdown_pool()
        assert _tables_equal(tables[0], reference)
        assert registry.counter("scenario.days_generated") == 1.0
        assert registry.counter("scenario.flows_synthesized") >= 1.0


class TestThreadMetricsIsolation:
    def test_thread_local_override_shadows_global(self):
        base = MetricsRegistry(enabled=True)
        previous = set_metrics(base)
        try:
            local = MetricsRegistry(enabled=True)
            before = set_thread_metrics(local)
            try:
                metrics().inc("test.counter")
            finally:
                set_thread_metrics(before)
            metrics().inc("test.other")
        finally:
            set_metrics(previous)
        assert local.counter("test.counter") == 1
        assert base.counter("test.counter") == 0
        assert base.counter("test.other") == 1

    def test_worker_threads_do_not_interleave_counters(self, scenario):
        registry = MetricsRegistry(enabled=True)
        previous = set_metrics(registry)
        try:
            pairs = observed_days(scenario, "ixp", [40, 41, 42, 43], jobs=2, executor="thread")
        finally:
            set_metrics(previous)
        assert len(pairs) == 4
        # Four days of logical work, attributed exactly once each.
        assert registry.counter("scenario.days_generated") == 4
