"""Parity of the vectorized topology/visibility planes with the legacy engines.

The array-based Gao-Rexford route engine and the blocked visibility
matrix are pure representation changes: over any topology they must
reproduce the legacy dict BFS and the per-pair oracle bit for bit. These
properties are asserted over randomized small worlds (hypothesis) plus
directed regressions for the LRU bounds and index fallbacks.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netmodel.topology import ASTopology, TopologyConfig, build_topology
from repro.obs import MetricsRegistry, use_metrics
from repro.stats.rng import SeedSequenceTree
from repro.vantage.matrix import VisibilityMatrix
from repro.vantage.visibility import FlowVisibility

slow_settings = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

topo_configs = st.builds(
    TopologyConfig,
    n_tier1=st.integers(2, 4),
    n_tier2=st.integers(2, 8),
    n_stub=st.integers(4, 24),
    tier2_ixp_member_fraction=st.sampled_from([0.0, 0.4, 0.8, 1.0]),
    stub_ixp_member_fraction=st.sampled_from([0.0, 0.2, 0.5]),
    tier2_peering_prob=st.sampled_from([0.0, 0.2, 0.6]),
)


def _world(config, seed):
    return build_topology(config, SeedSequenceTree(seed).child("w"))


def _entry_tuples(routes):
    return {asn: (e.kind, e.length, e.next_hop) for asn, e in routes.items()}


class TestRouteEngineParity:
    @slow_settings
    @given(config=topo_configs, seed=st.integers(0, 2**32 - 1))
    def test_array_engine_matches_legacy_bfs(self, config, seed):
        """Every destination's route tree is identical across engines."""
        _, topo = _world(config, seed)
        for dst in topo.asns:
            assert _entry_tuples(topo._routes_to(dst)) == _entry_tuples(
                topo._routes_to_legacy(dst)
            ), dst

    @slow_settings
    @given(config=topo_configs, seed=st.integers(0, 2**32 - 1))
    def test_routes_to_many_matches_single(self, config, seed):
        _, topo = _world(config, seed)
        dsts = topo.asns
        kind, length, hop = topo.routes_to_many(dsts)
        for row, dst in enumerate(dsts):
            k, l, h = topo.routes_to_arrays(dst)
            np.testing.assert_array_equal(kind[row], k)
            np.testing.assert_array_equal(length[row], l)
            np.testing.assert_array_equal(hop[row], h)

    def test_path_uses_seen_set_and_matches_route_tree(self):
        _, topo = _world(TopologyConfig(n_tier1=3, n_tier2=6, n_stub=20), 11)
        for dst in topo.asns[:10]:
            routes = topo._routes_to_legacy(dst)
            for src in topo.asns:
                path = topo.path(src, dst)
                if src == dst:
                    assert path == [src]
                elif src not in routes:
                    assert path is None
                else:
                    assert path is not None
                    assert path[0] == src and path[-1] == dst
                    assert len(path) == routes[src].length + 1
                    assert len(set(path)) == len(path)

    def test_customer_cone_memoized_per_version(self):
        _, topo = _world(TopologyConfig(n_tier1=2, n_tier2=4, n_stub=8), 3)
        t1 = sorted(topo.asns)[0]
        first = topo.customer_cone(t1)
        assert topo.customer_cone(t1) is first  # memo hit
        stubs = sorted(topo.asns)
        topo.add_customer_provider(stubs[-1], stubs[-2])
        assert topo.customer_cone(t1) is not first  # version bump cleared it

    def test_cone_mask_matches_cone(self):
        _, topo = _world(TopologyConfig(n_tier1=3, n_tier2=5, n_stub=12), 5)
        plane = topo.route_plane()
        for asn in topo.asns:
            mask = topo.customer_cone_mask(asn)
            assert set(plane.asns[mask].tolist()) == topo.customer_cone(asn)


class TestRouteCacheBounds:
    def test_route_cache_evicts_under_byte_budget(self):
        _, topo = _world(TopologyConfig(n_tier1=2, n_tier2=4, n_stub=16), 9)
        # One entry is n * (1 + 4 + 4) bytes; budget two entries.
        per_entry = len(topo.asns) * 9
        topo.route_cache_max_bytes = 2 * per_entry
        with use_metrics(MetricsRegistry()) as registry:
            for dst in topo.asns[:6]:
                topo.routes_to_arrays(dst)
        assert len(topo._route_cache) <= 2
        assert registry.counter("topology.route_cache_evictions") >= 4
        assert topo._route_cache_bytes <= topo.route_cache_max_bytes
        # Evicted destinations recompute to the same tree.
        first = topo.asns[0]
        assert _entry_tuples(topo._routes_to(first)) == _entry_tuples(
            topo._routes_to_legacy(first)
        )

    def test_cache_cleared_on_edge_mutation(self):
        _, topo = _world(TopologyConfig(n_tier1=2, n_tier2=4, n_stub=8), 13)
        topo.routes_to_arrays(topo.asns[0])
        assert topo._route_cache
        asns = sorted(topo.asns)
        topo.add_peering(asns[-1], asns[-2], via_ixp=True)
        assert not topo._route_cache
        assert topo._route_cache_bytes == 0


class TestMatrixModeParity:
    @slow_settings
    @given(
        config=topo_configs,
        seed=st.integers(0, 2**32 - 1),
        block_columns=st.sampled_from([1, 3, 8, 64]),
    )
    def test_blocked_matches_dense_and_oracle_all_views(
        self, config, seed, block_columns
    ):
        """All pairs, all observer views, dense == blocked == oracle."""
        _, topo = _world(config, seed)
        asns = np.asarray(sorted(topo.asns))
        n = asns.size
        dense = VisibilityMatrix(topo, mode="dense")
        blocked = VisibilityMatrix(
            topo, mode="blocked", block_columns=block_columns
        )
        oracle = FlowVisibility(topo)
        ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        si, di = ii.ravel(), jj.ravel()

        views = [("ixp", None, None)]
        tier1 = int(asns[0])
        member = next(
            (int(a) for a in asns.tolist() if topo.registry.get(a).ixp_member), None
        )
        views.append(("isp", tier1, True))  # tier-1 ingress_only cone view
        views.append(("isp", tier1, False))
        if member is not None:
            views.append(("isp", member, False))
        for kind, obs, ingress in views:
            if kind == "ixp":
                dv, dp = dense.lookup_ixp(si, di)
                bv, bp = blocked.lookup_ixp(si, di)
                check = lambda s, d: oracle.at_ixp(s, d)
            else:
                dv, dp = dense.lookup_isp(obs, ingress, si, di)
                bv, bp = blocked.lookup_isp(obs, ingress, si, di)
                check = lambda s, d: oracle.at_isp(obs, s, d, ingress)
            np.testing.assert_array_equal(dv, bv)
            np.testing.assert_array_equal(dp, bp)
            # Oracle spot-parity on a stride (full n^2 would be slow in Python).
            for k in range(0, si.size, max(1, si.size // 64)):
                verdict = check(int(asns[si[k]]), int(asns[di[k]]))
                assert dv[k] == verdict.visible, (kind, obs, ingress, k)
                assert dp[k] == verdict.peer_asn, (kind, obs, ingress, k)

    def test_block_lru_evicts_and_counts(self):
        _, topo = _world(TopologyConfig(n_tier1=3, n_tier2=6, n_stub=24), 21)
        n = len(topo.asns)
        dense = VisibilityMatrix(topo, mode="dense")
        # Budget ~2 single-column blocks: scanning all columns must evict.
        tiny = VisibilityMatrix(
            topo, mode="blocked", block_columns=1, budget_bytes=2 * n * 5 + 1
        )
        ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        si, di = ii.ravel(), jj.ravel()
        with use_metrics(MetricsRegistry()) as registry:
            tv, tp = tiny.lookup_ixp(si, di)
        np.testing.assert_array_equal(tv, dense.lookup_ixp(si, di)[0])
        np.testing.assert_array_equal(tp, dense.lookup_ixp(si, di)[1])
        assert tiny.blocks_built == n
        assert tiny.evictions >= n - 3
        assert tiny.resident_bytes <= tiny.budget_bytes
        assert registry.counter("matrix.blocks_built") == n
        assert registry.counter("matrix.evictions") == tiny.evictions

    def test_blocked_mode_day_observation_matches_dense(self):
        """A full observation day resolves identically in both modes."""
        from repro.scenario import Scenario, ScenarioConfig

        base = dict(seed=77, scale=0.05, n_days=82)
        topo_cfg = TopologyConfig(n_tier1=3, n_tier2=8, n_stub=30)
        dense_sc = Scenario(ScenarioConfig(**base, topology=topo_cfg))
        blocked_sc = Scenario(
            ScenarioConfig(
                **base,
                topology=topo_cfg,
                visibility_mode="blocked",
                visibility_block_columns=5,
            )
        )
        assert dense_sc.visibility.matrix.blocked is False
        assert blocked_sc.visibility.matrix.blocked is True
        for day in (79, 80):
            dense_traffic = dense_sc.day_traffic(day)
            blocked_traffic = blocked_sc.day_traffic(day)
            for vantage in ("ixp", "tier1", "tier2"):
                w = dense_sc.observe_day(vantage, dense_traffic)
                g = blocked_sc.observe_day(vantage, blocked_traffic)
                assert len(w) == len(g), (day, vantage)
                for col in ("src_asn", "dst_asn", "peer_asn", "bytes"):
                    np.testing.assert_array_equal(
                        w[col], g[col], err_msg=f"{day}/{vantage}/{col}"
                    )

    def test_unknown_observer_raises_in_blocked_mode(self):
        _, topo = _world(TopologyConfig(n_tier1=2, n_tier2=4, n_stub=8), 31)
        blocked = VisibilityMatrix(topo, mode="blocked")
        with pytest.raises(KeyError):
            blocked.lookup_isp(999_999, False, np.zeros(1, np.int64), np.zeros(1, np.int64))
        assert not blocked.knows_observer(999_999)
        assert blocked.knows_observer(sorted(topo.asns)[0])


class TestIndexOfFallbacks:
    """``index_of`` must flag out-of-registry ASNs in both lookup modes."""

    def _matrix(self, monkeypatch, force_searchsorted):
        _, topo = _world(TopologyConfig(n_tier1=2, n_tier2=4, n_stub=8), 41)
        if force_searchsorted:
            monkeypatch.setattr(VisibilityMatrix, "_LUT_MAX_ASN", 1)
        return VisibilityMatrix(topo)

    @pytest.mark.parametrize("force_searchsorted", [False, True])
    def test_out_of_registry_values(self, monkeypatch, force_searchsorted):
        matrix = self._matrix(monkeypatch, force_searchsorted)
        if force_searchsorted:
            assert matrix._lut is None
        else:
            assert matrix._lut is not None
        asns = matrix.asns
        values = np.array(
            [-1, int(asns[0]), int(asns[0]) - 1, int(asns[-1]), int(asns[-1]) + 1, 999_999],
            dtype=np.int64,
        )
        idx = matrix.index_of(values)
        np.testing.assert_array_equal(idx, [-1, 0, -1, asns.size - 1, -1, -1])

    @pytest.mark.parametrize("force_searchsorted", [False, True])
    def test_mask_fallback_agrees_with_oracle(self, monkeypatch, force_searchsorted):
        _, topo = _world(TopologyConfig(n_tier1=2, n_tier2=4, n_stub=8), 41)
        if force_searchsorted:
            monkeypatch.setattr(VisibilityMatrix, "_LUT_MAX_ASN", 1)
        vis = FlowVisibility(topo, matrix=VisibilityMatrix(topo))
        oracle = FlowVisibility(topo)
        asns = sorted(topo.asns)
        src = np.array([asns[0], -1, 999_999, asns[2]], dtype=np.int64)
        dst = np.array([asns[3], asns[1], asns[0], -1], dtype=np.int64)
        np.testing.assert_array_equal(
            vis.ixp_mask(src, dst)[0], oracle.ixp_mask(src, dst)[0]
        )
        np.testing.assert_array_equal(
            vis.isp_mask(asns[0], src, dst, True)[1],
            oracle.isp_mask(asns[0], src, dst, True)[1],
        )


class TestBulkAdders:
    def test_bulk_edges_match_sequential(self):
        cfg = TopologyConfig(n_tier1=3, n_tier2=5, n_stub=10)
        reg_a, topo_a = _world(cfg, 51)
        version_before = topo_a.version

        reg_b, topo_b = _world(cfg, 51)
        asns = sorted(topo_a.asns)
        pairs = [(asns[-1], asns[-2]), (asns[-3], asns[-4])]
        topo_a.add_peering_edges(pairs, via_ixp=True)
        for a, b in pairs:
            topo_b.add_peering(a, b, via_ixp=True)
        assert topo_a.version > version_before
        for a in asns:
            assert topo_a.peers(a) == topo_b.peers(a)
        assert topo_a._ixp_peer_edges == topo_b._ixp_peer_edges

    def test_bulk_adder_rejects_conflicts(self):
        _, topo = _world(TopologyConfig(n_tier1=2, n_tier2=4, n_stub=8), 61)
        asns = sorted(topo.asns)
        provider = next(iter(topo.providers(asns[-1])))
        with pytest.raises(ValueError, match="conflicting"):
            topo.add_peering_edges([(asns[-1], provider)])
        with pytest.raises(ValueError, match="own provider"):
            topo.add_customer_provider_edges([(asns[0], asns[0])])

    def test_multilateral_mesh_matches_pairwise(self):
        cfg = TopologyConfig(n_tier1=3, n_tier2=6, n_stub=12)
        _, topo_a = _world(cfg, 71)
        _, topo_b = _world(cfg, 71)
        members = sorted(topo_a.asns)[:6]
        added = topo_a.add_multilateral_peering(members)
        count = 0
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if b in topo_b.providers(a) or b in topo_b.customers(a):
                    continue
                if b in topo_b.peers(a):
                    continue
                topo_b.add_peering(a, b, via_ixp=True)
                count += 1
        assert added == count
        for a in members:
            assert topo_a.peers(a) == topo_b.peers(a)
        assert topo_a._ixp_peer_edges == topo_b._ixp_peer_edges


class TestScaleConfig:
    def test_internet_scale_shapes(self):
        cfg = TopologyConfig.internet_scale(10_000)
        assert cfg.n_asns == 10_000
        assert cfg.sampler == "vectorized"
        assert 8 <= cfg.n_tier1 <= 20
        with pytest.raises(ValueError):
            TopologyConfig.internet_scale(100)

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError, match="sampler"):
            TopologyConfig(sampler="quantum")

    def test_vectorized_sampler_builds_valid_world(self):
        cfg = TopologyConfig(
            n_tier1=3, n_tier2=10, n_stub=40, sampler="vectorized"
        )
        _, topo = _world(cfg, 81)
        assert len(topo.asns) == cfg.n_asns
        # Every non-tier-1 AS has at least one provider (connected transit).
        asns = sorted(topo.asns)
        for asn in asns[cfg.n_tier1 :]:
            assert topo.providers(asn), asn
        # Uplinks are distinct per AS (sampling without replacement).
        for asn in asns[cfg.n_tier1 :]:
            provs = topo.providers(asn)
            assert len(provs) == len(set(provs))
        # Deterministic: same seed, same world.
        _, topo2 = _world(cfg, 81)
        assert topo.asns == topo2.asns
        for a in topo.asns:
            assert topo.providers(a) == topo2.providers(a)
            assert topo.peers(a) == topo2.peers(a)
