"""Tests for victim reports, attacks-per-hour, overlap, takedown analysis."""

import numpy as np
import pytest

from repro.core.overlap import reflector_overlap_matrix
from repro.core.takedown_analysis import analyze_takedown
from repro.core.victims import attacks_per_hour, victim_report
from repro.flows.records import FlowTable


def attack_table(dst, n_src, gbps, t0=0.0, duration=60.0, size=487):
    """One attack: n_src sources sending `gbps` total for `duration`."""
    total_bytes = gbps * 1e9 / 8 * duration
    per_flow_packets = max(1, int(total_bytes / size / n_src))
    n = n_src
    return FlowTable(
        {
            "time": np.full(n, t0),
            "src_ip": np.arange(n, dtype=np.uint32) + int(dst) * 100_000,
            "dst_ip": np.full(n, dst, dtype=np.uint32),
            "proto": np.full(n, 17, dtype=np.uint8),
            "src_port": np.full(n, 123, dtype=np.uint16),
            "dst_port": np.full(n, 50000, dtype=np.uint16),
            "packets": np.full(n, per_flow_packets, dtype=np.int64),
            "bytes": np.full(n, per_flow_packets * size, dtype=np.int64),
        }
    )


class TestVictimReport:
    def test_basic_metrics(self):
        t = FlowTable.concat(
            [attack_table(1, n_src=300, gbps=5.0), attack_table(2, n_src=20, gbps=0.2)]
        )
        report = victim_report(t)
        assert report.n_destinations == 2
        assert report.max_victim_gbps() == pytest.approx(5.0, rel=0.05)
        assert report.victims_above_gbps(1.0) == 1

    def test_sampling_factor_scales_rates(self):
        t = attack_table(1, n_src=100, gbps=2.0).scale_counts(1e-4)
        report = victim_report(t, sampling_factor=1e4)
        assert report.max_victim_gbps() == pytest.approx(2.0, rel=0.05)

    def test_benign_excluded(self):
        benign = attack_table(3, n_src=50, gbps=0.5, size=90)  # small packets
        report = victim_report(benign)
        assert report.n_destinations == 0

    def test_invalid_sampling(self):
        with pytest.raises(ValueError):
            victim_report(FlowTable.empty(), sampling_factor=0)


class TestAttacksPerHour:
    def test_counts_attacks_in_right_hours(self):
        hour = 3600.0
        t = FlowTable.concat(
            [
                attack_table(1, n_src=300, gbps=5.0, t0=0.0),
                attack_table(2, n_src=300, gbps=5.0, t0=2.5 * hour),
                attack_table(3, n_src=5, gbps=5.0, t0=2.5 * hour),  # too few srcs
                attack_table(4, n_src=300, gbps=0.2, t0=2.5 * hour),  # too slow
            ]
        )
        counts = attacks_per_hour(t, 0.0, 4 * hour)
        np.testing.assert_array_equal(counts, [1, 0, 1, 0])

    def test_empty(self):
        counts = attacks_per_hour(FlowTable.empty(), 0.0, 7200.0)
        np.testing.assert_array_equal(counts, [0, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            attacks_per_hour(FlowTable.empty(), 100.0, 0.0)


class TestOverlapMatrix:
    def test_matrix_properties(self):
        sets = [np.array([1, 2, 3]), np.array([2, 3, 4]), np.array([10, 11])]
        labels = [("A", "d1"), ("A", "d2"), ("B", "d1")]
        om = reflector_overlap_matrix(sets, labels)
        assert om.matrix.shape == (3, 3)
        np.testing.assert_allclose(np.diag(om.matrix), 1.0)
        np.testing.assert_allclose(om.matrix, om.matrix.T)
        assert om.overlap(0, 1) == pytest.approx(0.5)
        assert om.overlap(0, 2) == 0.0

    def test_pair_helpers(self):
        sets = [np.array([1]), np.array([1]), np.array([2])]
        labels = [("A", "d1"), ("A", "d1"), ("B", "d2")]
        om = reflector_overlap_matrix(sets, labels)
        assert om.pairs_of_booter("A") == [(0, 1)]
        assert om.cross_booter_pairs() == [(0, 2), (1, 2)]
        assert om.same_label_date_pairs("A", "d1") == [(0, 1)]
        assert om.mean_overlap([(0, 1)]) == 1.0
        assert np.isnan(om.mean_overlap([]))

    def test_validation(self):
        with pytest.raises(ValueError):
            reflector_overlap_matrix([], [])
        with pytest.raises(ValueError):
            reflector_overlap_matrix([np.array([1])], [])


class TestAnalyzeTakedown:
    def make_series(self, before_level, after_level, n=122, takedown=80, noise=0.05, seed=0):
        rng = np.random.default_rng(seed)
        series = np.empty(n)
        series[:takedown] = before_level * rng.lognormal(0, noise, takedown)
        series[takedown:] = after_level * rng.lognormal(0, noise, n - takedown)
        return series

    def test_detects_reduction(self):
        series = self.make_series(1000.0, 250.0)
        report = analyze_takedown(series, 80, series_name="test")
        for w in (30, 40):
            assert report.window(w).significant
            assert report.window(w).reduction_ratio == pytest.approx(0.25, abs=0.05)

    def test_null_when_unchanged(self):
        series = self.make_series(1000.0, 1000.0, noise=0.2)
        report = analyze_takedown(series, 80)
        assert not report.window(30).significant
        assert not report.window(40).significant

    def test_takedown_day_excluded(self):
        series = self.make_series(100.0, 100.0, noise=0.0)
        series[80] = 1e9  # an outlier on the seizure day must not matter
        report = analyze_takedown(series, 80)
        assert report.window(30).welch.mean_before == pytest.approx(100.0)
        assert report.window(30).welch.mean_after == pytest.approx(100.0)

    def test_window_bounds_checked(self):
        series = np.ones(50)
        with pytest.raises(ValueError):
            analyze_takedown(series, 25, windows=(30,))
        with pytest.raises(ValueError):
            analyze_takedown(series, 99)
        with pytest.raises(ValueError):
            analyze_takedown(series, 25, windows=(1,))
        with pytest.raises(ValueError):
            analyze_takedown(np.ones((2, 2)), 0)

    def test_unknown_window_lookup(self):
        report = analyze_takedown(self.make_series(10, 5), 80)
        with pytest.raises(KeyError):
            report.window(99)

    def test_summary_line(self):
        report = analyze_takedown(self.make_series(1000.0, 250.0), 80, series_name="memcached@ixp")
        line = report.summary_line()
        assert "memcached@ixp" in line
        assert "wt30=True" in line
        assert "red30=" in line

    def test_collection_gaps_excluded(self):
        """NaN days (export outages) must not count as zero traffic."""
        series = self.make_series(100.0, 100.0, noise=0.01)
        series[60:70] = np.nan  # a 10-day outage before the takedown
        report = analyze_takedown(series, 80, windows=(30,))
        w = report.window(30)
        assert not w.significant  # a gap is not a reduction
        assert w.welch.mean_before == pytest.approx(100.0, rel=0.02)

    def test_too_many_gaps_rejected(self):
        series = self.make_series(100.0, 100.0)
        series[50:80] = np.nan  # the whole before-window gone
        with pytest.raises(ValueError, match="gaps"):
            analyze_takedown(series, 80, windows=(30,))

    def test_min_samples_validation(self):
        with pytest.raises(ValueError):
            analyze_takedown(self.make_series(1, 1), 80, min_window_samples=1)
