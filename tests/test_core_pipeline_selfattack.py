"""Tests for the scenario pipeline and self-attack summarization."""

import numpy as np
import pytest

from repro.booter.market import MarketConfig
from repro.core.pipeline import TrafficSelector, collect_daily_port_series
from repro.core.selfattack import fig1a_points, summarize_measurements
from repro.netmodel.topology import TopologyConfig
from repro.scenario import Scenario, ScenarioConfig
from repro.stats.rng import SeedSequenceTree
from repro.vantage.observatory import SelfAttackMeasurement


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        ScenarioConfig(
            scale=0.15,
            topology=TopologyConfig(n_tier1=3, n_tier2=10, n_stub=60),
            market=MarketConfig(daily_attacks=25.0, n_victims=250),
            pool_sizes=(("ntp", 1500), ("dns", 1200), ("cldap", 500), ("memcached", 250), ("ssdp", 300)),
        )
    )


class TestTrafficSelector:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficSelector("x", 123, "sideways")
        with pytest.raises(ValueError):
            TrafficSelector("x", 0, "to_reflectors")

    def test_direction_selection(self, scenario):
        traffic = scenario.day_traffic(30)
        table = traffic.all_flows()
        to_ntp = TrafficSelector("to", 123, "to_reflectors").packets(table)
        from_ntp = TrafficSelector("from", 123, "from_reflectors").packets(table)
        assert to_ntp > 0
        assert from_ntp > 0
        # Victim-side amplified traffic and reflector-bound traffic are
        # the same order of magnitude (scans dominate the latter).
        assert 0.05 < from_ntp / to_ntp < 20.0


class TestCollectDailySeries:
    def test_series_collection(self, scenario):
        selectors = [
            TrafficSelector("ntp_to", 123, "to_reflectors"),
            TrafficSelector("ntp_from", 123, "from_reflectors"),
        ]
        result = collect_daily_port_series(
            scenario, "tier2", selectors, day_range=(40, 44)
        )
        assert result.days.tolist() == [40, 41, 42, 43]
        assert result.get("ntp_to").shape == (4,)
        assert result.get("ntp_to").sum() > 0

    def test_out_of_window_days_zero(self, scenario):
        selectors = [TrafficSelector("ntp_to", 123, "to_reflectors")]
        result = collect_daily_port_series(scenario, "tier1", selectors, day_range=(10, 12))
        np.testing.assert_allclose(result.get("ntp_to"), 0.0)

    def test_unknown_series(self, scenario):
        selectors = [TrafficSelector("a", 123, "to_reflectors")]
        result = collect_daily_port_series(scenario, "tier2", selectors, day_range=(40, 41))
        with pytest.raises(KeyError):
            result.get("b")

    def test_duplicate_names_rejected(self, scenario):
        selectors = [
            TrafficSelector("a", 123, "to_reflectors"),
            TrafficSelector("a", 53, "to_reflectors"),
        ]
        with pytest.raises(ValueError):
            collect_daily_port_series(scenario, "tier2", selectors, day_range=(40, 41))

    def test_empty_range_rejected(self, scenario):
        with pytest.raises(ValueError):
            collect_daily_port_series(scenario, "tier2", [], day_range=(40, 40))

    def test_hook_called(self, scenario):
        seen = []
        collect_daily_port_series(
            scenario,
            "tier2",
            [TrafficSelector("a", 123, "to_reflectors")],
            day_range=(40, 42),
            per_day_hook=lambda day, table: seen.append((day, len(table))),
        )
        assert [d for d, _ in seen] == [40, 41]


def fake_measurement(mean_gbps=1.5, n_secs=60, n_reflectors=300, n_peers=25, seed=0):
    rng = np.random.default_rng(seed)
    bps = rng.normal(mean_gbps * 1e9, 0.05e9, n_secs).clip(min=0)
    transit = bps * 0.8
    peering = bps * 0.2
    return SelfAttackMeasurement(
        booter="B",
        vector="ntp",
        plan="non-vip",
        transit_enabled=True,
        seconds=np.arange(n_secs),
        delivered_bps=bps,
        offered_bps=bps,
        transit_bps=transit,
        peering_bps=peering,
        transit_up=np.ones(n_secs, dtype=bool),
        reflectors_per_second=np.full(n_secs, n_reflectors),
        peers_per_second=np.full(n_secs, n_peers),
        reflector_ips=rng.choice(10_000, n_reflectors, replace=False).astype(np.uint32),
        peer_asns=np.arange(n_peers, dtype=np.int64),
        peer_byte_share={},
    )


class TestSelfAttackSummary:
    def test_summary(self):
        ms = [fake_measurement(1.0, seed=1), fake_measurement(2.0, seed=2)]
        summary = summarize_measurements(ms)
        assert summary.n_measurements == 2
        assert summary.mean_mbps == pytest.approx(1500.0, rel=0.05)
        assert summary.peak_mbps > 1900
        assert summary.mean_reflectors == 300
        assert summary.mean_transit_share == pytest.approx(0.8, abs=0.01)

    def test_unique_reflectors_deduplicated(self):
        a = fake_measurement(seed=3)
        b = SelfAttackMeasurement(**{**a.__dict__})  # same reflector set
        summary = summarize_measurements([a, b])
        assert summary.total_unique_reflectors == a.n_reflectors

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_measurements([])

    def test_fig1a_points(self):
        m = fake_measurement()
        reflectors, peers, mbps = fig1a_points(m)
        assert reflectors.size == peers.size == mbps.size
        assert (mbps > 0).all()
