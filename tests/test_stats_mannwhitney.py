"""Tests for the Mann-Whitney U test, cross-checked against scipy."""

import numpy as np
import pytest
import scipy.stats

from repro.stats.mannwhitney import mannwhitney_one_tailed


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scipy_asymptotic(self, seed):
        rng = np.random.default_rng(seed)
        before = rng.normal(100, 20, 35)
        after = rng.normal(80, 20, 30)
        ours = mannwhitney_one_tailed(before, after)
        ref = scipy.stats.mannwhitneyu(
            before, after, alternative="greater", method="asymptotic"
        )
        assert ours.u_statistic == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-9)

    def test_matches_scipy_with_ties(self):
        before = np.array([5.0, 5.0, 7.0, 7.0, 9.0, 10.0, 10.0])
        after = np.array([4.0, 5.0, 5.0, 6.0, 7.0, 7.0])
        ours = mannwhitney_one_tailed(before, after)
        ref = scipy.stats.mannwhitneyu(
            before, after, alternative="greater", method="asymptotic"
        )
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-9)


class TestBehaviour:
    def test_detects_clear_reduction(self):
        rng = np.random.default_rng(1)
        before = rng.lognormal(np.log(1000), 0.2, 30)
        after = rng.lognormal(np.log(300), 0.2, 30)
        res = mannwhitney_one_tailed(before, after)
        assert res.significant
        assert res.reduction_ratio == pytest.approx(0.3, abs=0.08)

    def test_null_when_same(self):
        rng = np.random.default_rng(2)
        before = rng.lognormal(0, 1, 40)
        after = rng.lognormal(0, 1, 40)
        assert not mannwhitney_one_tailed(before, after).significant

    def test_robust_to_heavy_tails_where_welch_is_not(self):
        """A single colossal outlier in the 'after' window can mask a real
        reduction from a mean-based test; the rank test shrugs it off."""
        from repro.stats.welch import welch_one_tailed

        rng = np.random.default_rng(3)
        before = rng.normal(1000, 50, 30)
        after = rng.normal(400, 50, 30)
        after[5] = 2e6  # one absurd outlier day
        assert not welch_one_tailed(before, after).significant
        assert mannwhitney_one_tailed(before, after).significant

    def test_identical_constant_samples(self):
        res = mannwhitney_one_tailed(np.full(5, 7.0), np.full(5, 7.0))
        assert not res.significant
        assert res.p_value == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mannwhitney_one_tailed(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            mannwhitney_one_tailed(np.ones(3), np.ones(3), alpha=0.0)

    def test_reduction_ratio_zero_before(self):
        res = mannwhitney_one_tailed(np.zeros(5), np.ones(5))
        assert np.isnan(res.reduction_ratio)
