"""Tests for the booter-economy extension."""

import numpy as np
import pytest

from repro.booter.market import BooterMarket, MarketConfig
from repro.booter.reflectors import ReflectorPool
from repro.economics.customers import (
    CustomerDynamics,
    CustomerPopulationModel,
    normalize_popularity,
)
from repro.economics.interventions import (
    DomainSeizure,
    NoIntervention,
    OperatorArrest,
    PaymentIntervention,
)
from repro.economics.simulate import EconomySimulation
from repro.netmodel.topology import TopologyConfig, build_topology
from repro.stats.rng import SeedSequenceTree


@pytest.fixture(scope="module")
def market():
    reg, _ = build_topology(TopologyConfig(n_tier1=3, n_tier2=8, n_stub=40), SeedSequenceTree(1))
    seeds = SeedSequenceTree(2)
    pools = {"ntp": ReflectorPool.generate("ntp", 800, reg, seeds)}
    return BooterMarket(reg, pools, MarketConfig(daily_attacks=10, n_victims=100), SeedSequenceTree(3))


@pytest.fixture(scope="module")
def sim(market):
    return EconomySimulation(market, SeedSequenceTree(4))


class TestCustomerDynamics:
    def test_validation(self):
        with pytest.raises(ValueError):
            CustomerDynamics(market_signups_per_day=-1)
        with pytest.raises(ValueError):
            CustomerDynamics(churn_per_day=1.5)


class TestCustomerPopulationModel:
    def test_initial_follows_popularity(self, market):
        model = CustomerPopulationModel(market, CustomerDynamics(), SeedSequenceTree(5))
        counts = model.by_name()
        popular = max(market.services.values(), key=lambda s: s.popularity)
        assert counts[popular.name] == max(counts.values())

    def test_steady_state_roughly_stable(self, market):
        model = CustomerPopulationModel(market, CustomerDynamics(), SeedSequenceTree(6))
        start = model.total()
        for day in range(30):
            model.step(day)
        # Without intervention the market moves smoothly (no collapse/explosion).
        assert 0.5 * start < model.total() < 2.0 * start

    def test_zero_signup_mult_blocks_growth(self, market):
        model = CustomerPopulationModel(market, CustomerDynamics(), SeedSequenceTree(7))
        name = market.service_names()[0]
        before = model.by_name()[name]
        for day in range(10):
            model.step(day, signup_mult={name: 0.0})
        assert model.by_name()[name] < before  # churn only, no inflow

    def test_forced_churn_shrinks_target_grows_others(self, market):
        model = CustomerPopulationModel(market, CustomerDynamics(), SeedSequenceTree(8))
        victim = market.service_names()[0]
        other = market.service_names()[1]
        before = model.by_name()
        for day in range(5):
            model.step(day, signup_mult={victim: 0.0}, extra_churn={victim: 0.3})
        after = model.by_name()
        assert after[victim] < 0.4 * before[victim]
        assert after[other] > before[other]  # migration inflow

    def test_validation(self, market):
        model = CustomerPopulationModel(market, CustomerDynamics(), SeedSequenceTree(9))
        with pytest.raises(ValueError):
            model.step(0, extra_churn={market.service_names()[0]: 2.0})
        with pytest.raises(ValueError):
            model.step(0, migration_fraction=1.5)

    def test_deterministic(self, market):
        a = CustomerPopulationModel(market, CustomerDynamics(), SeedSequenceTree(10))
        b = CustomerPopulationModel(market, CustomerDynamics(), SeedSequenceTree(10))
        for day in range(5):
            np.testing.assert_allclose(a.step(day), b.step(day))


class _StubService:
    def __init__(self, popularity):
        self.popularity = popularity


class _StubMarket:
    def __init__(self, pops):
        self.services = {n: _StubService(p) for n, p in zip("ABCD", pops)}

    def service_names(self):
        return sorted(self.services)


class TestZeroPopularity:
    """Regression: an all-zero popularity vector must fail loudly, not 0/0."""

    def test_normalize_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="empty"):
            normalize_popularity(np.array([]))
        with pytest.raises(ValueError, match="negative"):
            normalize_popularity(np.array([1.0, -0.5]))
        with pytest.raises(ValueError, match="zero"):
            normalize_popularity(np.zeros(4))

    def test_normalize_uniform_fallback(self):
        out = normalize_popularity(np.zeros(4), uniform_fallback=True)
        np.testing.assert_allclose(out, 0.25)
        # A healthy vector normalizes the same either way.
        np.testing.assert_allclose(
            normalize_popularity(np.array([3.0, 1.0]), uniform_fallback=True),
            [0.75, 0.25],
        )

    def test_population_model_raises_not_nan(self):
        with pytest.raises(ValueError, match="popularity"):
            CustomerPopulationModel(
                _StubMarket([0.0, 0.0, 0.0, 0.0]), CustomerDynamics(), SeedSequenceTree(1)
            )

    def test_market_popularity_vector(self, market):
        weights = market.popularity_vector()
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()
        assert weights.size == len(market.service_names())


class TestInterventionEdgeCases:
    """Degenerate parameters that used to be untested corners."""

    def test_full_daily_churn(self):
        dynamics = CustomerDynamics(churn_per_day=1.0)
        model = CustomerPopulationModel(
            _StubMarket([4.0, 2.0, 1.0, 1.0]), dynamics, SeedSequenceTree(21)
        )
        for day in range(5):
            counts = model.step(day)
        # The whole stock turns over daily: what's left is one day's inflow.
        assert np.isfinite(counts).all()
        assert 0 < counts.sum() < 4 * dynamics.market_signups_per_day

    def test_all_booters_seized_simultaneously(self):
        model = CustomerPopulationModel(
            _StubMarket([4.0, 2.0, 1.0, 1.0]), CustomerDynamics(), SeedSequenceTree(22)
        )
        kill = {n: 0.0 for n in model.names}
        burn = {n: 1.0 for n in model.names}
        counts = model.step(0, signup_mult=kill, extra_churn=burn)
        # Nowhere to migrate: the displaced leave rather than divide by zero.
        assert np.isfinite(counts).all()
        assert counts.sum() == 0.0
        # A further day on the empty market stays finite and empty.
        counts = model.step(1, signup_mult=kill, extra_churn=burn)
        assert counts.sum() == 0.0

    def test_intervention_at_horizon(self, market):
        sim = EconomySimulation(market, SeedSequenceTree(23))
        report = sim.run(40, DomainSeizure(day=40))
        assert report.dip_fraction() == 0.0
        assert report.recovery_day() is None
        assert report.revenue_loss() == 0.0

    def test_intervention_after_horizon(self, market):
        sim = EconomySimulation(market, SeedSequenceTree(24))
        report = sim.run(40, DomainSeizure(day=90))
        assert report.dip_fraction() == 0.0
        assert report.recovery_day() is None
        assert report.revenue_loss() == 0.0

    def test_intervention_on_day_zero(self, market):
        sim = EconomySimulation(market, SeedSequenceTree(25))
        report = sim.run(40, DomainSeizure(day=0))
        # No pre-intervention baseline exists, so dip/loss are undefined -> 0.
        assert report.dip_fraction() == 0.0
        assert report.recovery_day() is None
        assert report.revenue_loss() == 0.0

    def test_degenerate_zero_trajectory(self):
        from repro.economics.simulate import EconomyReport

        report = EconomyReport(
            intervention_name="flat zero",
            days=np.arange(10),
            customers=np.zeros((10, 2)),
            revenue_per_day=np.zeros(10),
            names=["A", "B"],
            intervention_day=4,
        )
        # An all-zero market has no baseline to dip from; recovery is
        # immediate (the zero threshold is met at the trough itself).
        assert report.dip_fraction() == 0.0
        assert report.recovery_day() == 4
        assert report.revenue_loss() == 0.0


class TestInterventions:
    def test_domain_seizure_states(self, market):
        seizure = DomainSeizure(day=50)
        assert seizure.signup_multipliers(market, 10) == {}
        mults = seizure.signup_multipliers(market, 51)
        assert mults["B"] == 0.0
        assert mults["A"] == 0.0
        revived = seizure.signup_multipliers(market, 54)
        assert revived["A"] == pytest.approx(0.6)
        assert revived["B"] == 0.0

    def test_seizure_churn_only_while_down(self, market):
        seizure = DomainSeizure(day=50)
        churn = seizure.extra_churn(market, 51)
        assert churn["A"] > 0
        churn_after_revival = seizure.extra_churn(market, 60)
        assert "A" not in churn_after_revival
        assert churn_after_revival["B"] > 0

    def test_payment_intervention_windowed(self, market):
        pay = PaymentIntervention(day=20, duration_days=10)
        assert pay.signup_multipliers(market, 19) == {}
        active = pay.signup_multipliers(market, 25)
        assert set(active) == set(market.services)
        assert pay.signup_multipliers(market, 30) == {}

    def test_arrest_kills_and_deters(self, market):
        arrest = OperatorArrest(day=20, booter="B")
        mults = arrest.signup_multipliers(market, 21)
        assert mults["B"] == 0.0
        assert 0 < mults["A"] < 1.0
        # Deterrence fades; the death does not.
        late = arrest.signup_multipliers(market, 200)
        assert late == {"B": 0.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            DomainSeizure(day=0, revival_signup_fraction=2.0)
        with pytest.raises(ValueError):
            PaymentIntervention(day=0, duration_days=0)
        with pytest.raises(ValueError):
            OperatorArrest(day=0, booter="B", deterrence_fraction=2.0)


class TestEconomySimulation:
    def test_baseline_no_dip(self, sim):
        report = sim.run(60)
        assert report.dip_fraction() == 0.0
        assert report.recovery_day() is None
        assert (report.revenue_per_day > 0).all()

    def test_seizure_dips_then_recovers(self, sim):
        report = sim.run(200, DomainSeizure(day=50))
        dip = report.dip_fraction()
        assert 0.05 < dip < 0.9  # a real but survivable market shock
        # Customer inflow is unchanged, so the stock recovers with the
        # churn time constant (~50 days).
        recovery = report.recovery_day(threshold=0.9)
        assert recovery is not None and recovery > 50

    def test_payment_intervention_market_wide(self, sim):
        report = sim.run(150, PaymentIntervention(day=50, duration_days=40))
        assert report.dip_fraction() > 0.05
        # During the window, every booter shrinks (not just seized ones).
        idx_before, idx_in = 49, 80
        shrunk = (report.customers[idx_in] < report.customers[idx_before]).mean()
        assert shrunk > 0.9

    def test_revenue_loss_positive_under_interventions(self, sim):
        seizure = sim.run(150, DomainSeizure(day=50))
        assert seizure.revenue_loss() > 0

    def test_deterministic(self, market):
        a = EconomySimulation(market, SeedSequenceTree(11)).run(30, DomainSeizure(day=10))
        b = EconomySimulation(market, SeedSequenceTree(11)).run(30, DomainSeizure(day=10))
        np.testing.assert_allclose(a.revenue_per_day, b.revenue_per_day)

    def test_validation(self, market):
        with pytest.raises(ValueError):
            EconomySimulation(market, SeedSequenceTree(0), paying_fraction=0.0)
        with pytest.raises(ValueError):
            EconomySimulation(market, SeedSequenceTree(0)).run(0)
