"""``repro-obs`` CLI: drift classification exit codes, show, schema checks."""

import json

import pytest

from repro.obs import MetricsRegistry, export_metrics, load_export, registry_from_dict
from repro.obs.cli import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_LOGIC_DRIFT,
    EXIT_PERF_REGRESSION,
    load_run_snapshot,
    main,
)
from repro.obs.runledger import append_run_record, build_run_record


def _export(tmp_path, name, counters, wall_s=None):
    registry = MetricsRegistry()
    for key, value in counters.items():
        registry.inc(key, value)
    with registry.span("stage"):
        pass
    run_info = {"jobs": 1, "preset": "small"}
    if wall_s is not None:
        run_info["wall_s"] = wall_s
    return export_metrics({"fig2a": registry}, registry, tmp_path / name, run_info=run_info)


def _ledger(tmp_path, name, counters, wall_s, experiment_wall_s=None):
    record = build_run_record(
        config_hash="abc",
        seed=2018,
        preset="small",
        jobs=1,
        cache=False,
        experiments=["fig2a"],
        counters=counters,
        wall_s=wall_s,
        experiment_wall_s=experiment_wall_s,
    )
    return append_run_record(tmp_path / name, record)


BASE = {"scenario.days_generated": 4.0, "pipeline.days_processed": 4.0, "pool.tasks": 2.0}


class TestDiffExitCodes:
    def test_clean_between_identical_exports(self, tmp_path, capsys):
        a = _export(tmp_path, "a.json", BASE, wall_s=1.0)
        b = _export(tmp_path, "b.json", BASE, wall_s=1.1)
        assert main(["diff", str(a), str(b)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "identical" in out and "clean" in out

    def test_logic_drift_exits_2(self, tmp_path, capsys):
        a = _export(tmp_path, "a.json", BASE, wall_s=1.0)
        drifted = dict(BASE, **{"scenario.days_generated": 5.0})
        b = _export(tmp_path, "b.json", drifted, wall_s=1.0)
        assert main(["diff", str(a), str(b)]) == EXIT_LOGIC_DRIFT
        out = capsys.readouterr().out
        assert "LOGIC DRIFT" in out
        assert "scenario.days_generated: 4 -> 5" in out

    def test_strategy_counters_do_not_drift(self, tmp_path):
        a = _export(tmp_path, "a.json", BASE, wall_s=1.0)
        b = _export(tmp_path, "b.json", dict(BASE, **{"pool.tasks": 99.0}), wall_s=1.0)
        assert main(["diff", str(a), str(b)]) == EXIT_CLEAN

    def test_perf_regression_exits_3(self, tmp_path, capsys):
        a = _export(tmp_path, "a.json", BASE, wall_s=1.0)
        b = _export(tmp_path, "b.json", BASE, wall_s=2.0)
        assert main(["diff", str(a), str(b)]) == EXIT_PERF_REGRESSION
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_time_threshold_flag(self, tmp_path):
        a = _export(tmp_path, "a.json", BASE, wall_s=1.0)
        b = _export(tmp_path, "b.json", BASE, wall_s=2.0)
        assert main(["diff", str(a), str(b), "--time-threshold", "1.5"]) == EXIT_CLEAN

    def test_logic_only_skips_timing(self, tmp_path, capsys):
        a = _export(tmp_path, "a.json", BASE, wall_s=1.0)
        b = _export(tmp_path, "b.json", BASE, wall_s=50.0)
        assert main(["diff", str(a), str(b), "--logic-only"]) == EXIT_CLEAN
        assert "skipped" in capsys.readouterr().out

    def test_missing_timing_is_clean_not_regression(self, tmp_path, capsys):
        a = _export(tmp_path, "a.json", BASE)  # no wall_s recorded
        b = _export(tmp_path, "b.json", BASE, wall_s=9.0)
        assert main(["diff", str(a), str(b)]) == EXIT_CLEAN
        assert "skipped" in capsys.readouterr().out

    def test_logic_drift_beats_perf_drift(self, tmp_path):
        a = _export(tmp_path, "a.json", BASE, wall_s=1.0)
        drifted = dict(BASE, **{"streaming.days_ingested": 1.0})
        b = _export(tmp_path, "b.json", drifted, wall_s=9.0)
        assert main(["diff", str(a), str(b)]) == EXIT_LOGIC_DRIFT


class TestDiffLedgerInputs:
    def test_ledger_vs_ledger(self, tmp_path, capsys):
        a = _ledger(tmp_path, "a.jsonl", BASE, wall_s=1.0, experiment_wall_s={"fig2a": 1.0})
        b = _ledger(tmp_path, "b.jsonl", BASE, wall_s=1.1, experiment_wall_s={"fig2a": 1.1})
        assert main(["diff", str(a), str(b)]) == EXIT_CLEAN
        assert "fig2a" in capsys.readouterr().out  # per-experiment breakdown

    def test_mixed_export_and_ledger(self, tmp_path):
        a = _export(tmp_path, "a.json", BASE, wall_s=1.0)
        b = _ledger(tmp_path, "b.jsonl", BASE, wall_s=1.05)
        assert main(["diff", str(a), str(b)]) == EXIT_CLEAN

    def test_ledger_index_selects_record(self, tmp_path):
        ledger = _ledger(tmp_path, "l.jsonl", BASE, wall_s=1.0)
        _ledger(tmp_path, "l.jsonl", dict(BASE, **{"scenario.days_generated": 9.0}), wall_s=1.0)
        # Newest (default) drifts from the export; record 0 matches it.
        a = _export(tmp_path, "a.json", BASE, wall_s=1.0)
        assert main(["diff", str(a), str(ledger)]) == EXIT_LOGIC_DRIFT
        assert main(["diff", str(a), str(ledger), "--index-b", "0"]) == EXIT_CLEAN

    def test_out_of_range_index_errors(self, tmp_path, capsys):
        ledger = _ledger(tmp_path, "l.jsonl", BASE, wall_s=1.0)
        a = _export(tmp_path, "a.json", BASE, wall_s=1.0)
        assert main(["diff", str(a), str(ledger), "--index-b", "5"]) == EXIT_ERROR


class TestSchemaValidation:
    def test_missing_schema_named_in_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"run": {}, "experiments": {}, "total": {}}))
        with pytest.raises(ValueError) as excinfo:
            load_export(bad)
        message = str(excinfo.value)
        assert "bad.json" in message and "None" in message

    def test_unknown_schema_named_in_error(self, tmp_path):
        bad = tmp_path / "future.json"
        bad.write_text(json.dumps({"schema": "repro.obs.export/99"}))
        with pytest.raises(ValueError) as excinfo:
            load_export(bad)
        message = str(excinfo.value)
        assert "future.json" in message and "repro.obs.export/99" in message

    def test_missing_sections_rejected(self, tmp_path):
        bad = tmp_path / "partial.json"
        bad.write_text(json.dumps({"schema": "repro.obs.export/1", "run": {}}))
        with pytest.raises(ValueError, match="missing sections"):
            load_export(bad)

    def test_invalid_json_rejected(self, tmp_path):
        bad = tmp_path / "garbage.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_export(bad)

    def test_cli_reports_schema_error_as_exit_1(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/1"}))
        good = _export(tmp_path, "good.json", BASE, wall_s=1.0)
        assert main(["diff", str(good), str(bad)]) == EXIT_ERROR
        assert main(["show", str(bad)]) == EXIT_ERROR

    def test_snapshot_rejects_unrecognized_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError, match="other/1"):
            load_run_snapshot(bad)


class TestShow:
    def test_show_rerenders_profile_offline(self, tmp_path, capsys):
        export = _export(tmp_path, "m.json", BASE, wall_s=1.0)
        assert main(["show", str(export)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "fig2a profile" in out
        assert "run profile (all experiments)" in out
        assert "stage" in out
        assert "jobs=1" in out  # run parameters echoed

    def test_registry_from_dict_roundtrip(self):
        registry = MetricsRegistry()
        registry.inc("scenario.days_generated", 3)
        registry.gauge("pool.workers", 2)
        registry.observe("h", 0.25)
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        clone = registry_from_dict(registry.to_dict())
        assert clone.to_dict() == registry.to_dict()

    def test_registry_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            registry_from_dict({"schema": "nope/1"})


class TestRunnerRoundtrip:
    def test_runner_export_diffs_clean_against_itself(self, tmp_path):
        """End to end: two real runner exports of the same experiment with
        different jobs diff clean on logic."""
        from repro.experiments.runner import main as runner_main

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert runner_main(["fig2a", "--no-cache", "--metrics-out", str(a)]) == 0
        assert runner_main(
            ["fig2a", "--no-cache", "--jobs", "2", "--metrics-out", str(b)]
        ) == 0
        assert main(["diff", str(a), str(b), "--logic-only"]) == EXIT_CLEAN

    def test_runner_export_shows_offline(self, tmp_path, capsys):
        from repro.experiments.runner import main as runner_main

        export = tmp_path / "m.json"
        assert runner_main(["fig2a", "--no-cache", "--metrics-out", str(export)]) == 0
        capsys.readouterr()  # drop the runner's own output
        assert main(["show", str(export)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "experiment.fig2a" in out
