"""Columnar customer ledger: chunk invariance, parity, per-customer outputs."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.booter.market import MarketConfig
from repro.core.workerpool import shutdown_pool
from repro.economics.customers import (
    CustomerDynamics,
    CustomerPopulationModel,
    normalize_popularity,
)
from repro.economics.interventions import DomainSeizure, NoIntervention
from repro.economics.ledger import (
    ACTIVE,
    BYTES_PER_CUSTOMER,
    CHURNED,
    DISPLACED,
    MIGRANT,
    CustomerLedger,
    _apportion,
)
from repro.economics.replicas import ReplicaStudy, run_intervention_replicas
from repro.economics.simulate import (
    ECONOMY_MODELS,
    EconomySimulation,
    LedgerEconomyReport,
)
from repro.netmodel.topology import TopologyConfig
from repro.scenario import Scenario, ScenarioConfig
from repro.stats.rng import SeedSequenceTree

NAMES = ["A", "B", "C", "D"]
POP = np.array([5.0, 3.0, 1.5, 0.5])


def _ledger(n=20_000, seed=7, **kw):
    return CustomerLedger(
        NAMES, POP, CustomerDynamics(), SeedSequenceTree(seed), n, **kw
    )


class _StubService:
    def __init__(self, popularity):
        self.popularity = popularity


class _StubMarket:
    """Just enough of BooterMarket for the customer models."""

    def __init__(self, names, pops):
        self.services = {n: _StubService(p) for n, p in zip(names, pops)}

    def service_names(self):
        return sorted(self.services)


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        ScenarioConfig(
            scale=0.05,
            topology=TopologyConfig(n_tier1=3, n_tier2=8, n_stub=40),
            market=MarketConfig(daily_attacks=40.0, n_victims=200),
            pool_sizes=(("ntp", 400), ("dns", 200)),
        )
    )


class TestApportion:
    def test_exact_and_deterministic(self):
        weights = normalize_popularity(POP)
        out = _apportion(weights, 12_345)
        assert out.sum() == 12_345
        assert (out >= 0).all()
        np.testing.assert_array_equal(out, _apportion(weights, 12_345))

    def test_follows_weights(self):
        out = _apportion(normalize_popularity(POP), 10_000)
        assert list(out) == sorted(out, reverse=True)  # POP is descending

    @given(st.integers(0, 10_000), st.integers(1, 12))
    def test_sums_for_any_total(self, total, k):
        weights = np.full(k, 1.0 / k)
        assert _apportion(weights, total).sum() == total


class TestConstruction:
    def test_initial_cohort(self):
        led = _ledger(n=10_000)
        assert led.n_customers == 10_000
        assert led.active_customers() == 10_000
        np.testing.assert_array_equal(
            led.counts, _apportion(normalize_popularity(POP), 10_000)
        )
        assert led.by_name()["A"] == max(led.by_name().values())

    def test_from_market(self, scenario):
        led = CustomerLedger.from_market(
            scenario.market, CustomerDynamics(), SeedSequenceTree(3), 5_000
        )
        assert led.names == scenario.market.service_names()
        assert led.active_customers() == 5_000
        np.testing.assert_allclose(
            led.popularity, scenario.market.popularity_vector(), atol=1e-12
        )

    def test_packed_bytes(self):
        led = _ledger(n=50_000)
        # Capacity arrays only: 9 packed bytes per row plus small accumulators.
        assert led.nbytes() < 2 * BYTES_PER_CUSTOMER * 50_000

    def test_validation(self):
        with pytest.raises(ValueError, match="popularity"):
            CustomerLedger(NAMES, np.zeros(4), CustomerDynamics(), SeedSequenceTree(1), 10)
        with pytest.raises(ValueError, match="length"):
            CustomerLedger(NAMES, np.ones(3), CustomerDynamics(), SeedSequenceTree(1), 10)
        with pytest.raises(ValueError, match="negative"):
            _ledger(n=-1)
        with pytest.raises(ValueError, match="chunk_bytes"):
            _ledger(chunk_bytes=0)
        with pytest.raises(ValueError, match="daily_price"):
            _ledger(daily_price=np.ones(2))


class TestStepValidation:
    def test_bad_inputs(self):
        led = _ledger(n=100)
        with pytest.raises(ValueError, match="migration_fraction"):
            led.step(0, migration_fraction=1.5)
        with pytest.raises(ValueError, match="day"):
            led.step(-1)
        with pytest.raises(ValueError, match="day"):
            led.step(40_000)  # beyond the int16 signup-day horizon
        with pytest.raises(ValueError, match="multipliers"):
            led.step(0, signup_mult={"A": -1.0})
        with pytest.raises(ValueError, match="multipliers"):
            led.step(0, extra_churn={"A": 2.0})
        with pytest.raises(ValueError, match="per-booter"):
            led.step(0, extra_churn=np.ones(7))

    def test_dict_and_array_forms_agree(self):
        a, b = _ledger(seed=21), _ledger(seed=21)
        for day in range(6):
            a.step(day, signup_mult={"A": 0.0}, extra_churn={"A": 0.4})
            b.step(
                day,
                signup_mult=np.array([0.0, 1.0, 1.0, 1.0]),
                extra_churn=np.array([0.4, 0.0, 0.0, 0.0]),
            )
        assert a.digest() == b.digest()


class TestChunkInvariance:
    """chunk_bytes is a pure execution knob: digests never move."""

    def _run(self, chunk_rows=None, days=12):
        led = _ledger(seed=99)
        if chunk_rows is not None:
            led.chunk_rows = chunk_rows
        for day in range(days):
            if day >= 4:
                led.step(day, signup_mult={"A": 0.0}, extra_churn={"A": 0.5})
            else:
                led.step(day)
        return led.digest()

    def test_digest_identical_across_chunk_sizes(self):
        reference = self._run()
        for rows in (256, 1_000, 7_777, 1 << 20):
            assert self._run(chunk_rows=rows) == reference

    @settings(max_examples=12, deadline=None)
    @given(st.integers(64, 30_000))
    def test_any_chunking_matches_bulk(self, rows):
        assert self._run(chunk_rows=rows, days=6) == self._run(days=6)

    def test_same_seed_same_digest(self):
        def stepped(seed):
            led = _ledger(seed=seed)
            for day in range(3):
                led.step(day)
            return led.digest()

        assert stepped(5) == stepped(5)
        assert stepped(5) != stepped(6)


class TestAggregateParity:
    """The ledger matches the aggregate model in expectation."""

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        churn=st.floats(0.0, 0.15),
        extra=st.floats(0.0, 0.5),
        mult=st.floats(0.0, 2.0),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_one_step_counts(self, churn, extra, mult, seed):
        n = 200_000
        dynamics = CustomerDynamics(
            market_signups_per_day=900.0,
            churn_per_day=churn,
            initial_customers_per_popularity=float(n),
            signup_noise_sigma=0.0,  # level == 1: aggregate step IS the mean
        )
        stub = _StubMarket(NAMES, normalize_popularity(POP))
        agg = CustomerPopulationModel(stub, dynamics, SeedSequenceTree(seed))
        led = CustomerLedger(
            stub.service_names(),
            normalize_popularity(POP),
            dynamics,
            SeedSequenceTree(seed),
            n,
        )
        kwargs = dict(signup_mult={"A": mult}, extra_churn={"A": extra})
        expected = agg.step(0, **kwargs)
        got = led.step(0, **kwargs)
        # Binomial churn + Poisson births + binomial migration around the
        # aggregate flow: a 6-sigma band on ~200k customers.
        sigma = np.sqrt(expected + 1.0)
        np.testing.assert_array_less(np.abs(got - expected), 6.0 * sigma + 60.0)

    def test_trajectory_parity_through_a_seizure(self, scenario):
        # n_customers at the dynamics' flow equilibrium (signups / churn),
        # the same stationary point the aggregate model starts from.
        dynamics = CustomerDynamics(signup_noise_sigma=0.0)
        equilibrium = int(
            dynamics.market_signups_per_day / dynamics.churn_per_day
        )
        sim = EconomySimulation(
            scenario.market,
            SeedSequenceTree(17),
            dynamics,
            n_customers=equilibrium,
        )
        seizure = DomainSeizure(day=25)
        agg = sim.run(70, seizure, model="aggregate")
        led = sim.run(70, seizure, model="ledger")
        np.testing.assert_allclose(
            led.total_customers(), agg.total_customers(), rtol=0.06
        )
        assert abs(led.dip_fraction() - agg.dip_fraction()) < 0.08


class TestPerCustomerOutputs:
    def test_flags_and_recidivism(self):
        led = _ledger(seed=31, n=40_000)
        led.step(0)
        before_a = led.counts[0]
        led.step(1, signup_mult={"A": 0.0}, extra_churn={"A": 1.0})
        state = led._state[: led.n_customers]
        displaced = state & DISPLACED != 0
        migrants = state & MIGRANT != 0
        assert displaced.sum() >= before_a  # every A customer forced out
        assert migrants.sum() > 0
        assert (state[migrants] & ACTIVE != 0).all()
        assert led.repeat_customer_fraction() == pytest.approx(0.8, abs=0.02)
        assert led.counts[0] < 0.01 * before_a  # A emptied, no inflow

    def test_migration_matrix_rows_and_destinations(self):
        led = _ledger(seed=32, n=30_000)
        led.step(0, signup_mult={"A": 0.0}, extra_churn={"A": 1.0})
        matrix = led.migration_matrix
        assert matrix[0].sum() > 0  # flow out of A...
        assert matrix[0, 0] == 0  # ...never back into the seized A
        assert matrix[1:].sum() == 0  # nobody else was displaced
        # Destinations follow the surviving signup weights.
        dest = matrix[0, 1:].astype(float)
        np.testing.assert_allclose(
            dest / dest.sum(), POP[1:] / POP[1:].sum(), atol=0.03
        )

    def test_tenure_histogram(self):
        dynamics = CustomerDynamics(market_signups_per_day=0.0, churn_per_day=0.0)
        led = CustomerLedger(NAMES, POP, dynamics, SeedSequenceTree(8), 10_000)
        for day in range(3):
            led.step(day)
        assert led.tenure_at_churn().size == 0  # nobody churned yet
        before_a = led.counts[0]
        led.step(3, extra_churn={"A": 1.0}, migration_fraction=0.0)
        tenure = led.tenure_at_churn()
        assert tenure.sum() == before_a
        assert tenure.size == 4 and tenure[3] == before_a  # all signed up day 0

    def test_spend_accrual(self):
        price = np.array([2.0, 1.0, 0.5, 0.25])
        dynamics = CustomerDynamics(market_signups_per_day=0.0, churn_per_day=0.0)
        led = CustomerLedger(
            NAMES, POP, dynamics, SeedSequenceTree(9), 8_000, daily_price=price
        )
        for day in range(5):
            led.step(day)
        assert led.spend_total() == pytest.approx(5 * float(led.counts @ price), rel=1e-5)

    def test_growth_keeps_counts_consistent(self):
        led = _ledger(n=1_000, seed=41)
        for day in range(50):
            led.step(day)
        assert led.n_customers > 1_000  # births materialized new rows
        # The incremental counts equal a recount from the state column.
        state = led._state[: led.n_customers]
        active = state & ACTIVE != 0
        np.testing.assert_array_equal(
            led.counts,
            np.bincount(led._booter[: led.n_customers][active], minlength=len(NAMES)),
        )
        assert (state[~active] & CHURNED != 0).all()  # inactive => churned

    def test_all_booters_seized_no_crash(self):
        led = _ledger(n=5_000, seed=42)
        counts = led.step(
            0,
            signup_mult={n: 0.0 for n in NAMES},
            extra_churn={n: 1.0 for n in NAMES},
        )
        # Nowhere to re-sign: the displaced leave the market entirely.
        assert counts.sum() == 0
        assert np.isfinite(counts).all()
        assert led.repeat_customer_fraction() == 0.0


class TestSimulationLedgerModel:
    def test_run_returns_ledger_report(self, scenario):
        sim = EconomySimulation(
            scenario.market, SeedSequenceTree(12), model="ledger", n_customers=30_000
        )
        report = sim.run(60, DomainSeizure(day=20))
        assert isinstance(report, LedgerEconomyReport)
        assert report.displaced > 0
        assert report.n_customer_rows >= 30_000
        assert 0.0 < report.repeat_fraction < 1.0
        assert report.migration_matrix.sum() > 0
        assert len(report.ledger_digest) == 64
        assert 0.05 < report.dip_fraction() < 0.9

    def test_model_override_and_validation(self, scenario):
        sim = EconomySimulation(scenario.market, SeedSequenceTree(13), n_customers=5_000)
        assert sim.model == "aggregate"
        report = sim.run(5, model="ledger")
        assert isinstance(report, LedgerEconomyReport)
        with pytest.raises(ValueError, match="model"):
            sim.run(5, model="per-customer")
        with pytest.raises(ValueError, match="model"):
            EconomySimulation(scenario.market, SeedSequenceTree(13), model="bogus")
        assert set(ECONOMY_MODELS) == {"aggregate", "ledger"}


class TestReplicaStudy:
    INTERVENTIONS = [NoIntervention(), DomainSeizure(day=10)]

    def _study(self, scenario, **kw) -> ReplicaStudy:
        return run_intervention_replicas(
            scenario,
            self.INTERVENTIONS,
            n_replicas=2,
            n_days=25,
            # The default dynamics' flow equilibrium: stationary baseline,
            # so the seizure dip is visible against a flat market.
            n_customers=20_000,
            **kw,
        )

    def test_executor_parity(self, scenario):
        """Same digests from inline, thread, and process executors."""
        digests = {}
        try:
            for mode in ("inline", "thread", "process"):
                shutdown_pool()
                study = self._study(scenario, jobs=2, executor=mode)
                digests[mode] = {
                    s: study.digests(s) for s in study.strategies()
                }
        finally:
            shutdown_pool()
        assert digests["inline"] == digests["thread"] == digests["process"]
        assert all(d for d in digests["inline"].values())

    def test_replicas_are_independent(self, scenario):
        study = self._study(scenario)
        for strategy in study.strategies():
            assert len(set(study.digests(strategy))) == 2

    def test_summary_shape(self, scenario):
        study = self._study(scenario)
        summary = study.summary()
        assert set(summary) == {"none", "domain seizure"}
        assert summary["none"]["dip_fraction"] == 0.0
        assert summary["domain seizure"]["dip_fraction"] > 0.05
        assert summary["domain seizure"]["repeat_fraction"] > 0.5
        for stats in summary.values():
            assert {
                "dip_fraction",
                "revenue_loss",
                "repeat_fraction",
                "final_customers",
                "recovered_share",
                "mean_recovery_day",
            } <= set(stats)

    def test_validation(self, scenario):
        with pytest.raises(ValueError, match="n_replicas"):
            run_intervention_replicas(scenario, self.INTERVENTIONS, 0, 10)
        with pytest.raises(ValueError, match="intervention"):
            run_intervention_replicas(scenario, [], 1, 10)
