"""Cross-cutting property-based tests (hypothesis) on core invariants.

These complement the per-module unit tests with randomized checks of the
properties the analysis pipeline *relies on*: valley-free routing on
arbitrary generated topologies, unbiasedness of packet sampling,
conservation under time binning, churn-process invariants, and the
monotonicity of the Welch test.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.booter.reflectors import ReflectorChurnConfig, ReflectorPool, ReflectorSetProcess
from repro.flows.records import FlowTable
from repro.flows.sampling import PacketSampler
from repro.flows.timeseries import bin_timeseries, per_destination_stats
from repro.netmodel.topology import TopologyConfig, build_topology
from repro.stats.rng import SeedSequenceTree
from repro.stats.welch import welch_one_tailed

slow_settings = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _flow_table(rng, n):
    return FlowTable(
        {
            "time": rng.uniform(0, 3600, n),
            "src_ip": rng.integers(0, 1000, n, dtype=np.uint32),
            "dst_ip": rng.integers(0, 100, n, dtype=np.uint32),
            "proto": np.full(n, 17, dtype=np.uint8),
            "src_port": np.full(n, 123, dtype=np.uint16),
            "dst_port": np.full(n, 50000, dtype=np.uint16),
            "packets": rng.integers(1, 100_000, n),
            "bytes": rng.integers(100, 10_000_000, n),
        }
    )


class TestTopologyProperties:
    @slow_settings
    @given(
        st.integers(0, 10_000),
        st.integers(2, 5),
        st.integers(2, 12),
        st.integers(5, 40),
    )
    def test_generated_topologies_fully_connected_and_valley_free(
        self, seed, n_tier1, n_tier2, n_stub
    ):
        config = TopologyConfig(n_tier1=n_tier1, n_tier2=n_tier2, n_stub=n_stub)
        registry, topo = build_topology(config, SeedSequenceTree(seed))
        rng = np.random.default_rng(seed)
        asns = registry.asns
        for _ in range(20):
            src, dst = rng.choice(asns, 2, replace=False)
            path = topo.path(int(src), int(dst))
            assert path is not None, f"{src} cannot reach {dst}"
            assert path[0] == src and path[-1] == dst
            # Valley-free: once the path descends (peer or customer edge),
            # it never climbs again.
            descended = False
            for a, b in zip(path, path[1:]):
                if b in topo.providers(a):
                    assert not descended, f"valley in {path}"
                elif b in topo.peers(a):
                    assert not descended, f"double-peer/valley in {path}"
                    descended = True
                else:
                    assert b in topo.customers(a)
                    descended = True

    @slow_settings
    @given(st.integers(0, 10_000))
    def test_customer_cones_are_monotone(self, seed):
        registry, topo = build_topology(
            TopologyConfig(n_tier1=3, n_tier2=6, n_stub=20), SeedSequenceTree(seed)
        )
        for asn in registry.asns:
            cone = topo.customer_cone(asn)
            assert asn in cone
            for cust in topo.customers(asn):
                assert topo.customer_cone(cust) <= cone


class TestSamplingProperties:
    @slow_settings
    @given(st.integers(0, 1000), st.sampled_from([10, 100, 1000]))
    def test_thinning_unbiased_in_aggregate(self, seed, denominator):
        rng = np.random.default_rng(seed)
        table = _flow_table(rng, 400)
        sampler = PacketSampler(denominator)
        sampled = sampler.apply(table, np.random.default_rng(seed + 1))
        estimate = sampler.renormalize(sampled).total_packets
        truth = table.total_packets
        # Relative error shrinks as 1/sqrt(total/denominator); allow 5 sigma.
        sigma = np.sqrt(truth * denominator) / truth
        assert abs(estimate - truth) / truth < max(5 * sigma, 0.01)

    @slow_settings
    @given(st.integers(0, 1000))
    def test_sampling_never_inflates_flows(self, seed):
        rng = np.random.default_rng(seed)
        table = _flow_table(rng, 100)
        sampled = PacketSampler(50).apply(table, rng)
        assert len(sampled) <= len(table)
        assert sampled.total_packets <= table.total_packets


class TestTimeseriesProperties:
    @slow_settings
    @given(st.integers(0, 1000), st.sampled_from([1.0, 60.0, 600.0]))
    def test_binning_conserves_packets(self, seed, bin_seconds):
        rng = np.random.default_rng(seed)
        table = _flow_table(rng, 200)
        series = bin_timeseries(table, 0.0, 3600.0, bin_seconds)
        assert series.sum() == pytest.approx(table.total_packets)

    @slow_settings
    @given(st.integers(0, 1000))
    def test_per_destination_partition(self, seed):
        rng = np.random.default_rng(seed)
        table = _flow_table(rng, 300)
        stats = per_destination_stats(table)
        assert stats.total_packets.sum() == table.total_packets
        assert stats.total_bytes.sum() == table.total_bytes
        assert np.unique(stats.destinations).size == len(stats)
        assert (stats.unique_sources >= stats.max_sources_per_bin).all()


class TestReflectorProcessProperties:
    @pytest.fixture(scope="class")
    def pool(self):
        registry, _ = build_topology(
            TopologyConfig(n_tier1=3, n_tier2=6, n_stub=30), SeedSequenceTree(0)
        )
        return ReflectorPool.generate("ntp", 1000, registry, SeedSequenceTree(1))

    @slow_settings
    @given(
        st.integers(0, 1000),
        st.integers(10, 200),
        st.floats(0.0, 0.3),
        st.floats(0.0, 0.2),
    )
    def test_process_invariants(self, pool, seed, set_size, churn, replacement):
        process = ReflectorSetProcess(
            pool,
            ReflectorChurnConfig(
                set_size=set_size, daily_churn=churn, replacement_prob=replacement
            ),
            SeedSequenceTree(seed),
            draw_pool_fraction=0.5,
        )
        previous = None
        for day in range(8):
            current = process.set_for_day(day)
            assert current.size == set_size
            assert np.unique(current).size == set_size
            assert current.min() >= 0 and current.max() < len(pool)
            if previous is not None and churn == 0.0 and replacement == 0.0:
                np.testing.assert_array_equal(current, previous)
            previous = current


class TestAnonymizationProperties:
    @slow_settings
    @given(st.integers(0, 1000), st.text(min_size=1, max_size=8))
    def test_aggregation_invariant_under_anonymization(self, seed, key):
        """Anonymization is a bijection, so every count-based aggregate —
        unique sources, per-destination partition sizes, packet sums —
        must be identical on the anonymized trace. This is the property
        that makes the paper's analysis possible on anonymized data."""
        from repro.netmodel.addressing import PrefixAnonymizer

        rng = np.random.default_rng(seed)
        table = _flow_table(rng, 150)
        anonymizer = PrefixAnonymizer(key)
        anonymized = table.with_columns(
            src_ip=anonymizer.anonymize_array(table["src_ip"]),
            dst_ip=anonymizer.anonymize_array(table["dst_ip"]),
        )
        assert anonymized.unique_sources() == table.unique_sources()
        assert anonymized.unique_destinations() == table.unique_destinations()
        original = per_destination_stats(table)
        masked = per_destination_stats(anonymized)
        assert len(masked) == len(original)
        np.testing.assert_array_equal(
            np.sort(masked.unique_sources), np.sort(original.unique_sources)
        )
        np.testing.assert_array_equal(
            np.sort(masked.total_packets), np.sort(original.total_packets)
        )


class TestWelchProperties:
    @slow_settings
    @given(st.integers(0, 1000), st.floats(0.0, 3.0))
    def test_p_value_decreases_with_gap(self, seed, gap):
        rng = np.random.default_rng(seed)
        before = rng.normal(10.0, 1.0, 30)
        after_small = before * 1.0 - gap * 0.1
        after_big = before - gap
        p_small = welch_one_tailed(before, after_small).p_value
        p_big = welch_one_tailed(before, after_big).p_value
        assert p_big <= p_small + 1e-12

    @slow_settings
    @given(st.integers(0, 1000), st.floats(0.1, 100.0))
    def test_scale_invariance(self, seed, factor):
        rng = np.random.default_rng(seed)
        before = rng.normal(50, 5, 25)
        after = rng.normal(40, 5, 25)
        base = welch_one_tailed(before, after)
        scaled = welch_one_tailed(before * factor, after * factor)
        assert scaled.p_value == pytest.approx(base.p_value, rel=1e-9)
        assert scaled.reduction_ratio == pytest.approx(base.reduction_ratio, rel=1e-9)
