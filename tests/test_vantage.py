"""Tests for vantage points: visibility, observation pipeline, observatory."""

import numpy as np
import pytest

from repro.booter.catalog import BOOTER_CATALOG
from repro.booter.reflectors import ReflectorChurnConfig, ReflectorPool, ReflectorSetProcess
from repro.booter.service import BooterService, ServicePlan
from repro.flows.records import FlowTable
from repro.netmodel.addressing import Prefix, PrefixAnonymizer
from repro.netmodel.asn import ASRegistry, ASRole, AutonomousSystem
from repro.netmodel.topology import ASTopology, TopologyConfig, build_topology
from repro.stats.rng import SeedSequenceTree
from repro.vantage.base import CaptureWindow
from repro.vantage.isp import ISPVantagePoint
from repro.vantage.ixp import IXPVantagePoint
from repro.vantage.observatory import IXPObservatory
from repro.vantage.visibility import FlowVisibility


@pytest.fixture
def small_topo():
    """T1 (AS1) -- T1 (AS2) peering clique; M1 (AS11), M2 (AS12) tier-2 IXP
    members under them; C1 (AS21) customer of M1; N (AS31) non-member stub
    under AS2."""
    reg = ASRegistry()
    reg.register(AutonomousSystem(1, ASRole.TIER1))
    reg.register(AutonomousSystem(2, ASRole.TIER1))
    reg.register(AutonomousSystem(11, ASRole.TIER2, ixp_member=True))
    reg.register(AutonomousSystem(12, ASRole.TIER2, ixp_member=True))
    reg.register(AutonomousSystem(21, ASRole.STUB))
    reg.register(AutonomousSystem(31, ASRole.STUB))
    topo = ASTopology(reg)
    topo.add_peering(1, 2)
    topo.add_customer_provider(11, 1)
    topo.add_customer_provider(12, 2)
    topo.add_customer_provider(21, 11)
    topo.add_customer_provider(31, 2)
    topo.add_peering(11, 12, via_ixp=True)
    return reg, topo


def flows_for_pairs(pairs, packets=100):
    n = len(pairs)
    return FlowTable(
        {
            "time": np.zeros(n),
            "src_ip": np.arange(n, dtype=np.uint32),
            "dst_ip": np.arange(100, 100 + n, dtype=np.uint32),
            "proto": np.full(n, 17, dtype=np.uint8),
            "src_port": np.full(n, 123, dtype=np.uint16),
            "dst_port": np.full(n, 50000, dtype=np.uint16),
            "packets": np.full(n, packets, dtype=np.int64),
            "bytes": np.full(n, packets * 486, dtype=np.int64),
            "src_asn": np.array([p[0] for p in pairs], dtype=np.int64),
            "dst_asn": np.array([p[1] for p in pairs], dtype=np.int64),
        }
    )


class TestFlowVisibility:
    def test_ixp_sees_cross_member_traffic(self, small_topo):
        _, topo = small_topo
        vis = FlowVisibility(topo)
        v = vis.at_ixp(21, 12)  # 21 -> 11 -> (IXP) -> 12
        assert v.visible
        assert v.peer_asn == 11

    def test_ixp_blind_to_transit_paths(self, small_topo):
        _, topo = small_topo
        vis = FlowVisibility(topo)
        assert not vis.at_ixp(21, 31).visible  # goes 21-11-1-2-31, no IXP edge
        assert not vis.at_ixp(1, 2).visible  # private tier-1 peering

    def test_ixp_same_as_invisible(self, small_topo):
        _, topo = small_topo
        assert not FlowVisibility(topo).at_ixp(11, 11).visible

    def test_isp_on_path_visible(self, small_topo):
        # 31 -> 21 routes 31-2-1-11-21, crossing AS1; 31 is outside AS1's
        # customer cone, so the tier-1 ingress-only trace contains it.
        _, topo = small_topo
        vis = FlowVisibility(topo)
        v = vis.at_isp(1, 31, 21, ingress_only=True)
        assert v.visible
        assert v.peer_asn == 2

    def test_isp_customer_cone_src_excluded_even_in_transit(self, small_topo):
        # 21 -> 31 crosses AS1 too, but 21 sits in AS1's customer cone, so
        # the ingress-only trace (no customer-sourced traffic) drops it.
        _, topo = small_topo
        vis = FlowVisibility(topo)
        assert not vis.at_isp(1, 21, 31, ingress_only=True).visible
        assert vis.at_isp(1, 21, 31, ingress_only=False).visible

    def test_isp_off_path_invisible(self, small_topo):
        _, topo = small_topo
        vis = FlowVisibility(topo)
        assert not vis.at_isp(2, 21, 12, ingress_only=True).visible

    def test_ingress_only_excludes_customer_sourced(self, small_topo):
        _, topo = small_topo
        vis = FlowVisibility(topo)
        # 11 is in AS1's customer cone: tier-1 ingress-only excludes it...
        assert not vis.at_isp(1, 11, 31, ingress_only=True).visible
        # ...but the tier-2 style (both directions) includes it.
        assert vis.at_isp(1, 11, 31, ingress_only=False).visible

    def test_unknown_asn_invisible(self, small_topo):
        _, topo = small_topo
        vis = FlowVisibility(topo)
        assert not vis.at_ixp(-1, 12).visible
        assert not vis.at_isp(1, -1, 31, ingress_only=False).visible

    def test_vectorized_matches_scalar(self, small_topo):
        _, topo = small_topo
        vis = FlowVisibility(topo)
        srcs = np.array([21, 21, 1, -1])
        dsts = np.array([12, 31, 2, 12])
        mask, peers = vis.ixp_mask(srcs, dsts)
        expected = [vis.at_ixp(s, d) for s, d in zip(srcs, dsts)]
        np.testing.assert_array_equal(mask, [e.visible for e in expected])
        np.testing.assert_array_equal(peers, [e.peer_asn for e in expected])

    def test_mask_shape_mismatch(self, small_topo):
        _, topo = small_topo
        with pytest.raises(ValueError):
            FlowVisibility(topo).ixp_mask(np.array([1]), np.array([1, 2]))


class TestCaptureWindow:
    def test_contains(self):
        w = CaptureWindow(10, 20)
        assert w.contains_day(10) and w.contains_day(19)
        assert not w.contains_day(9) and not w.contains_day(20)
        assert w.n_days == 10

    def test_clip_table(self):
        t = flows_for_pairs([(21, 12)] * 3)
        t = t.with_columns(time=np.array([0.0, 86_400.0 * 5, 86_400.0 * 15]))
        clipped = CaptureWindow(0, 10).clip_table(t)
        assert len(clipped) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CaptureWindow(5, 5)


class TestVantagePoints:
    def test_ixp_observe_pipeline(self, small_topo):
        _, topo = small_topo
        vp = IXPVantagePoint(
            FlowVisibility(topo),
            CaptureWindow(0, 10),
            sampling_denominator=1,
            anonymizer=PrefixAnonymizer("k"),
        )
        t = flows_for_pairs([(21, 12), (21, 31), (11, 12)])
        out = vp.observe(t, np.random.default_rng(0))
        assert len(out) == 2  # (21,12) via peer 11 and (11,12) direct
        assert set(out["peer_asn"].tolist()) == {11}
        # Anonymized addresses differ from originals.
        assert not np.array_equal(out["src_ip"], t.filter(np.array([True, False, True]))["src_ip"])

    def test_ixp_sampling_loses_small_flows(self, small_topo):
        _, topo = small_topo
        vp = IXPVantagePoint(FlowVisibility(topo), CaptureWindow(0, 10), sampling_denominator=10_000)
        t = flows_for_pairs([(21, 12)] * 20, packets=2)
        out = vp.observe(t, np.random.default_rng(0))
        assert len(out) < 3

    def test_tier1_excludes_customer_sourced(self, small_topo):
        _, topo = small_topo
        vp = ISPVantagePoint(
            1, FlowVisibility(topo), CaptureWindow(0, 10), ingress_only=True, sampling_denominator=1
        )
        t = flows_for_pairs([(11, 31), (31, 12)])
        out = vp.observe(t, np.random.default_rng(0))
        # (11,31): sourced in AS1's cone -> excluded. (31,12): 31-2-1-11?
        # path 31->12 = 31-2-12 doesn't cross AS1. So depends on topology;
        # assert only that customer-sourced flow is gone.
        assert 11 not in out["src_asn"]

    def test_tier2_sees_both_directions(self, small_topo):
        _, topo = small_topo
        vp = ISPVantagePoint(
            11, FlowVisibility(topo), CaptureWindow(0, 10), ingress_only=False, sampling_denominator=1
        )
        t = flows_for_pairs([(21, 12), (12, 21), (11, 12)])
        out = vp.observe(t, np.random.default_rng(0))
        assert len(out) == 3

    def test_isp_validation(self, small_topo):
        _, topo = small_topo
        with pytest.raises(ValueError):
            ISPVantagePoint(0, FlowVisibility(topo), CaptureWindow(0, 1), ingress_only=True)


@pytest.fixture(scope="module")
def observatory_env():
    reg, topo = build_topology(TopologyConfig(n_tier1=3, n_tier2=10, n_stub=60), SeedSequenceTree(1))
    # Attach the measurement AS: transit from a tier-1, member of the IXP.
    meas_prefix = Prefix.parse("198.51.100.0/24")
    tier1 = reg.by_role(ASRole.TIER1)[0].asn
    meas_asn = 9999
    reg.register(
        AutonomousSystem(meas_asn, ASRole.MEASUREMENT, (meas_prefix,), ixp_member=True)
    )
    topo._ensure(meas_asn)
    topo.add_customer_provider(meas_asn, tier1)
    for member in reg.ixp_members():
        if member.asn != meas_asn:
            topo.add_peering(meas_asn, member.asn, via_ixp=True)
    obs = IXPObservatory(reg, topo, meas_asn, meas_prefix, transit_provider=tier1)
    pool = ReflectorPool.generate("ntp", 2000, reg, SeedSequenceTree(2))
    seeds = SeedSequenceTree(3)
    service = BooterService(
        catalog=BOOTER_CATALOG["B"],
        plans={
            "non-vip": ServicePlan("non-vip", 19.83, total_packet_rate_pps=370_000.0),
            "vip": ServicePlan("vip", 178.84, total_packet_rate_pps=5.3e6),
        },
        reflector_sets={
            "ntp": ReflectorSetProcess(pool, ReflectorChurnConfig(set_size=300), seeds.child("r"))
        },
        popularity=0.2,
        backend_asn=reg.by_role(ASRole.STUB)[0].asn,
        backend_ip=1,
    )
    return obs, service


class TestObservatory:
    def launch(self, obs, service, plan="non-vip", duration=60.0):
        victim = obs.fresh_victim_ip()
        return service.launch_attack(
            victim_ip=victim,
            victim_asn=obs.asn,
            vector_name="ntp",
            start_time=0.0,
            duration_s=duration,
            plan_name=plan,
            day=0,
            seeds=SeedSequenceTree(11),
        )

    def test_fresh_victims_distinct(self, observatory_env):
        obs, _ = observatory_env
        a, b = obs.fresh_victim_ip(), obs.fresh_victim_ip()
        assert a != b
        assert obs.prefix.contains(a) and obs.prefix.contains(b)

    def test_non_vip_measurement(self, observatory_env):
        obs, service = observatory_env
        event = self.launch(obs, service)
        m = obs.capture_attack(event, np.random.default_rng(0))
        # ~370k pps x 487 B x 8 = ~1.44 Gbps, below the 10GE interface.
        assert m.mean_bps == pytest.approx(1.44e9, rel=0.2)
        assert not m.flapped()
        assert m.n_reflectors > 100
        assert m.n_peers >= 1

    def test_vip_attack_flaps_transit(self, observatory_env):
        """A ~20 Gbps VIP attack saturates the 10GE and flaps the session."""
        obs, service = observatory_env
        event = self.launch(obs, service, plan="vip", duration=120.0)
        m = obs.capture_attack(event, np.random.default_rng(0))
        assert m.flapped()
        assert m.peak_bps <= 10e9 * 1.001
        # During flap seconds only peering traffic arrives.
        down = ~m.transit_up
        assert down.any()
        assert (m.transit_bps[down] == 0).all()

    def test_transit_dominates_ingress(self, observatory_env):
        """Paper: ~80% of NTP attack traffic arrived via transit."""
        obs, service = observatory_env
        event = self.launch(obs, service)
        m = obs.capture_attack(event, np.random.default_rng(0))
        assert m.transit_share > 0.5

    def test_no_transit_reduces_traffic_increases_peers(self, observatory_env):
        obs, service = observatory_env
        event = self.launch(obs, service)
        with_t = obs.capture_attack(event, np.random.default_rng(0), transit_enabled=True)
        without_t = obs.capture_attack(event, np.random.default_rng(0), transit_enabled=False)
        assert without_t.mean_bps < with_t.mean_bps
        assert without_t.n_reflectors < with_t.n_reflectors

    def test_victim_outside_prefix_rejected(self, observatory_env):
        obs, service = observatory_env
        event = service.launch_attack(
            victim_ip=1, victim_asn=obs.asn, vector_name="ntp", start_time=0.0,
            duration_s=10.0, plan_name="non-vip", day=0, seeds=SeedSequenceTree(0),
        )
        with pytest.raises(ValueError):
            obs.capture_attack(event, np.random.default_rng(0))

    def test_prefix_must_be_slash24(self, observatory_env):
        obs, _ = observatory_env
        with pytest.raises(ValueError):
            IXPObservatory(
                obs.registry, obs.topology, obs.asn, Prefix.parse("198.51.0.0/16"),
                transit_provider=obs.transit_provider,
            )

    def test_peer_share_sums_to_one(self, observatory_env):
        obs, service = observatory_env
        m = obs.capture_attack(self.launch(obs, service), np.random.default_rng(0))
        if m.peer_byte_share:
            assert sum(m.peer_byte_share.values()) == pytest.approx(1.0)
