"""API hygiene: public surface is importable, documented, and consistent."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.stats",
    "repro.netmodel",
    "repro.protocols",
    "repro.flows",
    "repro.booter",
    "repro.vantage",
    "repro.domains",
    "repro.core",
    "repro.scenario",
    "repro.experiments",
    "repro.economics",
    "repro.mitigation",
    "repro.honeypot",
    "repro.obs",
]


def _walk_modules():
    seen = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        seen.append(module)
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                seen.append(importlib.import_module(f"{name}.{info.name}"))
    return {m.__name__: m for m in seen}


MODULES = _walk_modules()


class TestImportsAndDocs:
    @pytest.mark.parametrize("name", sorted(MODULES))
    def test_module_has_docstring(self, name):
        assert MODULES[name].__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", sorted(MODULES))
    def test_all_names_resolve(self, name):
        module = MODULES[name]
        exported = getattr(module, "__all__", [])
        for symbol in exported:
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"

    @pytest.mark.parametrize("name", sorted(MODULES))
    def test_public_callables_documented(self, name):
        module = MODULES[name]
        exported = getattr(module, "__all__", [])
        for symbol in exported:
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                # Only check objects defined in this package.
                if getattr(obj, "__module__", "").startswith("repro"):
                    assert inspect.getdoc(obj), f"{name}.{symbol} lacks a docstring"


class TestVersion:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_top_level_exports(self):
        assert repro.Scenario is not None
        assert repro.FlowTable is not None
