"""API hygiene: public surface is importable, documented, and consistent."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.stats",
    "repro.netmodel",
    "repro.protocols",
    "repro.flows",
    "repro.booter",
    "repro.vantage",
    "repro.domains",
    "repro.core",
    "repro.scenario",
    "repro.experiments",
    "repro.economics",
    "repro.mitigation",
    "repro.honeypot",
    "repro.obs",
    "repro.serve",
]


def _walk_modules():
    seen = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        seen.append(module)
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                seen.append(importlib.import_module(f"{name}.{info.name}"))
    return {m.__name__: m for m in seen}


MODULES = _walk_modules()


class TestImportsAndDocs:
    @pytest.mark.parametrize("name", sorted(MODULES))
    def test_module_has_docstring(self, name):
        assert MODULES[name].__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", sorted(MODULES))
    def test_all_names_resolve(self, name):
        module = MODULES[name]
        exported = getattr(module, "__all__", [])
        for symbol in exported:
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"

    @pytest.mark.parametrize("name", sorted(MODULES))
    def test_public_callables_documented(self, name):
        module = MODULES[name]
        exported = getattr(module, "__all__", [])
        for symbol in exported:
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                # Only check objects defined in this package.
                if getattr(obj, "__module__", "").startswith("repro"):
                    assert inspect.getdoc(obj), f"{name}.{symbol} lacks a docstring"


class TestVersion:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_top_level_exports(self):
        assert repro.Scenario is not None
        assert repro.FlowTable is not None


class TestTrustedConstructorGuards:
    """``FlowTable._from_validated`` skips casting, not misuse detection.

    The trusted path exists for internal call sites (builder, concat,
    filter) that guarantee schema-exact columns; handing it anything else
    must fail loudly instead of producing a corrupt table.
    """

    def _schema_columns(self, n=4):
        import numpy as np

        from repro.flows.records import SCHEMA

        return {name: np.zeros(n, dtype=dt) for name, dt in SCHEMA.items()}

    def test_accepts_schema_exact_columns(self):
        from repro.flows.records import FlowTable

        table = FlowTable._from_validated(self._schema_columns())
        assert len(table) == 4

    def test_rejects_missing_column(self):
        from repro.flows.records import FlowTable

        cols = self._schema_columns()
        del cols["peer_asn"]
        with pytest.raises(ValueError, match="peer_asn"):
            FlowTable._from_validated(cols)

    def test_rejects_wrong_dtype(self):
        import numpy as np

        from repro.flows.records import FlowTable

        cols = self._schema_columns()
        cols["packets"] = cols["packets"].astype(np.int32)
        with pytest.raises(ValueError, match="packets"):
            FlowTable._from_validated(cols)

    def test_rejects_misaligned_lengths(self):
        from repro.flows.records import FlowTable

        cols = self._schema_columns()
        cols["bytes"] = cols["bytes"][:-1]
        with pytest.raises(ValueError, match="bytes"):
            FlowTable._from_validated(cols)

    def test_rejects_non_ndarray(self):
        from repro.flows.records import FlowTable

        cols = self._schema_columns()
        cols["time"] = list(cols["time"])
        with pytest.raises(ValueError, match="time"):
            FlowTable._from_validated(cols)

    def test_rejects_extra_column(self):
        import numpy as np

        from repro.flows.records import FlowTable

        cols = self._schema_columns()
        cols["ttl"] = np.zeros(4)
        with pytest.raises(ValueError, match="unknown"):
            FlowTable._from_validated(cols)

    def test_rejects_2d_column(self):
        from repro.flows.records import FlowTable

        cols = self._schema_columns(4)
        cols["time"] = cols["time"].reshape(2, 2)
        with pytest.raises(ValueError, match="time"):
            FlowTable._from_validated(cols)
