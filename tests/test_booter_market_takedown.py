"""Tests for the booter market and the takedown scenario."""

import numpy as np
import pytest

from repro.booter.market import BooterMarket, MarketConfig, VictimPopulation
from repro.booter.reflectors import ReflectorPool
from repro.booter.takedown import TakedownScenario
from repro.netmodel.topology import TopologyConfig, build_topology
from repro.stats.rng import SeedSequenceTree


@pytest.fixture(scope="module")
def topo_env():
    return build_topology(TopologyConfig(n_tier1=3, n_tier2=10, n_stub=60), SeedSequenceTree(1))


@pytest.fixture(scope="module")
def pools(topo_env):
    reg, _ = topo_env
    seeds = SeedSequenceTree(2)
    return {
        "ntp": ReflectorPool.generate("ntp", 3000, reg, seeds, concentration=1.0),
        "dns": ReflectorPool.generate("dns", 2500, reg, seeds, concentration=1.0),
        "cldap": ReflectorPool.generate("cldap", 1200, reg, seeds, concentration=2.0),
        "memcached": ReflectorPool.generate("memcached", 600, reg, seeds, concentration=10.0),
        "ssdp": ReflectorPool.generate("ssdp", 800, reg, seeds, concentration=1.0),
    }


@pytest.fixture(scope="module")
def market(topo_env, pools):
    reg, _ = topo_env
    config = MarketConfig(daily_attacks=30.0, n_victims=300)
    return BooterMarket(reg, pools, config, SeedSequenceTree(3))


class TestMarketConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MarketConfig(daily_attacks=0)
        with pytest.raises(ValueError):
            MarketConfig(seized_synthetic=99, n_synthetic_booters=5)
        with pytest.raises(ValueError):
            MarketConfig(vector_mix=(("ntp", 0.5),))
        with pytest.raises(KeyError):
            MarketConfig(vector_mix=(("quic", 1.0),))
        with pytest.raises(ValueError):
            MarketConfig(plan_mix=(("non-vip", 0.5),))


class TestVictimPopulation:
    def test_size_and_heavy_tail(self, topo_env):
        reg, _ = topo_env
        pop = VictimPopulation(reg, MarketConfig(n_victims=500), SeedSequenceTree(4))
        assert len(pop) == 500
        rng = np.random.default_rng(0)
        ips, asns = pop.sample(rng, 5000)
        _, counts = np.unique(ips, return_counts=True)
        # Zipf popularity: the most-hit victim absorbs many samples.
        assert counts.max() > 5000 / 500 * 5

    def test_victim_asns_resolve(self, topo_env):
        reg, _ = topo_env
        pop = VictimPopulation(reg, MarketConfig(n_victims=200), SeedSequenceTree(5))
        resolved = reg.resolve_addresses(pop.ips)
        np.testing.assert_array_equal(resolved, pop.asns)


class TestBooterMarket:
    def test_all_services_built(self, market):
        # 4 catalogue booters + 20 synthetic.
        assert len(market.services) == 24
        assert {"A", "B", "C", "D"} <= set(market.services)

    def test_fifteen_seized(self, market):
        assert len(market.seized_services()) == 15

    def test_seized_services_lead_market(self, market):
        """The FBI picked popular services: seized > surviving demand share."""
        seized = sum(s.popularity for s in market.seized_services())
        assert seized > 0.5

    def test_attacks_for_day_deterministic(self, market):
        a = market.attacks_for_day(5)
        b = market.attacks_for_day(5)
        assert len(a) == len(b)
        assert all(x.victim_ip == y.victim_ip for x, y in zip(a, b))

    def test_attack_times_within_day(self, market):
        events = market.attacks_for_day(3)
        assert events, "expected some attacks"
        for e in events:
            assert 3 * 86400 <= e.start_time < 4 * 86400

    def test_vector_mix_dominated_by_ntp(self, market):
        vectors = [e.vector for day in range(6) for e in market.attacks_for_day(day)]
        assert vectors.count("ntp") / len(vectors) > 0.4

    def test_demand_weights_override(self, market):
        only_c = {name: (1.0 if name == "C" else 0.0) for name in market.services}
        events = market.attacks_for_day(0, demand_weights=only_c)
        assert events
        assert all(e.booter == "C" for e in events)

    def test_zero_demand(self, market):
        zero = {name: 0.0 for name in market.services}
        assert market.attacks_for_day(0, demand_weights=zero) == []

    def test_demand_scale(self, market):
        lots = sum(len(market.attacks_for_day(d, demand_scale=3.0)) for d in range(4))
        few = sum(len(market.attacks_for_day(d, demand_scale=0.3)) for d in range(4))
        assert lots > few * 3

    def test_negative_scale_rejected(self, market):
        with pytest.raises(ValueError):
            market.attacks_for_day(0, demand_scale=-1)

    def test_scan_flows_target_vector_ports(self, market):
        flows = market.scan_flows_for_day(0)
        assert len(flows) > 0
        ports = set(np.unique(flows["dst_port"]).tolist())
        assert ports <= {123, 53, 389, 11211, 1900}

    def test_scan_flows_respect_activity(self, market):
        full = market.scan_flows_for_day(1)
        nothing = market.scan_flows_for_day(1, activity={n: 0.0 for n in market.services})
        assert len(nothing) == 0
        assert full.total_packets > 0

    def test_scan_activity_halved(self, market):
        full = market.scan_flows_for_day(2).total_packets
        half = market.scan_flows_for_day(
            2, activity={n: 0.5 for n in market.services}
        ).total_packets
        assert half == pytest.approx(full * 0.5, rel=0.05)


class TestTakedownScenario:
    @pytest.fixture
    def scenario(self):
        return TakedownScenario(takedown_day=50, migration_halflife_days=4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TakedownScenario(takedown_day=0, migration_halflife_days=0)
        with pytest.raises(ValueError):
            TakedownScenario(takedown_day=0, permanent_demand_loss=2.0)
        with pytest.raises(ValueError):
            TakedownScenario(takedown_day=0, revived_booters={"A": -1})

    def test_backend_activity_before(self, market, scenario):
        activity = scenario.backend_activity(market, 10)
        assert all(v == 1.0 for v in activity.values())

    def test_backend_activity_after(self, market, scenario):
        activity = scenario.backend_activity(market, 51)
        for name, service in market.services.items():
            if service.catalog.seized:
                assert activity[name] == 0.0
            else:
                assert activity[name] == 1.0

    def test_booter_a_revives(self, market, scenario):
        # A revives 3 days after the takedown with partial activity.
        assert scenario.backend_activity(market, 52)["A"] == 0.0
        assert scenario.backend_activity(market, 53)["A"] == pytest.approx(0.6)

    def test_demand_drops_then_recovers(self, market, scenario):
        def total(day):
            return scenario.demand_scale(market, day)

        assert total(49) == pytest.approx(1.0)
        day_after = total(51)
        assert day_after < 0.85  # immediate dip
        recovered = total(80)
        assert recovered > day_after
        # Long-run level: 1 - permanent_loss * displaced share (plus the
        # revived booter's recovery), i.e. close to but below 1.
        assert 0.85 < recovered <= 1.0

    def test_seized_demand_zero_right_after(self, market, scenario):
        weights = scenario.demand_weights(market, 50)
        for name, service in market.services.items():
            if service.catalog.seized and name != "A":
                assert weights[name] == 0.0

    def test_survivors_absorb_demand(self, market, scenario):
        before = scenario.demand_weights(market, 10)
        after = scenario.demand_weights(market, 85)
        for name, service in market.services.items():
            if not service.catalog.seized:
                assert after[name] > before[name]
