"""Smoke tests: every example script must run cleanly end to end.

Examples are part of the public deliverable; this guards them against
API drift. Each runs in a subprocess exactly as a user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_complete():
    assert len(EXAMPLES) >= 6
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_output_mentions_victims():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "confirmed DDoS victims" in result.stdout
    assert "top victims" in result.stdout
