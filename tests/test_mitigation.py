"""Tests for blackholing and reflector remediation."""

import numpy as np
import pytest

from repro.booter.reflectors import ReflectorPool
from repro.mitigation.blackhole import BlackholePolicy, RTBHController
from repro.mitigation.remediation import RemediationPolicy, ReflectorRemediation
from repro.netmodel.topology import TopologyConfig, build_topology
from repro.stats.rng import SeedSequenceTree


class TestBlackholePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlackholePolicy(trigger_bps=0)
        with pytest.raises(ValueError):
            BlackholePolicy(release_bps=10e9, trigger_bps=5e9)
        with pytest.raises(ValueError):
            BlackholePolicy(trigger_seconds=0)
        with pytest.raises(ValueError):
            BlackholePolicy(coverage=0.0)


class TestRTBHController:
    def attack_series(self, n=600, rate=8e9, start=60, end=400):
        series = np.full(n, 1e6)
        series[start:end] = rate
        return series

    def test_triggers_on_sustained_attack(self):
        ctl = RTBHController(BlackholePolicy(trigger_bps=5e9, trigger_seconds=5))
        series = self.attack_series()
        delivered, blackholed = ctl.apply(series)
        assert blackholed.any()
        # Once active, attack traffic is dropped.
        assert delivered[blackholed].max() == 0.0

    def test_trigger_latency(self):
        ctl = RTBHController(BlackholePolicy(trigger_bps=5e9, trigger_seconds=5))
        latency = ctl.time_to_mitigation(self.attack_series())
        assert latency == 4  # 5 sustained seconds, first second counts

    def test_no_trigger_below_threshold(self):
        ctl = RTBHController(BlackholePolicy(trigger_bps=5e9))
        series = np.full(100, 1e9)
        delivered, blackholed = ctl.apply(series)
        assert not blackholed.any()
        np.testing.assert_array_equal(delivered, series)
        assert ctl.time_to_mitigation(series) is None

    def test_short_spike_does_not_trigger(self):
        ctl = RTBHController(BlackholePolicy(trigger_bps=5e9, trigger_seconds=10))
        series = np.full(100, 1e6)
        series[50:55] = 9e9  # 5 seconds < trigger_seconds
        _, blackholed = ctl.apply(series)
        assert not blackholed.any()

    def test_release_after_hold_and_quiet(self):
        ctl = RTBHController(
            BlackholePolicy(trigger_bps=5e9, trigger_seconds=2, hold_seconds=30, release_bps=1e8)
        )
        series = self.attack_series(n=600, start=10, end=100)
        _, blackholed = ctl.apply(series)
        assert blackholed[50]
        assert not blackholed[-1]  # released once quiet and past the hold

    def test_partial_coverage_leaks(self):
        ctl = RTBHController(BlackholePolicy(trigger_bps=5e9, trigger_seconds=2, coverage=0.7))
        series = self.attack_series()
        delivered, blackholed = ctl.apply(series)
        leaked = delivered[blackholed]
        assert leaked.max() == pytest.approx(8e9 * 0.3)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            RTBHController().apply(np.array([-1.0]))


class TestRTBHOnRealCapture:
    def test_blackhole_composes_with_self_attack(self):
        """The observatory's emergency brake (ethics item (g)): apply RTBH
        to a captured VIP attack's offered-rate series."""
        from repro.experiments.base import ExperimentConfig, build_scenario
        from repro.experiments.campaign import VIP_SPECS, SelfAttackCampaign

        campaign = SelfAttackCampaign(build_scenario(ExperimentConfig()))
        spec = next(s for s in VIP_SPECS if s.vector == "ntp")
        measurement = campaign.run(spec)
        ctl = RTBHController(BlackholePolicy(trigger_bps=8e9, trigger_seconds=3))
        delivered, blackholed = ctl.apply(measurement.offered_bps)
        assert blackholed.any()  # the 20 Gbps attack trips the brake
        assert delivered[blackholed].max() == 0.0
        latency = ctl.time_to_mitigation(measurement.offered_bps)
        assert latency is not None and latency < 10


@pytest.fixture(scope="module")
def pool():
    reg, _ = build_topology(TopologyConfig(n_tier1=3, n_tier2=8, n_stub=40), SeedSequenceTree(1))
    return ReflectorPool.generate("ntp", 1000, reg, SeedSequenceTree(2))


class TestRemediationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RemediationPolicy(daily_patch_fraction=1.5)
        with pytest.raises(ValueError):
            RemediationPolicy(daily_reinfection=-1)
        with pytest.raises(ValueError):
            RemediationPolicy(start_day=-1)


class TestReflectorRemediation:
    def test_decay_towards_equilibrium(self, pool):
        policy = RemediationPolicy(daily_patch_fraction=0.05, daily_reinfection=0.002)
        rem = ReflectorRemediation(pool, policy, SeedSequenceTree(3))
        assert rem.alive_fraction(0) == 1.0
        assert rem.alive_fraction(10) < 0.8
        late = rem.alive_fraction(200)
        assert late == pytest.approx(rem.equilibrium_alive_fraction(), abs=0.05)

    def test_no_reinfection_drains_pool(self, pool):
        policy = RemediationPolicy(daily_patch_fraction=0.1, daily_reinfection=0.0)
        rem = ReflectorRemediation(pool, policy, SeedSequenceTree(4))
        assert rem.alive_fraction(100) < 0.01
        assert rem.equilibrium_alive_fraction() == 0.0

    def test_start_day_respected(self, pool):
        policy = RemediationPolicy(daily_patch_fraction=0.2, start_day=10)
        rem = ReflectorRemediation(pool, policy, SeedSequenceTree(5))
        assert rem.alive_fraction(10) == 1.0
        assert rem.alive_fraction(15) < 1.0

    def test_refill_beats_static_set(self, pool):
        """Booters that churn their lists route around remediation."""
        policy = RemediationPolicy(daily_patch_fraction=0.05, daily_reinfection=0.0)
        rem = ReflectorRemediation(pool, policy, SeedSequenceTree(6))
        working = np.arange(200)
        day = 20
        static = rem.attack_capacity(day, working, refill=False)
        refilled = rem.attack_capacity(day, working, refill=True)
        assert refilled >= static
        assert refilled == 1.0  # pool still has >200 alive reflectors
        assert static < 0.6

    def test_refill_eventually_fails(self, pool):
        policy = RemediationPolicy(daily_patch_fraction=0.1, daily_reinfection=0.0)
        rem = ReflectorRemediation(pool, policy, SeedSequenceTree(7))
        working = np.arange(200)
        assert rem.attack_capacity(100, working, refill=True) < 0.2

    def test_deterministic(self, pool):
        policy = RemediationPolicy()
        a = ReflectorRemediation(pool, policy, SeedSequenceTree(8))
        b = ReflectorRemediation(pool, policy, SeedSequenceTree(8))
        np.testing.assert_array_equal(a.alive_mask(30), b.alive_mask(30))

    def test_validation(self, pool):
        rem = ReflectorRemediation(pool, RemediationPolicy(), SeedSequenceTree(9))
        with pytest.raises(ValueError):
            rem.alive_mask(-1)
        with pytest.raises(ValueError):
            rem.attack_capacity(0, np.array([]))
        with pytest.raises(ValueError):
            rem.attack_capacity(0, np.array([99999]))
