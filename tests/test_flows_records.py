"""Tests for the columnar FlowTable."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.records import (
    PLANE_ROW_BYTES,
    RECORD_DTYPE,
    SCHEMA,
    FlowRecord,
    FlowTable,
)


def make_table(n=5, **overrides):
    rng = np.random.default_rng(0)
    cols = {
        "time": np.arange(n, dtype=float),
        "src_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
        "dst_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
        "proto": np.full(n, 17, dtype=np.uint8),
        "src_port": np.full(n, 123, dtype=np.uint16),
        "dst_port": np.full(n, 50000, dtype=np.uint16),
        "packets": np.full(n, 10, dtype=np.int64),
        "bytes": np.full(n, 4860, dtype=np.int64),
    }
    cols.update(overrides)
    return FlowTable(cols)


class TestConstruction:
    def test_basic(self):
        t = make_table(3)
        assert len(t) == 3
        assert t.total_packets == 30
        assert t.total_bytes == 3 * 4860

    def test_optional_asn_columns_defaulted(self):
        t = make_table(2)
        np.testing.assert_array_equal(t["src_asn"], [-1, -1])
        np.testing.assert_array_equal(t["peer_asn"], [-1, -1])

    def test_missing_required_column_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            FlowTable({"time": np.zeros(1)})

    def test_unknown_column_rejected(self):
        cols = {name: np.zeros(1, dtype=dt) for name, dt in SCHEMA.items()}
        cols["color"] = np.zeros(1)
        with pytest.raises(ValueError, match="unknown"):
            FlowTable(cols)

    def test_misaligned_columns_rejected(self):
        cols = {name: np.zeros(3, dtype=dt) for name, dt in SCHEMA.items()}
        cols["packets"] = np.zeros(4, dtype=np.int64)
        with pytest.raises(ValueError, match="rows"):
            FlowTable(cols)

    def test_2d_column_rejected(self):
        cols = {name: np.zeros(2, dtype=dt) for name, dt in SCHEMA.items()}
        cols["time"] = np.zeros((2, 1))
        with pytest.raises(ValueError, match="1-D"):
            FlowTable(cols)

    def test_dtype_coercion(self):
        t = make_table(2, packets=np.array([1.0, 2.0]))
        assert t["packets"].dtype == np.int64

    def test_empty(self):
        t = FlowTable.empty()
        assert len(t) == 0
        assert t.total_packets == 0

    def test_unknown_column_lookup(self):
        with pytest.raises(KeyError):
            make_table(1)["nope"]


class TestRecords:
    def test_roundtrip_through_records(self):
        t = make_table(4)
        records = list(t.to_records())
        t2 = FlowTable.from_records(records)
        for name in SCHEMA:
            np.testing.assert_array_equal(t[name], t2[name])

    def test_record_mean_packet_size(self):
        r = FlowRecord(0, 1, 2, 17, 123, 50000, packets=10, bytes=4860)
        assert r.mean_packet_size == 486.0
        r0 = FlowRecord(0, 1, 2, 17, 123, 50000, packets=0, bytes=0)
        assert r0.mean_packet_size == 0.0

    def test_iter(self):
        t = make_table(3)
        assert len(list(t)) == 3


class TestTransformations:
    def test_filter(self):
        t = make_table(5)
        sub = t.filter(np.array([True, False, True, False, False]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub["time"], [0.0, 2.0])

    def test_filter_bad_mask(self):
        t = make_table(3)
        with pytest.raises(ValueError):
            t.filter(np.array([1, 0, 1]))
        with pytest.raises(ValueError):
            t.filter(np.array([True]))

    def test_select_port_and_time(self):
        t = make_table(5, dst_port=np.array([123, 123, 53, 123, 53], dtype=np.uint16))
        sub = t.select(dst_port=123, time_range=(1.0, 4.0))
        np.testing.assert_array_equal(sub["time"], [1.0, 3.0])

    def test_select_packet_size_threshold_exclusive(self):
        """The paper's '> 200 bytes' rule is an exclusive bound."""
        t = make_table(
            3,
            packets=np.array([1, 1, 1], dtype=np.int64),
            bytes=np.array([200, 201, 486], dtype=np.int64),
        )
        sub = t.select(min_packet_size=200)
        np.testing.assert_array_equal(sub["bytes"], [201, 486])

    def test_select_invalid_time_range(self):
        with pytest.raises(ValueError):
            make_table(1).select(time_range=(5.0, 1.0))

    def test_concat(self):
        t = FlowTable.concat([make_table(2), make_table(3), FlowTable.empty()])
        assert len(t) == 5

    def test_concat_empty_list(self):
        assert len(FlowTable.concat([])) == 0

    def test_sort_by_time(self):
        t = make_table(3, time=np.array([3.0, 1.0, 2.0]))
        assert list(t.sort_by_time()["time"]) == [1.0, 2.0, 3.0]

    def test_scale_counts(self):
        t = make_table(2).scale_counts(10_000)
        assert t.total_packets == 2 * 10 * 10_000

    def test_scale_counts_invalid(self):
        with pytest.raises(ValueError):
            make_table(1).scale_counts(0)

    def test_with_columns(self):
        t = make_table(2)
        t2 = t.with_columns(dst_asn=np.array([5, 6]))
        np.testing.assert_array_equal(t2["dst_asn"], [5, 6])
        with pytest.raises(KeyError):
            t.with_columns(bogus=np.zeros(2))

    def test_mean_packet_sizes_zero_packets(self):
        t = make_table(
            2, packets=np.array([0, 10], dtype=np.int64), bytes=np.array([0, 100], dtype=np.int64)
        )
        np.testing.assert_allclose(t.mean_packet_sizes(), [0.0, 10.0])


def random_table(n, seed=0, asn_high=1 << 30):
    rng = np.random.default_rng(seed)
    return FlowTable(
        {
            "time": rng.uniform(0, 1e9, n),
            "src_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
            "dst_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
            "proto": rng.integers(0, 256, n).astype(np.uint8),
            "src_port": rng.integers(0, 65536, n).astype(np.uint16),
            "dst_port": rng.integers(0, 65536, n).astype(np.uint16),
            "packets": rng.integers(-(2**62), 2**62, n),
            "bytes": rng.integers(-(2**62), 2**62, n),
            "src_asn": rng.integers(-1, asn_high, n),
            "dst_asn": rng.integers(-1, asn_high, n),
            "peer_asn": rng.integers(-1, asn_high, n),
        }
    )


class TestStructuredArray:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 300), st.integers(0, 1000))
    def test_roundtrip_bit_identical(self, n, seed):
        t = random_table(n, seed)
        back = FlowTable.from_structured(t.to_structured())
        for name in SCHEMA:
            np.testing.assert_array_equal(t[name], back[name], err_msg=name)
            assert back[name].dtype == t[name].dtype, name

    def test_views_share_memory_with_records(self):
        t = random_table(10)
        records = t.to_structured()
        back = FlowTable.from_structured(records)
        for name in ("time", "src_ip", "packets", "bytes", "proto"):
            assert np.shares_memory(back[name], records), name

    def test_copy_detaches_from_records(self):
        t = random_table(10)
        records = t.to_structured()
        back = FlowTable.from_structured(records, copy=True)
        for name in SCHEMA:
            assert not np.shares_memory(back[name], records), name
            assert back[name].flags["C_CONTIGUOUS"], name

    def test_nan_time_survives(self):
        t = make_table(2, time=np.array([np.nan, 1.5]))
        back = FlowTable.from_structured(t.to_structured())
        assert np.isnan(back["time"][0]) and back["time"][1] == 1.5

    def test_extreme_counters_exact(self):
        t = make_table(
            2,
            packets=np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max]),
            bytes=np.array([-1, 2**62]),
        )
        back = FlowTable.from_structured(t.to_structured())
        np.testing.assert_array_equal(back["packets"], t["packets"])
        np.testing.assert_array_equal(back["bytes"], t["bytes"])

    def test_out_of_range_asn_raises(self):
        t = make_table(1, src_asn=np.array([2**31]))
        with pytest.raises(ValueError, match="src_asn"):
            t.to_structured()
        t_low = make_table(1, peer_asn=np.array([-(2**31) - 1]))
        with pytest.raises(ValueError, match="peer_asn"):
            t_low.to_structured()

    def test_boundary_asn_exact(self):
        t = make_table(2, src_asn=np.array([-(2**31), 2**31 - 1]))
        back = FlowTable.from_structured(t.to_structured())
        np.testing.assert_array_equal(back["src_asn"], [-(2**31), 2**31 - 1])

    def test_clamp_asn_flag(self):
        t = make_table(2, dst_asn=np.array([2**40, -(2**40)]))
        records = t.to_structured(clamp_asn=True)
        np.testing.assert_array_equal(records["dst_asn"], [2**31 - 1, -(2**31)])

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ValueError, match="RECORD_DTYPE"):
            FlowTable.from_structured(np.zeros(3, dtype=np.float64))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            FlowTable.from_structured(np.zeros((2, 2), dtype=RECORD_DTYPE))

    def test_empty_roundtrip(self):
        back = FlowTable.from_structured(FlowTable.empty().to_structured())
        assert len(back) == 0


class TestPickleFastPath:
    def test_pickle_roundtrip_bit_identical(self):
        t = random_table(50, seed=3)
        back = pickle.loads(pickle.dumps(t))
        for name in SCHEMA:
            np.testing.assert_array_equal(t[name], back[name], err_msg=name)
            assert back[name].dtype == t[name].dtype, name

    def test_pickle_collapses_to_one_buffer(self):
        # The plane fast path should cost ~PLANE_ROW_BYTES per row, far
        # below the per-column pickle's 11 separate array payloads.
        t = random_table(2000, seed=4)
        assert len(pickle.dumps(t)) < 1.05 * len(t) * PLANE_ROW_BYTES + 1024

    def test_pickle_exact_for_wide_asns(self):
        # Full-width plane columns: no i32 narrowing, no fallback needed.
        t = make_table(3, src_asn=np.array([2**40, -1, 7]))
        back = pickle.loads(pickle.dumps(t))
        np.testing.assert_array_equal(back["src_asn"], [2**40, -1, 7])
        for name in SCHEMA:
            np.testing.assert_array_equal(t[name], back[name], err_msg=name)

    def test_pickle_empty(self):
        assert len(pickle.loads(pickle.dumps(FlowTable.empty()))) == 0


class TestColumnPlane:
    def test_plane_roundtrip_bit_identical(self):
        t = random_table(300, seed=6)
        back = FlowTable.from_plane(t.to_plane(), len(t))
        for name in SCHEMA:
            np.testing.assert_array_equal(t[name], back[name], err_msg=name)
            assert back[name].dtype == t[name].dtype, name

    def test_plane_size_and_zero_copy_views(self):
        t = random_table(128, seed=7)
        plane = t.to_plane()
        assert plane.dtype == np.uint8
        assert plane.size == 128 * PLANE_ROW_BYTES
        back = FlowTable.from_plane(plane, 128)
        for name in SCHEMA:
            assert np.shares_memory(back[name], plane), name

    def test_plane_handles_noncontiguous_columns(self):
        # from_structured tables hold strided views; to_plane must still
        # pack them (via a contiguous intermediate copy).
        t = random_table(64, seed=8)
        strided = FlowTable.from_structured(t.to_structured())
        assert not strided["time"].flags.c_contiguous
        back = FlowTable.from_plane(strided.to_plane(), 64)
        for name in SCHEMA:
            np.testing.assert_array_equal(t[name], back[name], err_msg=name)

    def test_plane_rejects_wrong_size_and_dtype(self):
        t = random_table(10, seed=9)
        plane = t.to_plane()
        with pytest.raises(ValueError, match="expected"):
            FlowTable.from_plane(plane, 11)
        with pytest.raises(ValueError, match="uint8"):
            FlowTable.from_plane(plane.astype(np.uint16), 10)

    def test_plane_empty(self):
        plane = FlowTable.empty().to_plane()
        assert plane.size == 0
        assert len(FlowTable.from_plane(plane, 0)) == 0


class TestAggregates:
    def test_time_span(self):
        assert make_table(3).time_span() == (0.0, 2.0)
        with pytest.raises(ValueError):
            FlowTable.empty().time_span()

    def test_unique_counts(self):
        t = make_table(
            4,
            src_ip=np.array([1, 1, 2, 3], dtype=np.uint32),
            dst_ip=np.array([9, 9, 9, 8], dtype=np.uint32),
        )
        assert t.unique_sources() == 3
        assert t.unique_destinations() == 2

    @settings(max_examples=20)
    @given(st.integers(1, 50))
    def test_filter_concat_identity(self, n):
        t = make_table(n)
        mask = np.arange(n) % 2 == 0
        rejoined = FlowTable.concat([t.filter(mask), t.filter(~mask)])
        assert len(rejoined) == n
        assert rejoined.total_bytes == t.total_bytes
