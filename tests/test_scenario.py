"""Tests for the scenario orchestration and benign background."""

import numpy as np
import pytest

from repro.scenario import BackgroundConfig, Scenario, ScenarioConfig
from repro.scenario.background import BenignBackground
from repro.stats.rng import SeedSequenceTree


@pytest.fixture(scope="module")
def scenario():
    from repro.booter.market import MarketConfig
    from repro.netmodel.topology import TopologyConfig

    return Scenario(
        ScenarioConfig(
            scale=0.2,
            topology=TopologyConfig(n_tier1=3, n_tier2=12, n_stub=80),
            market=MarketConfig(daily_attacks=40.0, n_victims=400),
            pool_sizes=(("ntp", 2000), ("dns", 1500), ("cldap", 600), ("memcached", 300), ("ssdp", 400)),
        )
    )


class TestScenarioConfig:
    def test_defaults_valid(self):
        cfg = ScenarioConfig()
        assert cfg.n_days == 122
        assert cfg.takedown_day == 80  # 2018-12-19 is day 80 from 2018-09-30

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(scale=0)
        with pytest.raises(ValueError):
            ScenarioConfig(takedown_day=999)
        with pytest.raises(ValueError):
            ScenarioConfig(ixp_window=(50, 50))


class TestScenarioBuild:
    def test_world_built(self, scenario):
        assert len(scenario.registry) > 90
        assert scenario.observatory.asn == 64512
        assert set(scenario.vantage_points) == {"ixp", "tier1", "tier2"}

    def test_tier2_vantage_is_member(self, scenario):
        assert scenario.registry.get(scenario.tier2.asn).ixp_member

    def test_pools_built(self, scenario):
        assert len(scenario.pools["ntp"]) == 2000
        # Memcached pools concentrate on few ASes.
        ntp_asns = scenario.pools["ntp"].unique_asns().size
        mc_asns = scenario.pools["memcached"].unique_asns().size
        assert mc_asns < ntp_asns

    def test_unknown_vantage(self, scenario):
        with pytest.raises(KeyError):
            scenario.vantage_point("tier3")


class TestDayTraffic:
    def test_deterministic(self, scenario):
        a = scenario.day_traffic(30)
        b = scenario.day_traffic(30)
        assert len(a.events) == len(b.events)
        assert a.attack.total_packets == b.attack.total_packets

    def test_day_out_of_range(self, scenario):
        with pytest.raises(ValueError):
            scenario.day_traffic(-1)
        with pytest.raises(ValueError):
            scenario.day_traffic(99999)

    def test_kinds_have_expected_direction(self, scenario):
        d = scenario.day_traffic(30)
        # Attack flows: src_port is a service port.
        assert set(np.unique(d.attack["src_port"]).tolist()) <= {123, 53, 389, 11211, 1900}
        # Trigger + scan flows: dst_port is a service port.
        assert set(np.unique(d.trigger["dst_port"]).tolist()) <= {123, 53, 389, 11211, 1900}
        assert set(np.unique(d.scan["dst_port"]).tolist()) <= {123, 53, 389, 11211, 1900}

    def test_takedown_reduces_scans_not_attacks(self, scenario):
        """The core asymmetry: after the takedown, reflector-bound backend
        traffic collapses while attack activity stays comparable."""
        before_day = scenario.config.takedown_day - 5
        after_day = scenario.config.takedown_day + 5
        before = scenario.day_traffic(before_day)
        after = scenario.day_traffic(after_day)
        assert after.scan.total_packets < 0.6 * before.scan.total_packets
        # Attack demand dips slightly but is the same order of magnitude.
        assert len(after.events) > 0.4 * len(before.events)

    def test_takedown_demand_level_applied(self, scenario):
        """Regression: the takedown's *total* demand reduction must reach
        attacks_for_day (the per-service weights alone are normalized away)."""
        day_after = scenario.config.takedown_day + 1
        with_td = scenario.day_traffic(day_after)
        without_td = scenario.day_traffic(day_after, with_takedown=False)
        expected_level = scenario.takedown.demand_scale(scenario.market, day_after)
        assert expected_level < 0.8
        # Attack counts are Poisson; compare against the counterfactual of
        # the very same day (same seeds, same demand noise).
        assert len(with_td.events) < len(without_td.events)

    def test_counterfactual_keeps_scans(self, scenario):
        after_day = scenario.config.takedown_day + 5
        with_td = scenario.day_traffic(after_day)
        without_td = scenario.day_traffic(after_day, with_takedown=False)
        assert without_td.scan.total_packets > with_td.scan.total_packets

    def test_cache(self, scenario):
        a = scenario.day_traffic(31, cache=True)
        b = scenario.day_traffic(31, cache=True)
        assert a is b

    def test_to_reflectors_excludes_attack(self, scenario):
        d = scenario.day_traffic(30)
        refl = d.to_reflectors()
        assert len(refl) == len(d.trigger) + len(d.scan) + len(d.benign)


class TestObserveDay:
    def test_windows_respected(self, scenario):
        early = scenario.day_traffic(5)
        assert len(scenario.observe_day("ixp", early)) == 0  # before day 27
        assert len(scenario.observe_day("tier1", early)) == 0  # before day 73
        assert len(scenario.observe_day("tier2", early)) > 0

    def test_ixp_sees_traffic_in_window(self, scenario):
        d = scenario.day_traffic(30)
        obs = scenario.observe_day("ixp", d)
        assert len(obs) > 0

    def test_kind_selection(self, scenario):
        d = scenario.day_traffic(30)
        attack_only = scenario.observe_day("tier2", d, kinds=("attack",))
        everything = scenario.observe_day("tier2", d)
        assert 0 < len(attack_only) < len(everything)

    def test_observation_deterministic(self, scenario):
        d = scenario.day_traffic(30)
        a = scenario.observe_day("ixp", d)
        b = scenario.observe_day("ixp", d)
        assert len(a) == len(b)
        assert a.total_packets == b.total_packets


class TestBenignBackground:
    def test_flows_generated(self, scenario):
        bg = scenario.background.flows_for_day(0)
        assert len(bg) > 0

    def test_deterministic(self, scenario):
        a = scenario.background.flows_for_day(3)
        b = scenario.background.flows_for_day(3)
        assert a.total_packets == b.total_packets

    def test_intensity_scale(self, scenario):
        base = scenario.background.flows_for_day(4, intensity_scale=1.0)
        double = scenario.background.flows_for_day(4, intensity_scale=2.0)
        assert double.total_packets > base.total_packets * 1.5

    def test_negative_scale_rejected(self, scenario):
        with pytest.raises(ValueError):
            scenario.background.flows_for_day(0, intensity_scale=-1)

    def test_ntp_benign_packets_small(self, scenario):
        bg = scenario.background.flows_for_day(1)
        ntp = bg.select(dst_port=123)
        assert len(ntp) > 0
        assert (ntp.mean_packet_sizes() < 220).all()

    def test_dns_busier_than_memcached(self, scenario):
        bg = scenario.background.flows_for_day(2)
        dns = bg.select(dst_port=53).total_packets
        mc = bg.select(dst_port=11211).total_packets
        assert dns > mc * 10

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BackgroundConfig(daily_packets_unit=-1)
        with pytest.raises(ValueError):
            BackgroundConfig(daily_flows_per_port=0)
        with pytest.raises(ValueError):
            BackgroundConfig(response_fraction=1.5)
