"""Tests for the markdown report writer and the self-attack campaign specs."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.base import ExperimentResult, build_scenario
from repro.experiments.campaign import (
    FIG1C_SPECS,
    NON_VIP_SPECS,
    VIP_SPECS,
    SelfAttackCampaign,
)
from repro.experiments.report import result_to_markdown, write_report
from repro.experiments.runner import main


class TestReportWriter:
    def make_result(self):
        return ExperimentResult(
            experiment_id="demo",
            title="a | piped title",
            tables=["col\n---\n1"],
            paper_vs_measured=[("metric|x", "1", "2")],
        )

    def test_markdown_section(self):
        md = result_to_markdown(self.make_result())
        assert md.startswith("## demo")
        assert "a \\| piped title" in md
        assert "| metric\\|x | 1 | 2 |" in md
        assert "```" in md

    def test_write_report(self, tmp_path):
        path = write_report([self.make_result()], tmp_path / "report.md", title="T")
        text = path.read_text()
        assert text.startswith("# T")
        assert "## demo" in text

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_report([], tmp_path / "x.md")

    def test_runner_output_flag(self, tmp_path, capsys):
        out = tmp_path / "run.md"
        assert main(["table1", "--output", str(out)]) == 0
        # Status lines are logged to stderr; stdout stays pipeable.
        assert "report written" in capsys.readouterr().err
        assert "## table1" in out.read_text()


class TestCampaignSpecs:
    def test_non_vip_has_ten_runs(self):
        assert len(NON_VIP_SPECS) == 10
        labels = [s.label for s in NON_VIP_SPECS]
        assert len(set(labels)) == 10
        # Three "no transit" runs, as in Figure 1(a)'s legend.
        assert sum(not s.transit for s in NON_VIP_SPECS) == 3

    def test_vip_has_two_runs_of_five_minutes(self):
        assert len(VIP_SPECS) == 2
        assert all(s.duration_s == 300.0 for s in VIP_SPECS)
        assert {s.vector for s in VIP_SPECS} == {"ntp", "memcached"}

    def test_fig1c_has_sixteen_dated_attacks(self):
        assert len(FIG1C_SPECS) == 16
        assert all(s.vector == "ntp" for s in FIG1C_SPECS)
        assert all(s.date_label for s in FIG1C_SPECS)
        # Booter B's list eras: era0 before 18-06-13, era1 after.
        b_eras = {s.date_label: s.list_epoch for s in FIG1C_SPECS if s.booter == "B" and s.plan == "non-vip"}
        assert b_eras["18-06-12"] == "era0"
        assert b_eras["18-06-13"] == "era1"

    def test_service_instances_cached(self):
        campaign = SelfAttackCampaign(build_scenario(ExperimentConfig()))
        a = campaign._service("B", "ntp", "era0")
        b = campaign._service("B", "ntp", "era0")
        assert a is b
        c = campaign._service("B", "ntp", "era1")
        assert c is not a

    def test_reflector_sets_align_with_specs(self):
        campaign = SelfAttackCampaign(build_scenario(ExperimentConfig()))
        labeled = campaign.reflector_sets(FIG1C_SPECS[:4])
        assert len(labeled) == 4
        for spec, ips in labeled:
            assert ips.size > 0
            assert spec in FIG1C_SPECS
