"""Tests for the Welch one-tailed t-test, cross-checked against scipy."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats.welch import (
    WelchResult,
    student_t_sf,
    welch_one_tailed,
    welch_statistic,
)


class TestStudentTSf:
    @pytest.mark.parametrize("df", [1.0, 2.5, 10.0, 100.0])
    @pytest.mark.parametrize("t", [-3.0, -0.5, 0.0, 0.5, 3.0])
    def test_matches_scipy(self, t, df):
        expected = scipy.stats.t.sf(t, df)
        assert student_t_sf(t, df) == pytest.approx(expected, rel=1e-10)

    def test_symmetry(self):
        assert student_t_sf(1.3, 7) + student_t_sf(-1.3, 7) == pytest.approx(1.0)

    def test_at_zero_is_half(self):
        assert student_t_sf(0.0, 5) == pytest.approx(0.5)

    def test_infinite_t(self):
        assert student_t_sf(float("inf"), 5) == 0.0
        assert student_t_sf(float("-inf"), 5) == 1.0

    def test_invalid_df(self):
        with pytest.raises(ValueError):
            student_t_sf(1.0, 0.0)


class TestWelchStatistic:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(10, 2, 30)
        y = rng.normal(8, 5, 40)
        t, df = welch_statistic(x, y)
        ref = scipy.stats.ttest_ind(x, y, equal_var=False)
        assert t == pytest.approx(ref.statistic, rel=1e-12)
        assert df == pytest.approx(ref.df, rel=1e-12)

    def test_sign_convention(self):
        t, _ = welch_statistic(np.array([10.0, 11.0, 12.0]), np.array([1.0, 2.0, 3.0]))
        assert t > 0

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            welch_statistic(np.array([1.0]), np.array([1.0, 2.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            welch_statistic(np.ones((2, 2)), np.ones(3))

    def test_constant_equal_samples(self):
        t, _ = welch_statistic(np.array([5.0, 5.0]), np.array([5.0, 5.0]))
        assert t == 0.0

    def test_constant_unequal_samples(self):
        t, _ = welch_statistic(np.array([5.0, 5.0]), np.array([3.0, 3.0]))
        assert t == float("inf")

    @settings(max_examples=50)
    @given(
        hnp.arrays(np.float64, st.integers(3, 40), elements=st.floats(-1e6, 1e6)),
        hnp.arrays(np.float64, st.integers(3, 40), elements=st.floats(-1e6, 1e6)),
    )
    def test_matches_scipy_property(self, x, y):
        if np.var(x) == 0 and np.var(y) == 0:
            return  # degenerate; scipy returns nan, we define a limit value
        t, df = welch_statistic(x, y)
        ref = scipy.stats.ttest_ind(x, y, equal_var=False)
        assert t == pytest.approx(ref.statistic, rel=1e-9, abs=1e-9)


class TestWelchOneTailed:
    def test_detects_clear_reduction(self):
        rng = np.random.default_rng(1)
        before = rng.normal(1000, 50, 30)
        after = rng.normal(300, 50, 30)
        res = welch_one_tailed(before, after)
        assert res.significant
        assert res.p_value < 1e-6
        assert res.reduction_ratio == pytest.approx(0.3, abs=0.05)

    def test_no_change_not_significant(self):
        rng = np.random.default_rng(2)
        before = rng.normal(1000, 100, 30)
        after = rng.normal(1000, 100, 30)
        res = welch_one_tailed(before, after)
        assert not res.significant

    def test_increase_not_significant(self):
        rng = np.random.default_rng(3)
        before = rng.normal(300, 50, 30)
        after = rng.normal(1000, 50, 30)
        res = welch_one_tailed(before, after)
        assert not res.significant
        assert res.p_value > 0.5

    def test_p_value_matches_scipy_one_tailed(self):
        rng = np.random.default_rng(4)
        before = rng.normal(10, 3, 25)
        after = rng.normal(9, 3, 25)
        res = welch_one_tailed(before, after)
        ref = scipy.stats.ttest_ind(before, after, equal_var=False, alternative="greater")
        assert res.p_value == pytest.approx(ref.pvalue, rel=1e-10)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            welch_one_tailed(np.ones(3), np.ones(3), alpha=0.0)
        with pytest.raises(ValueError):
            welch_one_tailed(np.ones(3), np.ones(3), alpha=1.5)

    def test_reduction_ratio_zero_before(self):
        res = WelchResult(0, 1, 0.5, 0.05, False, mean_before=0.0, mean_after=1.0)
        assert np.isnan(res.reduction_ratio)

    def test_result_means(self):
        res = welch_one_tailed(np.array([2.0, 4.0]), np.array([1.0, 1.0, 1.0]))
        assert res.mean_before == pytest.approx(3.0)
        assert res.mean_after == pytest.approx(1.0)
