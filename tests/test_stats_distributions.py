"""Tests for parametric samplers."""

import numpy as np
import pytest

from repro.stats.distributions import (
    DiscreteDistribution,
    LogNormal,
    Mixture,
    ParetoTail,
    TruncatedNormal,
)


def rng():
    return np.random.default_rng(123)


class TestLogNormal:
    def test_median_calibration(self):
        dist = LogNormal(median=1000.0, sigma=0.5)
        sample = dist.sample(rng(), 200_000)
        assert np.median(sample) == pytest.approx(1000.0, rel=0.02)

    def test_analytic_mean(self):
        dist = LogNormal(median=100.0, sigma=0.8)
        sample = dist.sample(rng(), 400_000)
        assert sample.mean() == pytest.approx(dist.mean(), rel=0.03)

    def test_positive(self):
        assert (LogNormal(5, 2).sample(rng(), 1000) > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormal(0, 1)
        with pytest.raises(ValueError):
            LogNormal(1, -1)


class TestParetoTail:
    def test_support(self):
        dist = ParetoTail(xm=2.0, alpha=1.5)
        assert (dist.sample(rng(), 10_000) >= 2.0).all()

    def test_quantile_inverse(self):
        dist = ParetoTail(xm=1.0, alpha=2.0)
        sample = dist.sample(rng(), 200_000)
        q90 = dist.quantile(0.9)
        assert np.mean(sample <= q90) == pytest.approx(0.9, abs=0.01)

    def test_heavy_tail(self):
        dist = ParetoTail(xm=1.0, alpha=1.1)
        sample = dist.sample(rng(), 100_000)
        assert sample.max() > 100  # occasional huge victims

    def test_validation(self):
        with pytest.raises(ValueError):
            ParetoTail(0, 1)
        with pytest.raises(ValueError):
            ParetoTail(1, 0)
        with pytest.raises(ValueError):
            ParetoTail(1, 1).quantile(1.0)


class TestTruncatedNormal:
    def test_bounds(self):
        dist = TruncatedNormal(mean=100, std=50, low=0, high=150)
        sample = dist.sample(rng(), 10_000)
        assert sample.min() >= 0
        assert sample.max() <= 150

    def test_mean_roughly_preserved_mild_truncation(self):
        dist = TruncatedNormal(mean=100, std=10, low=0, high=1e9)
        assert dist.sample(rng(), 100_000).mean() == pytest.approx(100, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedNormal(0, -1)
        with pytest.raises(ValueError):
            TruncatedNormal(0, 1, low=5, high=5)


class TestDiscreteDistribution:
    def test_frequencies(self):
        dist = DiscreteDistribution.of([(486.0, 0.6), (490.0, 0.4)])
        sample = dist.sample(rng(), 100_000)
        assert np.mean(sample == 486.0) == pytest.approx(0.6, abs=0.01)

    def test_mean(self):
        dist = DiscreteDistribution.of([(1.0, 0.5), (3.0, 0.5)])
        assert dist.mean() == pytest.approx(2.0)

    def test_only_declared_values(self):
        dist = DiscreteDistribution.of([(7.0, 1.0)])
        assert set(np.unique(dist.sample(rng(), 100))) == {7.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteDistribution((1.0,), (0.5,))  # doesn't sum to 1
        with pytest.raises(ValueError):
            DiscreteDistribution((1.0, 2.0), (1.0,))  # length mismatch
        with pytest.raises(ValueError):
            DiscreteDistribution((), ())
        with pytest.raises(ValueError):
            DiscreteDistribution((1.0, 2.0), (1.5, -0.5))


class TestMixture:
    def test_bimodal(self):
        small = TruncatedNormal(90, 10, low=0)
        large = DiscreteDistribution.of([(486.0, 0.5), (490.0, 0.5)])
        mix = Mixture(components=(small, large), weights=(0.54, 0.46))
        sample = mix.sample(rng(), 100_000)
        frac_small = np.mean(sample < 200)
        assert frac_small == pytest.approx(0.54, abs=0.01)

    def test_default_equal_weights(self):
        mix = Mixture(components=(TruncatedNormal(0, 1), TruncatedNormal(100, 1)))
        sample = mix.sample(rng(), 10_000)
        assert np.mean(sample > 50) == pytest.approx(0.5, abs=0.03)

    def test_sample_size(self):
        mix = Mixture(components=(TruncatedNormal(0, 1),))
        assert mix.sample(rng(), 137).shape == (137,)

    def test_validation(self):
        with pytest.raises(ValueError):
            Mixture(components=())
        with pytest.raises(ValueError):
            Mixture(components=(TruncatedNormal(0, 1),), weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            Mixture(components=(TruncatedNormal(0, 1),), weights=(0.9,))
