"""Tests for packet sampling, time binning, per-destination stats, and IO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.records import SCHEMA, FlowTable
from repro.flows.sampling import PacketSampler
from repro.flows.timeseries import (
    bin_timeseries,
    daily_packet_sums,
    per_destination_stats,
    per_destination_timebinned,
)
from repro.flows.io import read_flows_csv, write_flows_csv


def table(time, src, dst, packets, bytes_, dst_port=123):
    n = len(time)
    return FlowTable(
        {
            "time": np.asarray(time, dtype=float),
            "src_ip": np.asarray(src, dtype=np.uint32),
            "dst_ip": np.asarray(dst, dtype=np.uint32),
            "proto": np.full(n, 17, dtype=np.uint8),
            "src_port": np.full(n, 123, dtype=np.uint16),
            "dst_port": np.full(n, dst_port, dtype=np.uint16),
            "packets": np.asarray(packets, dtype=np.int64),
            "bytes": np.asarray(bytes_, dtype=np.int64),
        }
    )


class TestPacketSampler:
    def test_passthrough_rate_one(self):
        t = table([0], [1], [2], [100], [48600])
        sampler = PacketSampler(1)
        assert sampler.apply(t, np.random.default_rng(0)) is t

    def test_unbiased_estimator(self):
        """Thinning then renormalizing preserves totals in expectation."""
        n = 2000
        t = table(np.zeros(n), np.arange(n), np.arange(n), np.full(n, 500), np.full(n, 500 * 486))
        sampler = PacketSampler(100)
        sampled = sampler.apply(t, np.random.default_rng(1))
        estimate = sampler.renormalize(sampled)
        assert estimate.total_packets == pytest.approx(t.total_packets, rel=0.05)
        assert estimate.total_bytes == pytest.approx(t.total_bytes, rel=0.05)

    def test_small_flows_vanish(self):
        n = 1000
        t = table(np.zeros(n), np.arange(n), np.arange(n), np.ones(n), np.full(n, 486))
        sampled = PacketSampler(10_000).apply(t, np.random.default_rng(2))
        assert len(sampled) < n * 0.01  # nearly all single-packet flows disappear

    def test_byte_thinning_proportional(self):
        t = table([0], [1], [2], [10_000], [10_000 * 486])
        sampled = PacketSampler(10).apply(t, np.random.default_rng(3))
        assert len(sampled) == 1
        assert sampled["bytes"][0] == pytest.approx(sampled["packets"][0] * 486, abs=1)

    def test_survival_probability(self):
        s = PacketSampler(100)
        assert s.expected_flow_survival(0) == 0.0
        assert s.expected_flow_survival(1) == pytest.approx(0.01)
        assert s.expected_flow_survival(10_000) == pytest.approx(1.0, abs=1e-4)
        with pytest.raises(ValueError):
            s.expected_flow_survival(-1)

    def test_empty_table(self):
        out = PacketSampler(10).apply(FlowTable.empty(), np.random.default_rng(0))
        assert len(out) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketSampler(0)


class TestBinTimeseries:
    def test_basic_binning(self):
        t = table([0, 1, 2, 10], [1] * 4, [2] * 4, [5, 5, 5, 7], [100] * 4)
        out = bin_timeseries(t, 0, 12, 4)
        np.testing.assert_allclose(out, [15, 0, 7])

    def test_bytes_weighting(self):
        t = table([0], [1], [2], [5], [999])
        out = bin_timeseries(t, 0, 1, 1, value="bytes")
        assert out[0] == 999

    def test_out_of_window_ignored(self):
        t = table([-1, 5, 100], [1] * 3, [2] * 3, [1] * 3, [1] * 3)
        out = bin_timeseries(t, 0, 10, 10)
        assert out[0] == 1

    def test_empty_table(self):
        np.testing.assert_allclose(bin_timeseries(FlowTable.empty(), 0, 10, 5), [0, 0])

    def test_validation(self):
        t = table([0], [1], [2], [1], [1])
        with pytest.raises(ValueError):
            bin_timeseries(t, 10, 0, 1)
        with pytest.raises(ValueError):
            bin_timeseries(t, 0, 10, 0)
        with pytest.raises(ValueError):
            bin_timeseries(t, 0, 10, 1, value="flows")

    def test_daily_sums(self):
        t = table([0, 86_400, 86_401], [1] * 3, [2] * 3, [3, 4, 5], [1] * 3)
        np.testing.assert_allclose(daily_packet_sums(t, 0, 2), [3, 9])
        with pytest.raises(ValueError):
            daily_packet_sums(t, 0, 0)


class TestPerDestinationStats:
    def test_unique_sources(self):
        t = table(
            [0, 0, 0, 0],
            src=[10, 10, 11, 12],
            dst=[1, 1, 1, 2],
            packets=[1] * 4,
            bytes_=[100] * 4,
        )
        stats = per_destination_stats(t)
        assert len(stats) == 2
        by_dst = dict(zip(stats.destinations.tolist(), stats.unique_sources.tolist()))
        assert by_dst == {1: 2, 2: 1}

    def test_peak_bps_uses_minute_bins(self):
        # dst 1: 60 MB in bin 0 and 6 MB in bin 1 -> peak = 60MB*8/60s = 8 Mbps.
        t = table(
            [0, 30, 70],
            src=[10, 11, 10],
            dst=[1, 1, 1],
            packets=[1, 1, 1],
            bytes_=[30_000_000, 30_000_000, 6_000_000],
        )
        stats = per_destination_stats(t, bin_seconds=60)
        assert stats.peak_bps[0] == pytest.approx(60_000_000 * 8 / 60)

    def test_max_sources_per_bin(self):
        # Three sources total but never more than two in the same minute.
        t = table(
            [0, 1, 70],
            src=[10, 11, 12],
            dst=[1, 1, 1],
            packets=[1] * 3,
            bytes_=[100] * 3,
        )
        stats = per_destination_stats(t, bin_seconds=60)
        assert stats.unique_sources[0] == 3
        assert stats.max_sources_per_bin[0] == 2

    def test_duplicate_src_in_bin_counted_once(self):
        t = table([0, 1], src=[10, 10], dst=[1, 1], packets=[1, 1], bytes_=[1, 1])
        stats = per_destination_stats(t, bin_seconds=60)
        assert stats.max_sources_per_bin[0] == 1

    def test_totals(self):
        t = table([0, 0], src=[10, 11], dst=[1, 1], packets=[5, 7], bytes_=[50, 70])
        stats = per_destination_stats(t)
        assert stats.total_packets[0] == 12
        assert stats.total_bytes[0] == 120

    def test_empty(self):
        stats = per_destination_stats(FlowTable.empty())
        assert len(stats) == 0

    def test_filter(self):
        t = table([0, 0], src=[10, 11], dst=[1, 2], packets=[1, 1], bytes_=[1, 1])
        stats = per_destination_stats(t)
        big = stats.filter(stats.destinations == 1)
        assert len(big) == 1
        with pytest.raises(ValueError):
            stats.filter(np.array([True]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 100), st.integers(1, 20), st.integers(1, 20))
    def test_invariants(self, n, n_src, n_dst):
        rng = np.random.default_rng(n * 1000 + n_src * 10 + n_dst)
        t = table(
            rng.uniform(0, 600, n),
            rng.integers(0, n_src, n),
            rng.integers(0, n_dst, n),
            rng.integers(1, 100, n),
            rng.integers(100, 10_000, n),
        )
        stats = per_destination_stats(t, bin_seconds=60)
        assert stats.total_packets.sum() == t.total_packets
        assert stats.total_bytes.sum() == t.total_bytes
        assert (stats.max_sources_per_bin <= stats.unique_sources).all()
        assert (stats.max_sources_per_bin >= 1).all()
        assert (stats.peak_bps > 0).all()


class TestPerDestinationTimebinned:
    def test_series_shape_and_sum(self):
        t = table([0, 30, 100], src=[1, 2, 3], dst=[9, 9, 9], packets=[1] * 3, bytes_=[10, 20, 40])
        series = per_destination_timebinned(t, 0, 120, 60)
        assert set(series) == {9}
        np.testing.assert_allclose(series[9], [30, 40])

    def test_empty(self):
        assert per_destination_timebinned(FlowTable.empty(), 0, 10, 5) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            per_destination_timebinned(FlowTable.empty(), 10, 0, 5)


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        n = 50
        t = table(
            rng.uniform(0, 100, n),
            rng.integers(0, 2**32, n),
            rng.integers(0, 2**32, n),
            rng.integers(1, 1000, n),
            rng.integers(100, 100_000, n),
        ).with_columns(src_asn=rng.integers(-1, 100, n), peer_asn=rng.integers(-1, 100, n))
        path = tmp_path / "flows.csv"
        assert write_flows_csv(t, path) == n
        t2 = read_flows_csv(path)
        for name in SCHEMA:
            np.testing.assert_array_equal(t[name], t2[name], err_msg=name)

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_flows_csv(FlowTable.empty(), path)
        assert len(read_flows_csv(path)) == 0

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            read_flows_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "nothing.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_flows_csv(path)
