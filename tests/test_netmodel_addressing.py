"""Tests for IPv4 addressing and prefix-preserving anonymization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel.addressing import (
    Prefix,
    PrefixAnonymizer,
    format_ip,
    parse_ip,
    random_ips_in_prefix,
)

ips = st.integers(0, 0xFFFFFFFF)


class TestParseFormat:
    @pytest.mark.parametrize(
        "text,value",
        [("0.0.0.0", 0), ("255.255.255.255", 0xFFFFFFFF), ("192.0.2.1", 0xC0000201)],
    )
    def test_known_values(self, text, value):
        assert parse_ip(text) == value
        assert format_ip(value) == text

    @given(ips)
    def test_roundtrip(self, value):
        assert parse_ip(format_ip(value)) == value

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_ip(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ip(1 << 32)


class TestPrefix:
    def test_parse_and_str(self):
        p = Prefix.parse("198.51.100.0/24")
        assert str(p) == "198.51.100.0/24"
        assert p.size == 256

    def test_contains(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(parse_ip("10.200.3.4"))
        assert not p.contains(parse_ip("11.0.0.0"))

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(parse_ip("10.0.0.1"), 24)

    def test_missing_length_rejected(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0")

    def test_address_at(self):
        p = Prefix.parse("192.0.2.0/24")
        assert format_ip(p.address_at(0)) == "192.0.2.0"
        assert format_ip(p.address_at(255)) == "192.0.2.255"
        with pytest.raises(ValueError):
            p.address_at(256)

    def test_subprefixes(self):
        p = Prefix.parse("10.0.0.0/14")
        subs = p.subprefixes(16)
        assert len(subs) == 4
        assert subs[0] == Prefix.parse("10.0.0.0/16")
        assert subs[-1] == Prefix.parse("10.3.0.0/16")

    def test_subprefixes_invalid(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/16").subprefixes(8)

    def test_zero_length_prefix(self):
        p = Prefix(0, 0)
        assert p.contains(parse_ip("203.0.113.9"))
        assert p.size == 1 << 32


class TestRandomIps:
    def test_all_inside_prefix(self):
        p = Prefix.parse("203.0.113.0/24")
        rng = np.random.default_rng(0)
        out = random_ips_in_prefix(p, rng, 500)
        assert all(p.contains(int(ip)) for ip in out)

    def test_unique_sampling(self):
        p = Prefix.parse("203.0.113.0/28")
        rng = np.random.default_rng(0)
        out = random_ips_in_prefix(p, rng, 16, unique=True)
        assert len(set(out.tolist())) == 16

    def test_unique_too_many_rejected(self):
        p = Prefix.parse("203.0.113.0/30")
        with pytest.raises(ValueError):
            random_ips_in_prefix(p, np.random.default_rng(0), 5, unique=True)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_ips_in_prefix(Prefix(0, 0), np.random.default_rng(0), -1)

    def test_deterministic(self):
        p = Prefix.parse("203.0.113.0/24")
        a = random_ips_in_prefix(p, np.random.default_rng(3), 10)
        b = random_ips_in_prefix(p, np.random.default_rng(3), 10)
        np.testing.assert_array_equal(a, b)


class TestPrefixAnonymizer:
    def test_deterministic(self):
        anon = PrefixAnonymizer("key")
        ip = parse_ip("192.0.2.55")
        assert anon.anonymize(ip) == anon.anonymize(ip)

    def test_key_dependence(self):
        ip = parse_ip("192.0.2.55")
        assert PrefixAnonymizer("k1").anonymize(ip) != PrefixAnonymizer("k2").anonymize(ip)

    @settings(max_examples=30)
    @given(ips, ips)
    def test_prefix_preservation(self, a, b):
        """Shared k-bit prefixes survive anonymization with exactly length k."""
        anon = PrefixAnonymizer("shared-key")
        ea, eb = anon.anonymize(a), anon.anonymize(b)

        def common_prefix_len(x, y):
            diff = x ^ y
            return 32 if diff == 0 else 32 - diff.bit_length()

        assert common_prefix_len(ea, eb) >= common_prefix_len(a, b)

    def test_bijective_on_subnet(self):
        anon = PrefixAnonymizer("key")
        base = parse_ip("198.51.100.0")
        mapped = {anon.anonymize(base + i) for i in range(256)}
        assert len(mapped) == 256

    def test_array_matches_scalar(self):
        anon = PrefixAnonymizer("key")
        arr = np.array([parse_ip("192.0.2.1"), parse_ip("10.1.2.3")], dtype=np.uint32)
        out = anon.anonymize_array(arr)
        assert int(out[0]) == anon.anonymize(int(arr[0]))
        assert int(out[1]) == anon.anonymize(int(arr[1]))

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            PrefixAnonymizer("")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PrefixAnonymizer("key").anonymize(1 << 32)
