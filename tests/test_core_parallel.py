"""Parallel day executor, merge protocol, content hash, and day cache."""

import pickle

import numpy as np
import pytest

from repro.booter.market import MarketConfig
from repro.core.parallel import (
    DayResultCache,
    DaySpec,
    day_attack_tables,
    day_cache,
    day_events,
    observed_days,
    resolve_jobs,
)
from repro.core.pipeline import TrafficSelector, collect_daily_port_series, collect_streaming
from repro.core.streaming import StreamingAnalyzer
from repro.flows.sketch import PerKeyCardinality
from repro.netmodel.topology import TopologyConfig
from repro.scenario import Scenario, ScenarioConfig

SELECTORS = [
    TrafficSelector("ntp_to", 123, "to_reflectors"),
    TrafficSelector("ntp_from", 123, "from_reflectors"),
]


def _config(**overrides) -> ScenarioConfig:
    params = dict(
        scale=0.1,
        topology=TopologyConfig(n_tier1=3, n_tier2=10, n_stub=60),
        market=MarketConfig(daily_attacks=60.0, n_victims=300),
        pool_sizes=(
            ("ntp", 1500),
            ("dns", 1000),
            ("cldap", 400),
            ("memcached", 200),
            ("ssdp", 250),
        ),
    )
    params.update(overrides)
    return ScenarioConfig(**params)


@pytest.fixture(scope="module")
def scenario():
    return Scenario(_config())


class TestParallelDeterminism:
    def test_port_series_jobs4_bit_identical(self, scenario):
        serial = collect_daily_port_series(scenario, "ixp", SELECTORS, day_range=(40, 45))
        parallel = collect_daily_port_series(
            scenario, "ixp", SELECTORS, day_range=(40, 45), jobs=4
        )
        np.testing.assert_array_equal(serial.days, parallel.days)
        for name in ("ntp_to", "ntp_from"):
            np.testing.assert_array_equal(serial.get(name), parallel.get(name))

    def test_streaming_jobs3_bit_identical(self, scenario):
        def run(jobs):
            analyzer = StreamingAnalyzer(
                SELECTORS, n_days=scenario.config.n_days, sampling_factor=10_000.0
            )
            return collect_streaming(
                scenario, "ixp", analyzer, day_range=(40, 45), jobs=jobs
            )

        serial, parallel = run(1), run(3)
        for name in ("ntp_to", "ntp_from"):
            np.testing.assert_array_equal(
                serial.daily_series(name), parallel.daily_series(name)
            )
        np.testing.assert_array_equal(serial.hourly_attacks, parallel.hourly_attacks)
        a, b = serial.victim_stats(), parallel.victim_stats()
        np.testing.assert_array_equal(a.destinations, b.destinations)
        np.testing.assert_array_equal(a.peak_bps, b.peak_bps)
        np.testing.assert_array_equal(
            a.unique_sources_estimate, b.unique_sources_estimate
        )
        np.testing.assert_array_equal(a.total_packets, b.total_packets)

    def test_hook_requires_serial(self, scenario):
        with pytest.raises(ValueError, match="per_day_hook"):
            collect_daily_port_series(
                scenario,
                "ixp",
                SELECTORS,
                day_range=(40, 42),
                per_day_hook=lambda day, table: None,
                jobs=2,
            )

    def test_parallel_streaming_needs_merge_protocol(self, scenario):
        class Bare:
            def ingest_day(self, day, table):
                pass

        with pytest.raises(TypeError, match="merge"):
            collect_streaming(scenario, "ixp", Bare(), day_range=(40, 44), jobs=2)

    def test_day_spec_pickles(self, scenario):
        spec = DaySpec(scenario.config, 40, "ixp", True, scenario.takedown)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestMergeProtocol:
    def test_merge_of_halves_equals_one_pass(self, scenario):
        tables = {
            day: scenario.observe_day("ixp", scenario.day_traffic(day))
            for day in range(40, 44)
        }

        def fresh():
            return StreamingAnalyzer(
                SELECTORS, n_days=scenario.config.n_days, sampling_factor=10_000.0
            )

        one_pass = fresh()
        for day, table in tables.items():
            one_pass.ingest_day(day, table)

        left, right = fresh(), fresh()
        for day in (40, 41):
            left.ingest_day(day, tables[day])
        for day in (42, 43):
            right.ingest_day(day, tables[day])
        merged = left.merge(right)
        assert merged is left

        for name in ("ntp_to", "ntp_from"):
            np.testing.assert_array_equal(
                one_pass.daily_series(name), merged.daily_series(name)
            )
        np.testing.assert_array_equal(one_pass.hourly_attacks, merged.hourly_attacks)
        a, b = one_pass.victim_stats(), merged.victim_stats()
        np.testing.assert_array_equal(a.destinations, b.destinations)
        np.testing.assert_array_equal(a.peak_bps, b.peak_bps)
        np.testing.assert_array_equal(
            a.unique_sources_estimate, b.unique_sources_estimate
        )
        np.testing.assert_array_equal(a.total_packets, b.total_packets)

    def test_merge_rejects_overlap_and_mismatch(self):
        a = StreamingAnalyzer(SELECTORS, n_days=10)
        b = StreamingAnalyzer(SELECTORS, n_days=10)
        from repro.flows.records import FlowTable

        a.ingest_day(1, FlowTable.empty())
        b.ingest_day(1, FlowTable.empty())
        with pytest.raises(ValueError, match="both sides"):
            a.merge(b)
        with pytest.raises(ValueError, match="n_days"):
            a.merge(StreamingAnalyzer(SELECTORS, n_days=5))
        with pytest.raises(ValueError, match="selectors"):
            a.merge(StreamingAnalyzer(SELECTORS[:1], n_days=10))
        with pytest.raises(ValueError, match="sampling"):
            a.merge(StreamingAnalyzer(SELECTORS, n_days=10, sampling_factor=2.0))

    def test_clone_empty_matches_parameters(self):
        a = StreamingAnalyzer(SELECTORS, n_days=7, sampling_factor=3.0, sketch_precision=9)
        clone = a.clone_empty()
        assert clone.n_days == 7
        assert clone.sampling_factor == 3.0
        assert clone._sources.precision == 9
        assert not clone._days_seen

    def test_per_key_cardinality_merge_of_halves(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 8, size=4000)
        items = rng.integers(0, 50_000, size=4000)

        one_pass = PerKeyCardinality(precision=10)
        one_pass.update(keys, items)

        left, right = PerKeyCardinality(precision=10), PerKeyCardinality(precision=10)
        left.update(keys[:2000], items[:2000])
        right.update(keys[2000:], items[2000:])
        merged = left.merge(right)

        assert merged.keys() == one_pass.keys()
        for key in one_pass.keys():
            assert merged.estimate(key) == one_pass.estimate(key)

    def test_per_key_cardinality_copy_is_deep(self):
        counter = PerKeyCardinality(precision=8)
        counter.update(np.array([1, 1, 2]), np.array([10, 11, 12]))
        clone = counter.copy()
        clone.update(np.array([1]), np.array([99]))
        assert clone.estimate(1) >= counter.estimate(1)
        assert counter.estimate(2) == clone.estimate(2)


class TestContentHash:
    def test_stable_and_deterministic(self):
        a, b = _config(), _config()
        assert a.content_hash() == b.content_hash()
        assert len(a.content_hash()) == 64

    def test_seed_changes_hash(self):
        assert _config(seed=1).content_hash() != _config(seed=2).content_hash()

    def test_any_field_changes_hash(self):
        assert _config().content_hash() != _config(scale=0.2).content_hash()


class TestDayResultCache:
    def test_lru_eviction_and_stats(self):
        cache = DayResultCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh 'a'
        cache.put(("c",), 3)  # evicts 'b'
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 3 and stats["misses"] == 1

    def test_pipeline_reuses_cached_days(self, scenario):
        cache = day_cache()
        cache.clear()
        first = collect_daily_port_series(
            scenario, "tier2", SELECTORS, day_range=(40, 43), cache=True
        )
        hits_before = cache.stats()["hits"]
        second = collect_daily_port_series(
            scenario, "tier2", SELECTORS, day_range=(40, 43), cache=True
        )
        assert cache.stats()["hits"] > hits_before
        for name in ("ntp_to", "ntp_from"):
            np.testing.assert_array_equal(first.get(name), second.get(name))

    def test_observed_cache_shared_across_reductions(self, scenario):
        cache = day_cache()
        cache.clear()
        tables = observed_days(scenario, "tier2", [40, 41], cache=True)
        hits_before = cache.stats()["hits"]
        series = collect_daily_port_series(
            scenario, "tier2", SELECTORS, day_range=(40, 42), cache=True
        )
        # Days 40/41 derive from the cached observed tables.
        assert cache.stats()["hits"] >= hits_before + 2
        for i, table in enumerate(tables):
            assert series.get("ntp_to")[i] == SELECTORS[0].packets(table)

    def test_streaming_uses_cached_observed_days(self, scenario):
        cache = day_cache()
        cache.clear()
        observed_days(scenario, "tier2", [40, 41, 42], cache=True)
        analyzer = StreamingAnalyzer(
            SELECTORS, n_days=scenario.config.n_days, sampling_factor=1_000.0
        )
        hits_before = cache.stats()["hits"]
        collect_streaming(scenario, "tier2", analyzer, day_range=(40, 43), cache=True)
        assert cache.stats()["hits"] >= hits_before + 3
        fresh = StreamingAnalyzer(
            SELECTORS, n_days=scenario.config.n_days, sampling_factor=1_000.0
        )
        collect_streaming(scenario, "tier2", fresh, day_range=(40, 43))
        for name in ("ntp_to", "ntp_from"):
            np.testing.assert_array_equal(
                analyzer.daily_series(name), fresh.daily_series(name)
            )

    def test_day_events_cached_and_identical(self, scenario):
        cache = day_cache()
        cache.clear()
        events = day_events(scenario, 40, cache=True)
        truth = scenario.day_traffic(40).events
        assert len(events) == len(truth)
        assert [e.victim_ip for e in events] == [e.victim_ip for e in truth]
        again = day_events(scenario, 40, cache=True)
        assert again is events
        assert cache.stats()["hits"] == 1

    def test_day_attack_tables_match_day_traffic(self, scenario):
        tables = day_attack_tables(scenario, [40], cache=True, jobs=2)
        truth = scenario.day_traffic(40).attack
        np.testing.assert_array_equal(tables[0]["packets"], truth["packets"])
        np.testing.assert_array_equal(tables[0]["dst_ip"], truth["dst_ip"])


class TestDayResultCacheEdgeCases:
    def test_eviction_exactly_at_max_entries_boundary(self):
        cache = DayResultCache(max_entries=3)
        for i in range(3):
            cache.put((i,), i)
        # Exactly full: no eviction yet.
        assert len(cache) == 3
        assert cache.evictions == 0
        cache.put((3,), 3)  # one past the boundary evicts exactly one (the LRU)
        assert len(cache) == 3
        assert cache.evictions == 1
        assert cache.get((0,)) is None
        assert cache.get((3,)) == 3

    def test_refreshing_existing_key_never_evicts(self):
        cache = DayResultCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("a",), 10)  # overwrite, still 2 entries
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get(("a",)) == 10

    def test_resident_bytes_tracks_puts_and_evictions(self):
        cache = DayResultCache(max_entries=2)
        one_kb = np.zeros(1024, dtype=np.uint8)
        cache.put(("a",), one_kb)
        cache.put(("b",), one_kb)
        assert cache.resident_bytes == 2048
        cache.put(("c",), one_kb)  # evicts 'a'
        assert cache.resident_bytes == 2048
        cache.put(("b",), np.zeros(512, dtype=np.uint8))  # overwrite shrinks
        assert cache.resident_bytes == 1536
        assert cache.stats()["resident_bytes"] == 1536
        cache.clear()
        assert cache.resident_bytes == 0

    def test_clear_mid_run_is_correct_just_slower(self, scenario):
        cache = day_cache()
        cache.clear()
        first = collect_daily_port_series(
            scenario, "tier2", SELECTORS, day_range=(40, 43), cache=True
        )
        cache.clear()  # mid-run invalidation: everything regenerates
        assert len(cache) == 0 and cache.stats()["hits"] == 0
        second = collect_daily_port_series(
            scenario, "tier2", SELECTORS, day_range=(40, 43), cache=True
        )
        for name in ("ntp_to", "ntp_from"):
            np.testing.assert_array_equal(first.get(name), second.get(name))
        cache.clear()

    def test_cache_disabled_vs_enabled_bit_identity(self, scenario):
        day_cache().clear()
        plain = collect_daily_port_series(
            scenario, "tier2", SELECTORS, day_range=(40, 44), cache=False
        )
        warm = collect_daily_port_series(
            scenario, "tier2", SELECTORS, day_range=(40, 44), cache=True
        )
        served = collect_daily_port_series(
            scenario, "tier2", SELECTORS, day_range=(40, 44), cache=True
        )
        for name in ("ntp_to", "ntp_from"):
            np.testing.assert_array_equal(plain.get(name), warm.get(name))
            np.testing.assert_array_equal(plain.get(name), served.get(name))
        day_cache().clear()

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            DayResultCache(max_entries=0)

    def test_resident_bytes_consistent_after_fill_past_capacity(self):
        """Accounting regression: filling far past max_entries, with
        overwrites mixed in, must keep resident_bytes exactly equal to
        the sum of _approx_nbytes over live entries — and never negative."""
        from repro.core.parallel import _approx_nbytes

        cache = DayResultCache(max_entries=4)
        rng = np.random.default_rng(0)
        for i in range(25):
            value = np.zeros(int(rng.integers(1, 2000)), dtype=np.uint8)
            cache.put((i % 7,), value)  # i%7 > max_entries forces evictions
            assert cache.resident_bytes >= 0
            expected = sum(_approx_nbytes(v) for v in cache._data.values())
            assert cache.resident_bytes == expected
            assert cache.stats()["resident_bytes"] == expected
        assert cache.evictions > 0
        assert len(cache) == 4


class TestJobsValidation:
    def test_negative_jobs_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match=r"got -3.*negative worker count"):
            resolve_jobs(-3)

    def test_negative_jobs_never_reach_the_pool(self, scenario):
        # The ValueError comes from resolve_jobs, not from
        # ProcessPoolExecutor's own max_workers check.
        with pytest.raises(ValueError, match="worker count"):
            observed_days(scenario, "ixp", [40, 41], jobs=-2)
        with pytest.raises(ValueError, match="worker count"):
            collect_daily_port_series(
                scenario, "ixp", SELECTORS, day_range=(40, 42), jobs=-2
            )

    def test_experiment_config_rejects_negative_jobs(self):
        from repro.experiments.base import ExperimentConfig

        with pytest.raises(ValueError, match="jobs"):
            ExperimentConfig(jobs=-1)


class TestShmTransportIntegration:
    def test_pool_results_via_shm_bit_identical(self, scenario):
        from repro.flows.shm import set_transport_threshold, shm_available

        if not shm_available():
            pytest.skip("shared memory unavailable")
        serial = observed_days(scenario, "ixp", [40, 41, 42], jobs=1)
        previous = set_transport_threshold(1)  # force every table through shm
        try:
            via_shm = observed_days(scenario, "ixp", [40, 41, 42], jobs=2)
        finally:
            set_transport_threshold(previous)
        from repro.flows.records import SCHEMA

        for a, b in zip(serial, via_shm):
            assert len(a) == len(b)
            for name in SCHEMA:
                np.testing.assert_array_equal(a[name], b[name], err_msg=name)

    def test_shm_counters_recorded_under_enabled_registry(self, scenario):
        from repro.flows.shm import set_transport_threshold, shm_available
        from repro.obs import MetricsRegistry, use_metrics

        if not shm_available():
            pytest.skip("shared memory unavailable")
        registry = MetricsRegistry(enabled=True)
        previous = set_transport_threshold(1)
        try:
            with use_metrics(registry):
                observed_days(scenario, "ixp", [40, 41], jobs=2)
        finally:
            set_transport_threshold(previous)
        assert registry.counter("shm.blocks") == 2
        assert registry.counter("shm.bytes") > 0

    def test_disabled_lane_uses_pipe(self, scenario):
        from repro.flows.shm import set_transport_threshold
        from repro.obs import MetricsRegistry, use_metrics

        registry = MetricsRegistry(enabled=True)
        previous = set_transport_threshold(-1)
        try:
            with use_metrics(registry):
                observed_days(scenario, "ixp", [40, 41], jobs=2)
        finally:
            set_transport_threshold(previous)
        assert registry.counter("shm.blocks") == 0
        assert registry.counter("pool.pipe_bytes") > 0


class TestDiskTierIntegration:
    def test_disk_warm_run_bit_identical_with_equal_counters(self, scenario, tmp_path):
        from repro.core.diskcache import DiskDayCache
        from repro.flows.records import SCHEMA
        from repro.obs import MetricsRegistry, use_metrics
        from repro.obs.runledger import counter_digest

        cache = day_cache()
        cache.clear()
        disk = DiskDayCache(tmp_path / "day_cache")
        cache.attach_disk(disk)
        try:
            cold_registry = MetricsRegistry(enabled=True)
            with use_metrics(cold_registry):
                cold = observed_days(scenario, "tier2", [40, 41, 42], cache=True)
            assert disk.puts == 3

            # Simulate a fresh process: memory gone, disk survives.
            cache.clear()
            cache.attach_disk(disk)
            warm_registry = MetricsRegistry(enabled=True)
            with use_metrics(warm_registry):
                warm = observed_days(scenario, "tier2", [40, 41, 42], cache=True)
            assert disk.hits == 3

            for a, b in zip(cold, warm):
                for name in SCHEMA:
                    np.testing.assert_array_equal(a[name], b[name], err_msg=name)
            assert counter_digest(cold_registry.counters) == counter_digest(
                warm_registry.counters
            )
        finally:
            cache.attach_disk(None)
            cache.clear()

    def test_ports_reduction_persists_via_json_lane(self, scenario, tmp_path):
        from repro.core.diskcache import DiskDayCache
        from repro.core.parallel import daily_port_counts

        cache = day_cache()
        cache.clear()
        disk = DiskDayCache(tmp_path / "day_cache")
        cache.attach_disk(disk)
        try:
            cold = daily_port_counts(
                scenario, "tier2", SELECTORS, [40, 41], jobs=2, cache=True
            )
            assert disk.puts >= 2
            cache.clear()
            cache.attach_disk(disk)
            warm = daily_port_counts(
                scenario, "tier2", SELECTORS, [40, 41], jobs=2, cache=True
            )
            assert disk.hits >= 2
            assert warm == cold
        finally:
            cache.attach_disk(None)
            cache.clear()


class TestPerDayHook:
    def test_parallel_hook_error_names_call_site(self, scenario):
        def my_audit_hook(day, table):
            pass

        with pytest.raises(ValueError) as excinfo:
            collect_daily_port_series(
                scenario,
                "ixp",
                SELECTORS,
                day_range=(40, 42),
                per_day_hook=my_audit_hook,
                jobs=3,
            )
        message = str(excinfo.value)
        assert "collect_daily_port_series" in message
        assert "my_audit_hook" in message
        assert "jobs=3" in message
        assert "jobs=1" in message  # the fix is spelled out

    def test_serial_hook_sees_every_observed_day(self, scenario):
        seen = {}
        series = collect_daily_port_series(
            scenario,
            "ixp",
            SELECTORS,
            day_range=(40, 43),
            per_day_hook=lambda day, table: seen.setdefault(day, len(table)),
            jobs=1,
        )
        assert sorted(seen) == [40, 41, 42]
        # The hook receives the same observed tables the series is built
        # from, and running it does not perturb the series itself.
        for day in seen:
            assert seen[day] == len(scenario.observe_day("ixp", scenario.day_traffic(day)))
        plain = collect_daily_port_series(scenario, "ixp", SELECTORS, day_range=(40, 43))
        for name in ("ntp_to", "ntp_from"):
            np.testing.assert_array_equal(series.get(name), plain.get(name))


class TestCacheThreadSafety:
    """The caches are mutated from server worker threads concurrently.

    The serving plane resolves requests in ``asyncio.to_thread`` workers
    while pool callbacks insert results; before the cache grew its lock,
    concurrent ``move_to_end``/``popitem`` could corrupt the LRU's
    linked list or desynchronize ``resident_bytes`` from the entries.
    """

    N_THREADS = 8
    OPS_PER_THREAD = 400

    def test_concurrent_put_get_keeps_lru_invariants(self):
        import threading

        cache = DayResultCache(max_entries=32)
        errors = []

        def worker(worker_id: int) -> None:
            rng = np.random.default_rng(worker_id)
            try:
                for op in range(self.OPS_PER_THREAD):
                    key = ("k", int(rng.integers(0, 64)))
                    if op % 3 == 0:
                        cache.put(key, np.ones(int(rng.integers(1, 128))))
                    else:
                        cache.get(key)
                    if op % 50 == 0:
                        cache.stats()
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # Bounded, and the byte tally matches the surviving entries
        # exactly — a lost update would leave it drifted.
        assert len(cache) <= 32
        assert cache.resident_bytes == sum(cache._sizes.values())
        assert set(cache._data) == set(cache._sizes)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == pytest.approx(
            self.N_THREADS * self.OPS_PER_THREAD * 2 / 3, rel=0.02
        )

    def test_concurrent_disk_tier_put_get(self, tmp_path):
        import threading

        from repro.core.diskcache import DiskDayCache

        cache = DayResultCache(max_entries=16)
        cache.attach_disk(DiskDayCache(tmp_path, max_bytes=1 << 20))
        errors = []

        def worker(worker_id: int) -> None:
            rng = np.random.default_rng(100 + worker_id)
            try:
                for _ in range(100):
                    key = ("d", int(rng.integers(0, 24)))
                    # JSON-lane values so the disk tier accepts them.
                    cache.put(key, ({"count": int(rng.integers(0, 10))}, None))
                    cache.get(key)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        disk = cache.disk
        assert disk.resident_bytes == sum(disk._index.values())
        assert len(disk) <= 24
        cache.attach_disk(None)
