"""Tests for reflector-fingerprint attribution."""

import numpy as np
import pytest

from repro.core.attribution import (
    AttributionOutcome,
    BooterFingerprint,
    ReflectorAttributor,
)


def fp(name, ips, day=0):
    return BooterFingerprint(name, np.asarray(ips, dtype=np.uint32), enrolled_day=day)


class TestFingerprint:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fp("A", [])


class TestAttributor:
    @pytest.fixture
    def attributor(self):
        return ReflectorAttributor(
            [fp("A", range(0, 100)), fp("B", range(100, 200)), fp("C", range(200, 220))],
            min_score=0.2,
        )

    def test_exact_match(self, attributor):
        outcome = attributor.attribute(np.arange(0, 100))
        assert outcome.predicted == "A"
        assert outcome.score == 1.0

    def test_partial_overlap_still_attributed(self, attributor):
        # 70 of A's reflectors plus 30 unknown ones.
        observed = np.concatenate([np.arange(0, 70), np.arange(1000, 1030)])
        outcome = attributor.attribute(observed)
        assert outcome.predicted == "A"
        assert 0.2 < outcome.score < 1.0

    def test_unknown_set_unattributed(self, attributor):
        outcome = attributor.attribute(np.arange(5000, 5100))
        assert not outcome.attributed
        assert outcome.predicted is None

    def test_scores_for_all_booters(self, attributor):
        outcome = attributor.attribute(np.arange(0, 100))
        assert set(outcome.scores) == {"A", "B", "C"}

    def test_accuracy_and_coverage(self, attributor):
        attacks = [
            ("A", np.arange(0, 100)),       # perfect
            ("B", np.arange(100, 160)),     # partial -> correct
            ("C", np.arange(4000, 4100)),   # churned away -> unattributed
        ]
        accuracy, coverage = attributor.accuracy(attacks)
        assert accuracy == 1.0
        assert coverage == pytest.approx(2 / 3)

    def test_wrong_attribution_counted(self):
        attributor = ReflectorAttributor([fp("A", range(0, 100))], min_score=0.1)
        accuracy, coverage = attributor.accuracy([("B", np.arange(0, 50))])
        assert coverage == 1.0
        assert accuracy == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReflectorAttributor([])
        with pytest.raises(ValueError):
            ReflectorAttributor([fp("A", [1]), fp("A", [2])])
        with pytest.raises(ValueError):
            ReflectorAttributor([fp("A", [1])], min_score=2.0)
        attributor = ReflectorAttributor([fp("A", [1])])
        with pytest.raises(ValueError):
            attributor.attribute(np.array([]))
        with pytest.raises(ValueError):
            attributor.accuracy([])


class TestAttributionExperiment:
    def test_decay_shape(self):
        from repro.experiments import ExperimentConfig, run_experiment

        result = run_experiment("attribution", ExperimentConfig())
        decay = result.get("decay")
        # Fresh fingerprints attribute perfectly; old ones lose coverage.
        assert decay[0] == (1.0, 1.0)
        assert decay[90][1] < decay[0][1]
        # A wholesale list replacement is unattributable.
        assert not result.get("replacement_outcome").attributed
