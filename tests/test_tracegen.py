"""Tests for the trace-export CLI."""

import numpy as np
import pytest

from repro.flows.binio import read_flows_binary
from repro.flows.io import read_flows_csv
from repro.tracegen import generate_trace, main


class TestGenerateTrace:
    def test_basic_generation(self):
        table = generate_trace("tier2", (40, 41))
        assert len(table) > 0
        # Sorted by time, inside the requested day.
        times = table["time"]
        assert (np.diff(times) >= 0).all()
        assert times.min() >= 40 * 86400
        assert times.max() < 41 * 86400

    def test_kind_filter(self):
        scans_only = generate_trace("tier2", (40, 41), kinds=("scan",))
        everything = generate_trace("tier2", (40, 41))
        assert 0 < len(scans_only) < len(everything)

    def test_deterministic(self):
        a = generate_trace("tier2", (40, 41), seed=5)
        b = generate_trace("tier2", (40, 41), seed=5)
        assert a.total_packets == b.total_packets

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            generate_trace("ixp", (40, 40))

    def test_unknown_vantage(self):
        with pytest.raises(KeyError):
            generate_trace("tier9", (40, 41))


class TestCli:
    def test_binary_output(self, tmp_path, capsys):
        out = tmp_path / "trace.bin"
        assert main(["--vantage", "tier2", "--days", "40", "41", "--out", str(out)]) == 0
        # Status goes through logging to stderr, keeping stdout pipeable.
        assert "wrote" in capsys.readouterr().err
        table = read_flows_binary(out)
        assert len(table) > 0

    def test_csv_output(self, tmp_path):
        out = tmp_path / "trace.csv"
        code = main(
            ["--vantage", "tier2", "--days", "40", "41", "--format", "csv",
             "--out", str(out), "--kinds", "scan"]
        )
        assert code == 0
        table = read_flows_csv(out)
        assert len(table) > 0

    def test_bad_range_errors(self, tmp_path, capsys):
        out = tmp_path / "x.bin"
        assert main(["--days", "40", "40", "--out", str(out)]) == 2
        assert "error" in capsys.readouterr().err

    def test_config_manifest(self, tmp_path):
        from repro.booter.market import MarketConfig
        from repro.netmodel.topology import TopologyConfig
        from repro.scenario import ScenarioConfig, save_config

        manifest = tmp_path / "world.json"
        save_config(
            ScenarioConfig(
                seed=3,
                scale=0.05,
                topology=TopologyConfig(n_tier1=2, n_tier2=6, n_stub=30),
                market=MarketConfig(daily_attacks=40.0, n_victims=150),
                pool_sizes=(("ntp", 500), ("dns", 300), ("cldap", 150), ("memcached", 80), ("ssdp", 100)),
            ),
            manifest,
        )
        out = tmp_path / "trace.bin"
        code = main(
            ["--vantage", "tier2", "--days", "40", "41", "--config", str(manifest),
             "--out", str(out)]
        )
        assert code == 0
        assert len(read_flows_binary(out)) > 0

    def test_missing_config_file(self, tmp_path, capsys):
        out = tmp_path / "x.bin"
        code = main(["--config", str(tmp_path / "nope.json"), "--out", str(out)])
        assert code == 2
