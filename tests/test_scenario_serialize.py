"""Tests for scenario-config serialization."""

import json

import pytest

from repro.booter.market import MarketConfig
from repro.netmodel.topology import TopologyConfig
from repro.scenario import Scenario, ScenarioConfig
from repro.scenario.serialize import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)


def custom_config():
    return ScenarioConfig(
        seed=99,
        scale=0.25,
        topology=TopologyConfig(n_tier1=4, n_tier2=9, n_stub=55),
        market=MarketConfig(daily_attacks=33.0, n_victims=222),
        pool_sizes=(("ntp", 1234), ("dns", 567), ("cldap", 200), ("memcached", 100), ("ssdp", 150)),
        ixp_sampling=5000,
    )


class TestRoundtrip:
    def test_default_config(self):
        config = ScenarioConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_custom_config(self):
        config = custom_config()
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert rebuilt.topology.n_tier2 == 9
        assert dict(rebuilt.pool_sizes)["ntp"] == 1234

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "scenario.json"
        config = custom_config()
        save_config(config, path)
        assert load_config(path) == config
        # And it's honest JSON a human can read/diff.
        data = json.loads(path.read_text())
        assert data["seed"] == 99
        assert data["market"]["daily_attacks"] == 33.0
        assert data["pool_sizes"]["ntp"] == 1234

    def test_partial_dict_uses_defaults(self):
        config = config_from_dict({"seed": 7, "scale": 0.5})
        assert config.seed == 7
        assert config.n_days == ScenarioConfig().n_days

    def test_rebuilt_config_builds_identical_world(self):
        config = custom_config()
        rebuilt = config_from_dict(config_to_dict(config))
        a = Scenario(config)
        b = Scenario(rebuilt)
        ta = a.day_traffic(40)
        tb = b.day_traffic(40)
        assert ta.attack.total_packets == tb.attack.total_packets
        assert len(ta.events) == len(tb.events)


class TestValidation:
    def test_unknown_top_level_field(self):
        with pytest.raises(ValueError, match="unknown fields"):
            config_from_dict({"seed": 1, "turbo": True})

    def test_unknown_nested_field(self):
        with pytest.raises(ValueError, match="unknown fields"):
            config_from_dict({"market": {"daily_attacks": 5.0, "bogus": 1}})

    def test_pair_field_must_be_object(self):
        with pytest.raises(ValueError, match="object"):
            config_from_dict({"pool_sizes": [["ntp", 100]]})

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValueError):
            config_from_dict({"scale": 0.0})
