"""Shared pytest configuration for the test suite."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current outputs "
        "instead of comparing against them (use after an intentional "
        "behaviour change; commit the refreshed files)",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")
