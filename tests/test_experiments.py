"""End-to-end tests of the experiment drivers.

Each experiment runs once (module-scoped fixtures) at the small preset;
assertions check the paper's *shape* conclusions: orderings, significance
outcomes, and approximate ratios.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.registry import EXPERIMENTS, get_experiment

CFG = ExperimentConfig(preset="small", seed=2018)


@pytest.fixture(scope="module")
def table1():
    return run_experiment("table1", CFG)


@pytest.fixture(scope="module")
def fig1a():
    return run_experiment("fig1a", CFG)


@pytest.fixture(scope="module")
def fig1b():
    return run_experiment("fig1b", CFG)


@pytest.fixture(scope="module")
def fig1c():
    return run_experiment("fig1c", CFG)


@pytest.fixture(scope="module")
def fig2a():
    return run_experiment("fig2a", CFG)


@pytest.fixture(scope="module")
def fig3():
    return run_experiment("fig3", CFG)


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "table1", "fig1a", "fig1b", "fig1c", "fig2a", "fig2b", "fig2c",
            "fig3", "fig4", "fig5", "selfattack", "landscape",
            # Extensions (the paper's stated future work + related work).
            "econ", "market", "whatif", "attribution", "honeypot", "victimization",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_invalid_preset(self):
        with pytest.raises(ValueError):
            ExperimentConfig(preset="giant")


class TestTable1(object):
    def test_rows(self, table1):
        rows = table1.get("rows")
        assert [r["booter"] for r in rows] == ["A", "B", "C", "D"]
        assert table1.get("seized") == ["A", "B"]

    def test_render_contains_table(self, table1):
        out = table1.render()
        assert "$178.84" in out
        assert "paper" in out


class TestFig1a:
    def test_ten_runs(self, fig1a):
        assert len(fig1a.get("measurements")) == 10

    def test_peak_in_paper_band(self, fig1a):
        summary = fig1a.get("summary")
        assert 4000 < summary.peak_mbps < 12_000  # paper: 7078 Mbps

    def test_transit_dominates(self, fig1a):
        summary = fig1a.get("summary")
        assert summary.mean_transit_share > 0.6  # paper: 80.81%

    def test_no_transit_increases_peers(self, fig1a):
        assert fig1a.get("mean_peers_without_transit") > fig1a.get("mean_peers_with_transit")

    def test_no_transit_reduces_volume(self, fig1a):
        ms = fig1a.get("measurements")
        assert (
            ms["booter A NTP (no transit)"].mean_bps
            < 0.8 * ms["booter A NTP"].mean_bps
        )

    def test_cldap_uses_most_reflectors(self, fig1a):
        ms = fig1a.get("measurements")
        cldap = ms["booter B CLDAP"].n_reflectors
        ntp = ms["booter B NTP 1"].n_reflectors
        assert cldap > 2 * ntp  # paper: 3519 vs ~346

    def test_scatter_points_positive(self, fig1a):
        for series in fig1a.get("scatter").values():
            assert (series["mbps"] > 0).all()
            assert series["reflectors"].size == series["mbps"].size


class TestFig1b:
    def test_vip_ntp_saturates_and_flaps(self, fig1b):
        ntp = fig1b.get("ntp")
        assert ntp.peak_offered_bps > 15e9  # paper: ~20 Gbps
        assert ntp.flapped()

    def test_memcached_around_10g_no_flap(self, fig1b):
        mc = fig1b.get("memcached")
        assert 6e9 < mc.peak_offered_bps < 16e9
        assert not mc.flapped()

    def test_flap_dropout_visible_in_series(self, fig1b):
        series = fig1b.get("ntp_series_gbps")
        # During the flap only peering traffic arrives: a clear dip.
        assert series.min() < 0.5 * series.max()

    def test_far_below_advertised(self, fig1b):
        ntp = fig1b.get("ntp")
        assert ntp.peak_offered_bps / 1e9 < 0.5 * 80  # promised 80-100 Gbps


class TestFig1c:
    def test_within_booter_exceeds_cross_booter(self, fig1c):
        assert fig1c.get("stable_churn_overlap") > 2 * fig1c.get("cross_booter_overlap")

    def test_replacement_breaks_overlap(self, fig1c):
        assert fig1c.get("replacement_overlap") < 0.3
        assert fig1c.get("replacement_overlap") < fig1c.get("stable_churn_overlap")

    def test_same_day_nearly_identical(self, fig1c):
        assert fig1c.get("same_day_overlap") > 0.9

    def test_vip_uses_same_set(self, fig1c):
        assert fig1c.get("vip_nonvip_overlap") == pytest.approx(1.0)

    def test_small_fraction_of_pool(self, fig1c):
        om = fig1c.get("overlap")
        assert om.matrix.shape == (16, 16)
        np.testing.assert_allclose(np.diag(om.matrix), 1.0)


class TestFig2a:
    def test_bimodal_split_near_half(self, fig2a):
        frac = fig2a.get("frac_below_200")
        assert 0.3 < frac < 0.85  # paper: 54%

    def test_large_mode_is_monlist_sized(self, fig2a):
        sizes = fig2a.get("sizes")
        large = sizes[sizes > 400]
        assert large.size > 0
        assert np.median(large) == pytest.approx(487, abs=10)

    def test_ecdf_monotone(self, fig2a):
        ecdf = fig2a.get("ecdf")
        assert (np.diff(ecdf.y) >= 0).all()


class TestFig3:
    def test_growth_over_time(self, fig3):
        monthly = fig3.get("monthly")
        assert len(monthly["2018-11"]) > len(monthly["2017-01"])

    def test_new_domain_detected(self, fig3):
        assert fig3.get("new_domains")
        assert fig3.get("revival_entry_day_offset") is not None
        assert fig3.get("revival_entry_day_offset") <= 7  # paper: 3 days

    def test_domain_count_grows_despite_seizure(self, fig3):
        counts = fig3.get("weekly_verified_counts")
        assert counts[-1][1] >= counts[0][1]  # paper: total grows anyway

    def test_identified_count_same_order_as_paper(self, fig3):
        # Paper identified 58; small preset builds a ~45-domain market.
        assert 25 < len(fig3.get("identified")) < 80

    def test_relative_ranks_are_consecutive(self, fig3):
        for month, entries in fig3.get("monthly").items():
            ranks = [rank for rank, _, _ in entries]
            assert ranks == list(range(1, len(ranks) + 1))


class TestExtensions:
    @pytest.fixture(scope="class")
    def econ(self):
        return run_experiment("econ", CFG)

    @pytest.fixture(scope="class")
    def whatif(self):
        return run_experiment("whatif", CFG)

    def test_econ_seizure_dips_market(self, econ):
        reports = econ.get("reports")
        assert reports["none"].dip_fraction() == 0.0
        assert reports["domain seizure"].dip_fraction() > 0.05
        assert reports["domain seizure"].revenue_loss() > 0

    def test_econ_all_interventions_compared(self, econ):
        assert set(econ.get("reports")) == {
            "none", "domain seizure", "payment intervention", "operator arrest",
        }

    def test_whatif_takedown_recovers_remediation_does_not(self, whatif):
        demand = whatif.get("demand_takedown")
        capacity = whatif.get("capacity_remediation")
        # Takedown: near-full recovery by the horizon.
        assert demand[-1] > 0.9
        # Remediation: sustained decline of attack capacity.
        assert capacity[-1] < 0.5
        assert capacity[-1] < capacity[0]

    def test_whatif_combined_is_product(self, whatif):
        np.testing.assert_allclose(
            whatif.get("combined"),
            whatif.get("demand_takedown") * whatif.get("capacity_remediation"),
        )

    def test_honeypot_coverage_monotone(self):
        result = run_experiment("honeypot", CFG)
        curve = result.get("curve")
        values = [curve[k] for k in sorted(curve)]
        assert values == sorted(values)
        assert values[-1] > 0.9
        assert result.get("victims_seen") <= result.get("victims_total")

    def test_victimization_heavy_tail(self):
        result = run_experiment("victimization", CFG)
        assert 0.0 < result.get("repeat_share") < 1.0
        assert result.get("top10_share") > 0.2  # concentration on few victims
        assert 0.0 <= result.get("gini") <= 1.0
        breakdown = result.get("breakdown")
        assert breakdown
        assert sum(v["share"] for v in breakdown.values()) == pytest.approx(1.0)
