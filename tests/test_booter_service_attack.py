"""Tests for booter services, plans, attack events and flow synthesis."""

import numpy as np
import pytest

from repro.booter.attack import (
    AttackEvent,
    synthesize_attack_flows,
    synthesize_trigger_flows,
)
from repro.booter.catalog import BOOTER_CATALOG, BooterCatalogEntry, catalog_table_rows
from repro.booter.reflectors import ReflectorChurnConfig, ReflectorPool, ReflectorSetProcess
from repro.booter.service import BooterService, ServicePlan
from repro.netmodel.topology import TopologyConfig, build_topology
from repro.protocols.amplification import vector_by_name
from repro.stats.rng import SeedSequenceTree


@pytest.fixture(scope="module")
def registry():
    reg, _ = build_topology(TopologyConfig(n_tier1=3, n_tier2=8, n_stub=40), SeedSequenceTree(1))
    return reg


@pytest.fixture(scope="module")
def ntp_pool(registry):
    return ReflectorPool.generate("ntp", 1500, registry, SeedSequenceTree(2))


@pytest.fixture(scope="module")
def booter_b(registry, ntp_pool):
    seeds = SeedSequenceTree(3)
    sets = {
        "ntp": ReflectorSetProcess(
            ntp_pool, ReflectorChurnConfig(set_size=300), seeds.child("r", "ntp")
        )
    }
    return BooterService(
        catalog=BOOTER_CATALOG["B"],
        plans={
            "non-vip": ServicePlan("non-vip", 19.83, total_packet_rate_pps=2.2e6),
            "vip": ServicePlan("vip", 178.84, total_packet_rate_pps=5.3e6),
        },
        reflector_sets=sets,
        popularity=0.2,
        backend_asn=100,
        backend_ip=1234,
        scan_pps_per_protocol={"ntp": 500.0},
    )


class TestCatalog:
    def test_table1_contents(self):
        assert BOOTER_CATALOG["A"].seized and BOOTER_CATALOG["B"].seized
        assert not BOOTER_CATALOG["C"].seized and not BOOTER_CATALOG["D"].seized
        assert BOOTER_CATALOG["B"].vip_purchased
        assert BOOTER_CATALOG["B"].price_vip_usd == pytest.approx(178.84)
        assert BOOTER_CATALOG["C"].protocols == ("ntp", "dns")

    def test_table_rows_render(self):
        rows = catalog_table_rows()
        assert len(rows) == 4
        b = next(r for r in rows if r["booter"] == "B")
        assert b["seized"] == "yes"
        assert b["memcached"] == "x"
        assert b["vip_usd"] == "$178.84"

    def test_validation(self):
        with pytest.raises(ValueError):
            BooterCatalogEntry("", False, (), ("ntp",), 1, 1)
        with pytest.raises(ValueError):
            BooterCatalogEntry("X", False, (), (), 1, 1)
        with pytest.raises(ValueError):
            BooterCatalogEntry("X", False, (), ("ntp",), -1, 1)


class TestServicePlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServicePlan("p", -1, 1000)
        with pytest.raises(ValueError):
            ServicePlan("p", 1, 0)
        with pytest.raises(ValueError):
            ServicePlan("p", 1, 1000, max_duration_s=0)


class TestBooterService:
    def test_launch_attack_basic(self, booter_b):
        event = booter_b.launch_attack(
            victim_ip=42,
            victim_asn=7,
            vector_name="ntp",
            start_time=1000.0,
            duration_s=300.0,
            plan_name="non-vip",
            day=0,
            seeds=SeedSequenceTree(9),
        )
        assert event.booter == "B"
        assert event.n_reflectors == 300
        assert event.total_pps == pytest.approx(2.2e6)

    def test_vip_same_reflectors_higher_rate(self, booter_b):
        """Paper: VIP and non-VIP use the same reflector set; only pps differs."""
        kwargs = dict(
            victim_ip=42, victim_asn=7, vector_name="ntp",
            start_time=1000.0, duration_s=300.0, day=0, seeds=SeedSequenceTree(9),
        )
        non_vip = booter_b.launch_attack(plan_name="non-vip", **kwargs)
        vip = booter_b.launch_attack(plan_name="vip", **kwargs)
        np.testing.assert_array_equal(non_vip.reflector_ips, vip.reflector_ips)
        assert vip.total_pps / non_vip.total_pps == pytest.approx(5.3 / 2.2, rel=0.01)

    def test_vip_rate_near_20gbps(self, booter_b):
        """5.3M pps of ~487-byte NTP packets is ~20 Gbps (Figure 1b)."""
        assert booter_b.expected_attack_gbps("ntp", "vip") == pytest.approx(20.0, rel=0.05)

    def test_duration_capped_by_plan(self, booter_b):
        event = booter_b.launch_attack(
            victim_ip=1, victim_asn=1, vector_name="ntp", start_time=0.0,
            duration_s=10_000.0, plan_name="non-vip", day=0, seeds=SeedSequenceTree(0),
        )
        assert event.duration_s == 300.0  # plan default max

    def test_unoffered_vector_rejected(self, booter_b):
        with pytest.raises(ValueError):
            booter_b.launch_attack(
                victim_ip=1, victim_asn=1, vector_name="chargen", start_time=0.0,
                duration_s=60.0, plan_name="non-vip", day=0, seeds=SeedSequenceTree(0),
            )

    def test_unknown_plan_rejected(self, booter_b):
        with pytest.raises(KeyError):
            booter_b.plan("platinum")

    def test_deterministic_launch(self, booter_b):
        kwargs = dict(
            victim_ip=1, victim_asn=1, vector_name="ntp", start_time=50.0,
            duration_s=60.0, plan_name="non-vip", day=3, seeds=SeedSequenceTree(4),
        )
        a = booter_b.launch_attack(**kwargs)
        b = booter_b.launch_attack(**kwargs)
        np.testing.assert_array_equal(a.reflector_weights, b.reflector_weights)

    def test_service_validation(self, booter_b, ntp_pool):
        with pytest.raises(ValueError):
            BooterService(
                catalog=BOOTER_CATALOG["C"],  # offers ntp+dns only
                plans={"non-vip": ServicePlan("non-vip", 1, 1)},
                reflector_sets={
                    "memcached": ReflectorSetProcess(
                        ntp_pool, ReflectorChurnConfig(set_size=10), SeedSequenceTree(0)
                    )
                },
                popularity=0.1,
                backend_asn=1,
                backend_ip=1,
            )


class TestAttackEvent:
    def make_event(self, n_reflectors=50, **overrides):
        rng = np.random.default_rng(0)
        weights = rng.dirichlet(np.ones(n_reflectors))
        params = dict(
            booter="B",
            vector="ntp",
            plan="non-vip",
            victim_ip=99,
            victim_asn=5,
            start_time=100.0,
            duration_s=120.0,
            total_pps=1e6,
            reflector_ips=np.arange(n_reflectors, dtype=np.uint32),
            reflector_asns=np.arange(n_reflectors, dtype=np.int64) % 7,
            reflector_weights=weights,
        )
        params.update(overrides)
        return AttackEvent(**params)

    def test_expected_gbps(self):
        event = self.make_event(total_pps=5.3e6)
        ntp = vector_by_name("ntp")
        assert event.expected_gbps() == pytest.approx(5.3e6 * ntp.mean_response_size * 8 / 1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make_event(duration_s=0)
        with pytest.raises(ValueError):
            self.make_event(total_pps=0)
        with pytest.raises(ValueError):
            self.make_event(reflector_weights=np.ones(50))  # doesn't sum to 1
        with pytest.raises(ValueError):
            self.make_event(reflector_asns=np.arange(3))


class TestSynthesizeAttackFlows:
    def make_event(self, **overrides):
        return TestAttackEvent().make_event(**overrides)

    def test_total_packets_match_rate(self):
        event = self.make_event(duration_s=300.0, total_pps=1e5)
        flows = synthesize_attack_flows(event, np.random.default_rng(1), bin_seconds=60.0)
        expected = 300.0 * 1e5
        assert flows.total_packets == pytest.approx(expected, rel=0.05)

    def test_flow_endpoints(self):
        event = self.make_event()
        flows = synthesize_attack_flows(event, np.random.default_rng(1))
        assert (flows["dst_ip"] == 99).all()
        assert (flows["src_port"] == 123).all()
        assert set(np.unique(flows["src_ip"])) <= set(range(50))

    def test_packet_sizes_are_monlist_sized(self):
        event = self.make_event()
        flows = synthesize_attack_flows(event, np.random.default_rng(1))
        sizes = flows.mean_packet_sizes()
        assert (sizes > 400).all() and (sizes < 500).all()

    def test_partial_bins_at_edges(self):
        event = self.make_event(start_time=30.0, duration_s=60.0, total_pps=6000.0)
        flows = synthesize_attack_flows(event, np.random.default_rng(1), bin_seconds=60.0, rate_jitter=0.0)
        # Attack spans bins [0, 60) and [60, 120): half the traffic each.
        bin0 = flows.select(time_range=(0.0, 60.0)).total_packets
        bin1 = flows.select(time_range=(60.0, 120.0)).total_packets
        assert bin0 == pytest.approx(6000 * 30, rel=0.02)
        assert bin1 == pytest.approx(6000 * 30, rel=0.02)

    def test_victim_asn_recorded(self):
        flows = synthesize_attack_flows(self.make_event(), np.random.default_rng(0))
        assert (flows["dst_asn"] == 5).all()

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            synthesize_attack_flows(self.make_event(), np.random.default_rng(0), rate_jitter=1.0)

    def test_second_resolution(self):
        event = self.make_event(duration_s=10.0)
        flows = synthesize_attack_flows(event, np.random.default_rng(0), bin_seconds=1.0)
        assert np.unique(flows["time"]).size == 10


class TestSynthesizeTriggerFlows:
    def make_event(self, **overrides):
        return TestAttackEvent().make_event(**overrides)

    def test_trigger_rate_is_paf_scaled(self):
        event = self.make_event(duration_s=300.0, total_pps=1e6)
        flows = synthesize_trigger_flows(event, np.random.default_rng(2), bin_seconds=60.0)
        ntp = vector_by_name("ntp")
        expected = 300.0 * 1e6 / ntp.response_packets_per_request
        assert flows.total_packets == pytest.approx(expected, rel=0.05)

    def test_spoofed_source_is_victim(self):
        flows = synthesize_trigger_flows(self.make_event(), np.random.default_rng(2))
        assert (flows["src_ip"] == 99).all()
        assert (flows["dst_port"] == 123).all()
        assert (flows["src_asn"] == -1).all()  # no origin annotation given

    def test_true_origin_annotation(self):
        flows = synthesize_trigger_flows(
            self.make_event(), np.random.default_rng(2), origin_asn=777
        )
        # src_ip still spoofed to the victim, but routing origin is real.
        assert (flows["src_ip"] == 99).all()
        assert (flows["src_asn"] == 777).all()

    def test_request_sized_packets(self):
        flows = synthesize_trigger_flows(self.make_event(), np.random.default_rng(2))
        np.testing.assert_allclose(flows.mean_packet_sizes(), 234.0, atol=1.0)

    def test_bin_validation(self):
        with pytest.raises(ValueError):
            synthesize_trigger_flows(self.make_event(), np.random.default_rng(0), bin_seconds=0)
