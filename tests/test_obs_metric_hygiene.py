"""Metric-name hygiene: every counter family is classified on purpose.

The drift gate digests only ``DETERMINISTIC_PREFIXES`` families
(``scenario.`` / ``streaming.`` / ``pipeline.``); everything
environment-dependent (``cache.`` / ``pool.`` / ``serve.`` / ...) must
live under ``EXCLUDED_PREFIXES``. This test walks the source tree with
the ``ast`` module and collects every literal metric name passed to
``inc`` / ``observe`` / ``gauge``, so a new family with an unclassified
prefix — which would either silently skew the digest or silently escape
it — fails CI instead of surfacing as a drift-gate mystery later.
"""

import ast
from pathlib import Path

from repro.obs.runledger import (
    DETERMINISTIC_PREFIXES,
    EXCLUDED_PREFIXES,
    deterministic_counters,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"
METRIC_METHODS = {"inc", "observe", "gauge"}
ALL_PREFIXES = DETERMINISTIC_PREFIXES + EXCLUDED_PREFIXES


def _literal_prefix(node: ast.expr) -> str | None:
    """The literal (or f-string literal prefix) of a metric-name arg."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


def _collect_metric_names() -> dict[str, list[str]]:
    """Map literal metric name -> ``file:line`` call sites across src/."""
    names: dict[str, list[str]] = {}
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in METRIC_METHODS
                and node.args
            ):
                continue
            literal = _literal_prefix(node.args[0])
            # Non-literal first args (histogram.observe(value), vantage
            # observers, passthrough helpers) are not metric families.
            if literal is None or "." not in literal:
                continue
            site = f"{path.relative_to(SRC_ROOT)}:{node.lineno}"
            names.setdefault(literal, []).append(site)
    return names


def test_scan_finds_the_known_families():
    names = _collect_metric_names()
    assert "serve.requests" in names
    assert "scenario.days_generated" in names
    assert "cache.hits" in names
    assert "pool.busy_s" in names
    assert len(names) > 25


def test_scan_covers_the_economics_plane():
    """The ledger/replica counters are visible to the hygiene scan."""
    names = _collect_metric_names()
    assert any(site.startswith("economics/") for site in names["econ.signups"])
    assert "econ.customer_days" in names
    assert "econ.replicas" in names
    assert "market.step_chunks" in names
    assert "market.replica_tasks" in names
    assert "market.ledger_resident_bytes" in names


def test_every_literal_metric_name_is_classified():
    unclassified = {
        name: sites
        for name, sites in _collect_metric_names().items()
        if not name.startswith(ALL_PREFIXES)
    }
    assert not unclassified, (
        "metric families with no drift-gate classification — add their "
        "prefix to DETERMINISTIC_PREFIXES (digested) or EXCLUDED_PREFIXES "
        f"(environment-dependent) in repro/obs/runledger.py: {unclassified}"
    )


def test_deterministic_families_carry_no_timing_suffix():
    """Wall-clock families (``*_s``) can never be digest-stable."""
    offenders = {
        name: sites
        for name, sites in _collect_metric_names().items()
        if name.startswith(DETERMINISTIC_PREFIXES) and name.endswith("_s")
    }
    assert not offenders, offenders


def test_prefix_lists_are_disjoint():
    assert not set(DETERMINISTIC_PREFIXES) & set(EXCLUDED_PREFIXES)


def test_deterministic_counters_drops_every_excluded_family():
    counters = {
        "scenario.days_generated": 5.0,
        "streaming.flows_ingested": 100.0,
        "pipeline.days_processed": 5.0,
        "econ.customer_days": 1e6,
        "cache.hits": 3.0,
        "pool.busy_s": 0.4,
        "serve.requests": 9.0,
        "shm.bytes": 4096.0,
        "visibility.matrix_hits": 7.0,
        "parallel.days_dispatched": 5.0,
        "market.step_chunks": 12.0,
        "market.ledger_resident_bytes": 9e7,
    }
    kept = deterministic_counters(counters)
    assert set(kept) == {
        "scenario.days_generated",
        "streaming.flows_ingested",
        "pipeline.days_processed",
        "econ.customer_days",
    }
    for name in counters:
        if name not in kept:
            assert name.startswith(EXCLUDED_PREFIXES), name
