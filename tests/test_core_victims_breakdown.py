"""Tests for the per-AS-role victim breakdown."""

import numpy as np
import pytest

from repro.core.victims import victim_asn_breakdown, victim_report
from repro.flows.records import FlowTable
from repro.netmodel.addressing import Prefix, random_ips_in_prefix
from repro.netmodel.asn import ASRegistry, ASRole, AutonomousSystem


@pytest.fixture
def registry():
    reg = ASRegistry()
    reg.register(
        AutonomousSystem(10, ASRole.STUB, (Prefix.parse("10.0.0.0/16"),))
    )
    reg.register(
        AutonomousSystem(20, ASRole.TIER2, (Prefix.parse("10.1.0.0/16"),))
    )
    return reg


def attack_to(dst_ip, n_src=50, gbps=2.0):
    per_flow = int(gbps * 1e9 / 8 * 60 / n_src / 487)
    return FlowTable(
        {
            "time": np.zeros(n_src),
            "src_ip": np.arange(n_src, dtype=np.uint32) + 1_000_000,
            "dst_ip": np.full(n_src, dst_ip, dtype=np.uint32),
            "proto": np.full(n_src, 17, dtype=np.uint8),
            "src_port": np.full(n_src, 123, dtype=np.uint16),
            "dst_port": np.full(n_src, 50000, dtype=np.uint16),
            "packets": np.full(n_src, per_flow, dtype=np.int64),
            "bytes": np.full(n_src, per_flow * 487, dtype=np.int64),
        }
    )


class TestBreakdown:
    def test_groups_by_role(self, registry):
        rng = np.random.default_rng(0)
        stub_victim = int(random_ips_in_prefix(Prefix.parse("10.0.0.0/16"), rng, 1)[0])
        tier2_victim = int(random_ips_in_prefix(Prefix.parse("10.1.0.0/16"), rng, 1)[0])
        table = FlowTable.concat(
            [attack_to(stub_victim), attack_to(stub_victim + 1), attack_to(tier2_victim)]
        )
        report = victim_report(table)
        breakdown = victim_asn_breakdown(report, registry)
        assert breakdown["stub"]["victims"] == 2
        assert breakdown["tier2"]["victims"] == 1
        assert sum(v["share"] for v in breakdown.values()) == pytest.approx(1.0)
        assert breakdown["stub"]["peak_gbps_sum"] > breakdown["tier2"]["peak_gbps_sum"]

    def test_unresolvable_space_is_unknown(self, registry):
        table = attack_to(0xDEADBEEF)  # outside any registered prefix
        report = victim_report(table)
        breakdown = victim_asn_breakdown(report, registry)
        assert list(breakdown) == ["unknown"]

    def test_empty_report(self, registry):
        report = victim_report(FlowTable.empty())
        assert victim_asn_breakdown(report, registry) == {}
