"""Tests for the AmpPot-style honeypot deployment."""

import numpy as np
import pytest

from repro.booter.market import BooterMarket, MarketConfig
from repro.booter.reflectors import ReflectorPool
from repro.honeypot.amppot import HoneypotDeployment, HoneypotObservation, coverage_curve
from repro.netmodel.topology import TopologyConfig, build_topology
from repro.stats.rng import SeedSequenceTree


@pytest.fixture(scope="module")
def env():
    reg, _ = build_topology(TopologyConfig(n_tier1=3, n_tier2=10, n_stub=60), SeedSequenceTree(1))
    seeds = SeedSequenceTree(2)
    pools = {
        "ntp": ReflectorPool.generate("ntp", 2000, reg, seeds),
        "dns": ReflectorPool.generate("dns", 1000, reg, seeds),
    }
    market = BooterMarket(
        reg,
        pools,
        MarketConfig(
            daily_attacks=60.0,
            n_victims=200,
            vector_mix=(("ntp", 0.8), ("dns", 0.2)),
        ),
        SeedSequenceTree(3),
    )
    events = [e for day in range(4) for e in market.attacks_for_day(day)]
    return pools["ntp"], [e for e in events if e.vector == "ntp"]


class TestDeployment:
    def test_size_and_membership(self, env):
        pool, _ = env
        deployment = HoneypotDeployment(pool, 50, SeedSequenceTree(4))
        assert deployment.n_honeypots == 50
        assert np.isin(deployment.ips, pool.ips).all()

    def test_validation(self, env):
        pool, _ = env
        with pytest.raises(ValueError):
            HoneypotDeployment(pool, 0, SeedSequenceTree(0))
        with pytest.raises(ValueError):
            HoneypotDeployment(pool, len(pool) + 1, SeedSequenceTree(0))

    def test_deterministic(self, env):
        pool, _ = env
        a = HoneypotDeployment(pool, 30, SeedSequenceTree(5))
        b = HoneypotDeployment(pool, 30, SeedSequenceTree(5))
        np.testing.assert_array_equal(a.ips, b.ips)


class TestObservation:
    def test_full_deployment_sees_everything(self, env):
        pool, events = env
        deployment = HoneypotDeployment(pool, len(pool), SeedSequenceTree(6))
        assert deployment.coverage(events) == 1.0
        observations = deployment.observe_all(events)
        assert len(observations) == len(events)

    def test_observation_contents(self, env):
        pool, events = env
        deployment = HoneypotDeployment(pool, len(pool), SeedSequenceTree(6))
        event = events[0]
        obs = deployment.observe(event)
        assert obs.victim_ip == event.victim_ip
        assert obs.vector == "ntp"
        assert obs.start_time == event.start_time
        assert obs.honeypots_hit == np.unique(event.reflector_ips).size
        # Full deployment sees the whole trigger stream.
        from repro.protocols.amplification import vector_by_name

        full_rate = event.total_pps / vector_by_name("ntp").response_packets_per_request
        assert obs.observed_request_pps == pytest.approx(full_rate, rel=1e-6)

    def test_partial_deployment_sees_partial_rate(self, env):
        pool, events = env
        deployment = HoneypotDeployment(pool, 100, SeedSequenceTree(7))
        observations = deployment.observe_all(events)
        assert observations  # some attacks hit the honeypots
        for obs in observations:
            assert obs.observed_request_pps > 0
            assert obs.honeypots_hit <= 100

    def test_miss_returns_none(self, env):
        pool, events = env
        # A deployment of 1 misses most attacks.
        deployment = HoneypotDeployment(pool, 1, SeedSequenceTree(8))
        results = [deployment.observe(e) for e in events]
        assert any(r is None for r in results)

    def test_coverage_empty_events(self, env):
        pool, _ = env
        with pytest.raises(ValueError):
            HoneypotDeployment(pool, 10, SeedSequenceTree(9)).coverage([])

    def test_observation_validation(self):
        with pytest.raises(ValueError):
            HoneypotObservation(1, "ntp", 0.0, 1.0, honeypots_hit=0, observed_request_pps=1.0)


class TestCoverage:
    def test_measured_matches_analytic(self, env):
        pool, events = env
        deployment = HoneypotDeployment(pool, 60, SeedSequenceTree(10))
        set_sizes = [np.unique(e.reflector_ips).size for e in events]
        expected = float(
            np.mean([deployment.expected_coverage(s) for s in set_sizes])
        )
        # Booters draw from list-source subsets (not uniform over the
        # pool), so allow a generous band around the hypergeometric value.
        measured = deployment.coverage(events)
        assert abs(measured - expected) < 0.35

    def test_coverage_curve_monotone(self, env):
        pool, events = env
        curve = coverage_curve(pool, events, [5, 50, 500, len(pool)], SeedSequenceTree(11))
        values = list(curve.values())
        assert values == sorted(values)
        assert curve[len(pool)] == 1.0

    def test_expected_coverage_bounds(self, env):
        pool, _ = env
        deployment = HoneypotDeployment(pool, 100, SeedSequenceTree(12))
        assert 0.0 < deployment.expected_coverage(10) < deployment.expected_coverage(300) <= 1.0
        assert deployment.expected_coverage(len(pool)) == 1.0
        with pytest.raises(ValueError):
            deployment.expected_coverage(0)

    def test_curve_validation(self, env):
        pool, events = env
        with pytest.raises(ValueError):
            coverage_curve(pool, events, [], SeedSequenceTree(0))
