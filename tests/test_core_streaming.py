"""Tests for the one-pass streaming analyzer (vs the batch pipeline)."""

import numpy as np
import pytest

from repro.booter.market import MarketConfig
from repro.core.classify import OptimisticClassifier
from repro.core.pipeline import TrafficSelector, collect_daily_port_series
from repro.core.streaming import StreamingAnalyzer
from repro.core.victims import attacks_per_hour
from repro.flows.records import FlowTable
from repro.flows.timeseries import per_destination_stats
from repro.netmodel.topology import TopologyConfig
from repro.scenario import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        ScenarioConfig(
            scale=0.1,
            topology=TopologyConfig(n_tier1=3, n_tier2=10, n_stub=60),
            market=MarketConfig(daily_attacks=60.0, n_victims=300),
            pool_sizes=(("ntp", 1500), ("dns", 1000), ("cldap", 400), ("memcached", 200), ("ssdp", 250)),
        )
    )


@pytest.fixture(scope="module")
def observed_days(scenario):
    days = list(range(40, 44))
    return {
        day: scenario.observe_day("ixp", scenario.day_traffic(day)) for day in days
    }


SELECTORS = [
    TrafficSelector("ntp_to", 123, "to_reflectors"),
    TrafficSelector("ntp_from", 123, "from_reflectors"),
]


@pytest.fixture(scope="module")
def analyzer(scenario, observed_days):
    analyzer = StreamingAnalyzer(
        SELECTORS, n_days=scenario.config.n_days, sampling_factor=10_000.0
    )
    for day, table in observed_days.items():
        analyzer.ingest_day(day, table)
    return analyzer


class TestDailySeriesTrack:
    def test_matches_batch_pipeline(self, scenario, analyzer):
        batch = collect_daily_port_series(scenario, "ixp", SELECTORS, day_range=(40, 44))
        for name in ("ntp_to", "ntp_from"):
            np.testing.assert_allclose(
                analyzer.daily_series(name)[40:44], batch.get(name)
            )

    def test_unknown_selector(self, analyzer):
        with pytest.raises(KeyError):
            analyzer.daily_series("nope")


class TestVictimTrack:
    def test_matches_exact_aggregation(self, analyzer, observed_days):
        batch_table = FlowTable.concat(list(observed_days.values()))
        amplified = OptimisticClassifier().amplification_flows(batch_table)
        exact = per_destination_stats(amplified, bin_seconds=60.0)
        stream = analyzer.victim_stats()

        np.testing.assert_array_equal(
            np.sort(stream.destinations), np.sort(exact.destinations)
        )
        exact_by_dst = dict(zip(exact.destinations.tolist(), exact.peak_bps.tolist()))
        for dst, peak in zip(stream.destinations.tolist(), stream.peak_bps.tolist()):
            assert peak == pytest.approx(exact_by_dst[dst], rel=1e-9)

        exact_sources = dict(
            zip(exact.destinations.tolist(), exact.unique_sources.tolist())
        )
        for dst, estimate in zip(
            stream.destinations.tolist(), stream.unique_sources_estimate.tolist()
        ):
            true = exact_sources[dst]
            assert estimate == pytest.approx(true, rel=0.25, abs=2.0)

    def test_total_packets_partition(self, analyzer, observed_days):
        batch_table = FlowTable.concat(list(observed_days.values()))
        amplified = OptimisticClassifier().amplification_flows(batch_table)
        assert analyzer.victim_stats().total_packets.sum() == amplified.total_packets


class TestHourlyTrack:
    def test_matches_batch_attacks_per_hour(self, analyzer, observed_days):
        for day, table in observed_days.items():
            expected = attacks_per_hour(
                table, day * 86400.0, (day + 1) * 86400.0, sampling_factor=10_000.0
            )
            np.testing.assert_array_equal(
                analyzer.hourly_attacks[day * 24 : (day + 1) * 24], expected
            )

    def test_daily_counts_shape(self, analyzer, scenario):
        counts = analyzer.daily_attack_counts()
        assert counts.shape == (scenario.config.n_days,)
        assert counts[40:44].sum() == analyzer.hourly_attacks.sum()


class TestValidation:
    def test_double_ingest_rejected(self, scenario):
        a = StreamingAnalyzer(SELECTORS, n_days=10)
        a.ingest_day(1, FlowTable.empty())
        with pytest.raises(ValueError):
            a.ingest_day(1, FlowTable.empty())

    def test_out_of_range_day(self):
        a = StreamingAnalyzer(SELECTORS, n_days=10)
        with pytest.raises(ValueError):
            a.ingest_day(10, FlowTable.empty())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamingAnalyzer(SELECTORS, n_days=0)
        with pytest.raises(ValueError):
            StreamingAnalyzer(SELECTORS, n_days=5, sampling_factor=0)
        with pytest.raises(ValueError):
            StreamingAnalyzer(SELECTORS + SELECTORS, n_days=5)

    def test_empty_day_ok(self):
        a = StreamingAnalyzer(SELECTORS, n_days=5)
        a.ingest_day(0, FlowTable.empty())
        assert len(a.victim_stats()) == 0
        assert a.daily_attack_counts().sum() == 0


class TestCollectStreaming:
    def test_convenience_loop_matches_manual(self, scenario, observed_days, analyzer):
        from repro.core.pipeline import collect_streaming

        fresh = StreamingAnalyzer(
            SELECTORS, n_days=scenario.config.n_days, sampling_factor=10_000.0
        )
        returned = collect_streaming(scenario, "ixp", fresh, day_range=(40, 44))
        assert returned is fresh
        for name in ("ntp_to", "ntp_from"):
            np.testing.assert_allclose(
                fresh.daily_series(name), analyzer.daily_series(name)
            )

    def test_empty_range_rejected(self, scenario):
        from repro.core.pipeline import collect_streaming

        with pytest.raises(ValueError):
            collect_streaming(scenario, "ixp", StreamingAnalyzer(SELECTORS, n_days=5), (3, 3))
