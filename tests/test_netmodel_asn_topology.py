"""Tests for the AS registry, topology builder, and valley-free routing."""

import numpy as np
import pytest

from repro.netmodel.addressing import Prefix, parse_ip
from repro.netmodel.asn import ASRegistry, ASRole, AutonomousSystem
from repro.netmodel.topology import ASTopology, TopologyConfig, build_topology
from repro.stats.rng import SeedSequenceTree


def make_as(asn, role=ASRole.STUB, prefix=None, member=False):
    prefixes = (Prefix.parse(prefix),) if prefix else ()
    return AutonomousSystem(asn, role, prefixes, ixp_member=member)


class TestASRegistry:
    def test_register_and_get(self):
        reg = ASRegistry()
        reg.register(make_as(10, prefix="10.0.0.0/16"))
        assert reg.get(10).asn == 10
        assert 10 in reg
        assert len(reg) == 1

    def test_duplicate_asn_rejected(self):
        reg = ASRegistry()
        reg.register(make_as(10))
        with pytest.raises(ValueError):
            reg.register(make_as(10))

    def test_unknown_asn(self):
        with pytest.raises(KeyError):
            ASRegistry().get(99)

    def test_overlapping_prefix_rejected(self):
        reg = ASRegistry()
        reg.register(make_as(10, prefix="10.0.0.0/16"))
        with pytest.raises(ValueError):
            reg.register(make_as(11, prefix="10.0.1.0/24"))

    def test_resolve_address(self):
        reg = ASRegistry()
        reg.register(make_as(10, prefix="10.0.0.0/16"))
        reg.register(make_as(11, prefix="10.1.0.0/16"))
        assert reg.resolve_address(parse_ip("10.0.5.5")) == 10
        assert reg.resolve_address(parse_ip("10.1.5.5")) == 11
        assert reg.resolve_address(parse_ip("99.0.0.1")) is None

    def test_resolve_addresses_vectorized(self):
        reg = ASRegistry()
        reg.register(make_as(10, prefix="10.0.0.0/16"))
        addrs = np.array(
            [parse_ip("10.0.0.1"), parse_ip("8.8.8.8"), parse_ip("10.0.255.255")],
            dtype=np.uint32,
        )
        np.testing.assert_array_equal(reg.resolve_addresses(addrs), [10, -1, 10])

    def test_resolve_empty_registry(self):
        out = ASRegistry().resolve_addresses(np.array([1, 2], dtype=np.uint32))
        np.testing.assert_array_equal(out, [-1, -1])

    def test_by_role_and_members(self):
        reg = ASRegistry()
        reg.register(make_as(1, role=ASRole.TIER1))
        reg.register(make_as(2, role=ASRole.STUB, member=True))
        assert [a.asn for a in reg.by_role(ASRole.TIER1)] == [1]
        assert [a.asn for a in reg.ixp_members()] == [2]

    def test_invalid_asn(self):
        with pytest.raises(ValueError):
            AutonomousSystem(0, ASRole.STUB)


class TestASTopologyRouting:
    """Hand-built topology:

        T1a --peer-- T1b
         |            |
        T2a          T2b      (customers of the tier-1s)
         |            |
        S1           S2       (stubs)

    plus an IXP peering edge T2a -- T2b.
    """

    @pytest.fixture
    def topo(self):
        reg = ASRegistry()
        for asn in (1, 2, 11, 12, 21, 22):
            reg.register(make_as(asn))
        t = ASTopology(reg)
        t.add_peering(1, 2)
        t.add_customer_provider(11, 1)
        t.add_customer_provider(12, 2)
        t.add_customer_provider(21, 11)
        t.add_customer_provider(22, 12)
        t.add_peering(11, 12, via_ixp=True)
        return t

    def test_customer_route_preferred(self, topo):
        # 1 -> 21 goes straight down its customer chain.
        assert topo.path(1, 21) == [1, 11, 21]

    def test_peer_route_used_across_ixp(self, topo):
        # 21 -> 22: up to 11, across the IXP peer edge to 12, down to 22.
        assert topo.path(21, 22) == [21, 11, 12, 22]
        assert topo.path_crosses_ixp(21, 22)

    def test_tier1_peering_not_ixp(self, topo):
        assert topo.path(11, 2) is not None
        assert not topo.is_ixp_peering(1, 2)

    def test_self_path(self, topo):
        assert topo.path(21, 21) == [21]

    def test_customer_cone(self, topo):
        assert topo.customer_cone(1) == {1, 11, 21}
        assert topo.customer_cone(21) == {21}

    def test_valley_free_no_peer_then_up(self):
        """A route must not go peer -> provider (that would be a valley)."""
        reg = ASRegistry()
        for asn in (1, 2, 3):
            reg.register(make_as(asn))
        t = ASTopology(reg)
        # 1 -peer- 2, and 3 is a provider of 2. 1 cannot reach 3 via 2.
        t.add_peering(1, 2)
        t.add_customer_provider(2, 3)
        assert topo_path_kinds_ok(t, 1, 3)

    def test_reachability(self, topo):
        assert topo.reachable(21, 22)
        assert topo.reachable(1, 22)

    def test_transit_asns_on_path(self, topo):
        assert topo.transit_asns_on_path(21, 22) == [11, 12]
        assert topo.transit_asns_on_path(21, 11) == []

    def test_relationship_conflicts_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.add_peering(11, 1)  # already customer/provider
        with pytest.raises(ValueError):
            topo.add_customer_provider(1, 2)  # already peers
        with pytest.raises(ValueError):
            topo.add_peering(1, 1)
        with pytest.raises(ValueError):
            topo.add_customer_provider(1, 1)


def topo_path_kinds_ok(t, src, dst):
    """Either unreachable, or the found path is valley-free."""
    path = t.path(src, dst)
    if path is None:
        return True
    # Classify each hop and verify no c2p appears after a p2p or p2c hop.
    descended = False
    for a, b in zip(path, path[1:]):
        if b in t.providers(a):
            if descended:
                return False
        elif b in t.peers(a):
            if descended:
                return False
            descended = True
        elif b in t.customers(a):
            descended = True
        else:
            return False
    return True


class TestBuildTopology:
    @pytest.fixture(scope="class")
    def built(self):
        config = TopologyConfig(n_tier1=4, n_tier2=10, n_stub=30)
        return build_topology(config, SeedSequenceTree(42))

    def test_counts(self, built):
        reg, _ = built
        assert len(reg.by_role(ASRole.TIER1)) == 4
        assert len(reg.by_role(ASRole.TIER2)) == 10
        assert len(reg.by_role(ASRole.STUB)) == 30

    def test_deterministic(self):
        config = TopologyConfig(n_tier1=3, n_tier2=5, n_stub=10)
        reg1, t1 = build_topology(config, SeedSequenceTree(7))
        reg2, t2 = build_topology(config, SeedSequenceTree(7))
        assert [a.asn for a in reg1.ixp_members()] == [a.asn for a in reg2.ixp_members()]
        for asn in reg1.asns:
            assert t1.providers(asn) == t2.providers(asn)

    def test_full_reachability(self, built):
        """Every AS can reach every other AS (valley-free)."""
        reg, topo = built
        asns = reg.asns
        rng = np.random.default_rng(0)
        for src in rng.choice(asns, 15, replace=False):
            for dst in rng.choice(asns, 15, replace=False):
                assert topo.reachable(int(src), int(dst)), f"{src} !-> {dst}"

    def test_all_paths_valley_free(self, built):
        reg, topo = built
        rng = np.random.default_rng(1)
        asns = reg.asns
        for _ in range(100):
            src, dst = rng.choice(asns, 2, replace=False)
            assert topo_path_kinds_ok(topo, int(src), int(dst))

    def test_disjoint_prefixes(self, built):
        reg, _ = built
        seen = []
        for asys in reg:
            for p in asys.prefixes:
                for q in seen:
                    assert not (p.contains(q.network) or q.contains(p.network))
                seen.append(p)

    def test_ixp_member_peering_marked(self, built):
        reg, topo = built
        members = [a.asn for a in reg.ixp_members()]
        assert len(members) >= 2
        a, b = members[0], members[1]
        if b in topo.peers(a):
            assert topo.is_ixp_peering(a, b)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_tier1=1)
        with pytest.raises(ValueError):
            TopologyConfig(stub_ixp_member_fraction=1.5)
