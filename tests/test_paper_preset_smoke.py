"""Smoke test at the full ("paper") preset.

The figure tests run at the small preset; this verifies the default
full-scale configuration also builds, generates, observes, and classifies
coherently for a representative day — catching scale-dependent bugs
(overflow, memory blowups, degenerate samplers) without the cost of a
full multi-month run.
"""

import numpy as np
import pytest

from repro.core.classify import ConservativeClassifier
from repro.core.victims import victim_report
from repro.scenario import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def paper_scenario():
    return Scenario(ScenarioConfig())  # full defaults: scale 1.0


@pytest.fixture(scope="module")
def paper_day(paper_scenario):
    return paper_scenario.day_traffic(40)


class TestPaperPresetDay:
    def test_volume_is_paper_scale(self, paper_day):
        # ~100+ attacks/day, hundreds of thousands of flow records, and
        # tens of billions of packets — the full-scale regime.
        assert len(paper_day.events) > 60
        assert len(paper_day.all_flows()) > 300_000
        assert paper_day.attack.total_packets > 5e9

    def test_no_counter_overflow(self, paper_day):
        table = paper_day.all_flows()
        assert (table["packets"] >= 0).all()
        assert (table["bytes"] >= 0).all()

    def test_observation_and_classification(self, paper_scenario, paper_day):
        observed = paper_scenario.observe_day("ixp", paper_day)
        assert len(observed) > 10_000
        sampling = float(paper_scenario.config.ixp_sampling)
        report = victim_report(observed, sampling_factor=sampling)
        assert report.n_destinations > 20
        confirmed = ConservativeClassifier().classify(report.stats, sampling_factor=sampling)
        # Real attacks survive the conservative filter at full scale.
        assert 0 < len(confirmed) <= report.n_destinations
        assert report.max_victim_gbps() > 1.0

    def test_all_vantage_points_consistent(self, paper_scenario, paper_day):
        counts = {
            vantage: len(paper_scenario.observe_day(vantage, paper_day))
            for vantage in ("ixp", "tier2")
        }
        assert all(c > 0 for c in counts.values())

    def test_takedown_day_still_generates(self, paper_scenario):
        traffic = paper_scenario.day_traffic(paper_scenario.config.takedown_day + 1)
        assert len(traffic.events) > 0
        assert traffic.scan.total_packets > 0  # survivors keep scanning
