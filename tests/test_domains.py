"""Tests for the domain observatory: names, zone, crawler, Alexa model."""

import numpy as np
import pytest

from repro.domains.alexa import AlexaModel, AlexaModelConfig
from repro.domains.crawl import KeywordCrawler
from repro.domains.names import BOOTER_KEYWORDS, DomainNameGenerator
from repro.domains.zone import DomainRecord, DomainUniverse, UniverseConfig, WebsiteSnapshot
from repro.stats.rng import SeedSequenceTree
from repro.timeutil import DOMAIN_EPOCH, TAKEDOWN_DATE, day_index

TAKEDOWN_DAY = day_index(TAKEDOWN_DATE, DOMAIN_EPOCH)


@pytest.fixture(scope="module")
def universe():
    seized = ["A", "B"] + [f"S{i:02d}" for i in range(13)]
    surviving = ["C", "D"] + [f"S{i:02d}" for i in range(13, 20)]
    return DomainUniverse(
        seized_booters=seized,
        surviving_booters=surviving,
        config=UniverseConfig(n_benign=800, n_extra_booters=30),
        seeds=SeedSequenceTree(42),
        revival_delays={"A": 3},
    )


class TestNames:
    def test_booter_names_mostly_match_keywords(self):
        gen = DomainNameGenerator(np.random.default_rng(0))
        names = [gen.booter_domain() for _ in range(100)]
        assert all(DomainNameGenerator.contains_keyword(n) for n in names)

    def test_stealth_names_avoid_keywords(self):
        gen = DomainNameGenerator(np.random.default_rng(0))
        names = [gen.booter_domain(stealth=True) for _ in range(100)]
        assert not any(DomainNameGenerator.contains_keyword(n) for n in names)

    def test_names_unique(self):
        gen = DomainNameGenerator(np.random.default_rng(0))
        names = [gen.booter_domain() for _ in range(200)]
        assert len(set(names)) == 200

    def test_some_benign_names_trip_keywords(self):
        gen = DomainNameGenerator(np.random.default_rng(1))
        names = [gen.benign_domain() for _ in range(500)]
        tripped = [n for n in names if DomainNameGenerator.contains_keyword(n)]
        assert 0 < len(tripped) < len(names) / 2  # e.g. bootstrap*, distress*

    def test_keywords_include_paper_terms(self):
        assert "booter" in BOOTER_KEYWORDS
        assert "stresser" in BOOTER_KEYWORDS


class TestDomainRecord:
    def test_lifecycle(self):
        r = DomainRecord("x.com", True, "A", registered_day=10, activated_day=20,
                         dropped_day=100, seized_day=50)
        assert not r.in_zone(5)
        assert r.in_zone(10) and r.in_zone(99)
        assert not r.in_zone(100)
        assert not r.active(15)  # registered but not activated
        assert r.active(25)
        assert not r.active(50)  # seized
        assert r.seized_on(50) and not r.seized_on(49)


class TestUniverse:
    def test_size(self, universe):
        # 24 primary (15 seized + 9 surviving) + 1 revival + 30 extra + 800 benign.
        assert len(universe) == 855

    def test_seized_booters_marked(self, universe):
        a_domains = universe.domains_of("A")
        assert len(a_domains) == 2  # primary + spare
        primary = [d for d in a_domains if d.seized_day is not None]
        spare = [d for d in a_domains if d.seized_day is None]
        assert len(primary) == 1 and len(spare) == 1

    def test_spare_domain_dormant_then_active(self, universe):
        spare = [d for d in universe.domains_of("A") if d.seized_day is None][0]
        assert spare.registered_day < TAKEDOWN_DAY
        assert spare.activated_day == TAKEDOWN_DAY + 3
        assert not spare.active(TAKEDOWN_DAY)
        assert spare.active(TAKEDOWN_DAY + 3)

    def test_snapshot_grows(self, universe):
        early = len(universe.snapshot(50))
        late = len(universe.snapshot(900))
        assert late > early

    def test_snapshot_negative_day(self, universe):
        with pytest.raises(ValueError):
            universe.snapshot(-1)

    def test_unknown_domain(self, universe):
        with pytest.raises(KeyError):
            universe.get("nope.example")

    def test_overlap_validation(self):
        with pytest.raises(ValueError):
            DomainUniverse(["A"], ["A"], UniverseConfig(n_benign=1), SeedSequenceTree(0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UniverseConfig(n_benign=-1)
        with pytest.raises(ValueError):
            UniverseConfig(stealth_booter_fraction=2.0)


class TestCrawler:
    def test_finds_most_booters(self, universe):
        crawler = KeywordCrawler()
        result = crawler.crawl(universe, TAKEDOWN_DAY - 10)
        assert len(result.verified) > 20
        assert result.recall > 0.7  # stealth booters are missed

    def test_false_positives_exist_and_filtered(self, universe):
        crawler = KeywordCrawler()
        result = crawler.crawl(universe, 900)
        assert result.false_positives  # bootstrap-like benign names
        assert set(result.false_positives).isdisjoint(result.verified)
        assert result.precision < 1.0

    def test_verified_are_booters(self, universe):
        crawler = KeywordCrawler()
        result = crawler.crawl(universe, 900)
        for name in result.verified:
            assert universe.get(name).is_booter

    def test_seized_domains_still_verified(self, universe):
        crawler = KeywordCrawler()
        result = crawler.crawl(universe, TAKEDOWN_DAY + 10)
        seized_names = {
            r.name for r in universe.booter_records() if r.seized_on(TAKEDOWN_DAY + 10)
        }
        keyword_seized = {n for n in seized_names if crawler.name_matches(n)}
        assert keyword_seized <= set(result.verified)

    def test_new_domain_detected_after_takedown(self, universe):
        """Booter A's replacement shows up in the post-takedown diff."""
        crawler = KeywordCrawler()
        new = crawler.newly_verified(universe, TAKEDOWN_DAY - 1, TAKEDOWN_DAY + 7)
        spare = [d for d in universe.domains_of("A") if d.seized_day is None][0]
        assert spare.name in new

    def test_newly_verified_validation(self, universe):
        with pytest.raises(ValueError):
            KeywordCrawler().newly_verified(universe, 10, 10)

    def test_empty_keywords_rejected(self):
        with pytest.raises(ValueError):
            KeywordCrawler(())


class TestAlexaModel:
    @pytest.fixture(scope="class")
    def model(self, universe):
        return AlexaModel(universe, SeedSequenceTree(7))

    def test_deterministic(self, universe):
        a = AlexaModel(universe, SeedSequenceTree(7))
        b = AlexaModel(universe, SeedSequenceTree(7))
        domain = universe.booter_records()[0].name
        np.testing.assert_array_equal(a.daily_ranks(domain), b.daily_ranks(domain))

    def test_ranks_improve_as_site_ramps(self, model, universe):
        record = next(
            r for r in universe.booter_records()
            if r.seized_day is None and r.activated_day < 300 and r.booter not in ("A",)
        )
        early = model.rank(record.name, record.activated_day + 10)
        late = model.rank(record.name, record.activated_day + 400)
        assert late < early  # lower rank = more popular

    def test_unactivated_domain_unranked(self, model, universe):
        spare = [d for d in universe.domains_of("A") if d.seized_day is None][0]
        assert model.rank(spare.name, spare.activated_day - 10) == float("inf")

    def test_revival_enters_top1m_within_days(self, model, universe):
        """Booter A's new domain entered the Top 1M 3 days post-seizure."""
        spare = [d for d in universe.domains_of("A") if d.seized_day is None][0]
        assert model.in_top_list(spare.name, spare.activated_day + 2)

    def test_seized_domain_decays_out(self, model, universe):
        primary = [d for d in universe.domains_of("B") if d.seized_day is not None][0]
        before = model.rank(primary.name, TAKEDOWN_DAY - 5)
        long_after = model.rank(primary.name, TAKEDOWN_DAY + 120)
        assert long_after > before * 10

    def test_booters_in_top1m_grow_over_time(self, model):
        early = len(model.top_list_booters(120))
        late = len(model.top_list_booters(850))
        assert late > early

    def test_monthly_median(self, model, universe):
        domain = universe.booter_records()[0].name
        median = model.monthly_median_rank(domain, "2018-10")
        assert median > 0

    def test_monthly_median_out_of_horizon(self, model, universe):
        domain = universe.booter_records()[0].name
        assert model.monthly_median_rank(domain, "2025-01") == float("inf")

    def test_benign_domain_rejected(self, model, universe):
        benign = next(r for r in universe.records.values() if not r.is_booter)
        with pytest.raises(ValueError):
            model.daily_ranks(benign.name)

    def test_day_out_of_horizon(self, model, universe):
        domain = universe.booter_records()[0].name
        with pytest.raises(ValueError):
            model.rank(domain, 99999)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AlexaModelConfig(seizure_decay_per_day=0.9)
        with pytest.raises(ValueError):
            AlexaModelConfig(press_bump_factor=0.0)
