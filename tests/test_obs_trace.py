"""Event tracing: recorder semantics, merge, Chrome export, runner wiring."""

import json
import os
import pickle

import pytest

from repro.obs import MetricsRegistry, TraceRecorder, chrome_trace_events, write_chrome_trace
from repro.obs.trace import TRACE_SCHEMA


class TestTraceRecorder:
    def test_record_and_fields(self):
        recorder = TraceRecorder()
        recorder.record("stage", start_s=1.0, duration_s=0.5, args={"day": 3})
        assert len(recorder) == 1
        name, ts, dur, pid, tid, args = recorder.events[0]
        assert name == "stage"
        assert ts == pytest.approx(1.0e6)
        assert dur == pytest.approx(0.5e6)
        assert pid == os.getpid()
        assert tid > 0
        assert args == {"day": 3}

    def test_bounded_buffer_counts_drops(self):
        recorder = TraceRecorder(max_events=2)
        for i in range(5):
            recorder.record("s", start_s=float(i), duration_s=0.1)
        assert len(recorder) == 2
        assert recorder.dropped == 3

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="max_events"):
            TraceRecorder(max_events=0)

    def test_merge_extends_and_respects_bound(self):
        a, b = TraceRecorder(max_events=3), TraceRecorder()
        a.record("x", 0.0, 0.1)
        for i in range(4):
            b.record("y", float(i), 0.1)
        a.merge(b)
        assert len(a) == 3
        assert a.dropped == 2  # two of b's events did not fit

    def test_merge_carries_drop_counts(self):
        a, b = TraceRecorder(), TraceRecorder(max_events=1)
        b.record("x", 0.0, 0.1)
        b.record("x", 1.0, 0.1)
        assert b.dropped == 1
        a.merge(b)
        assert len(a) == 1 and a.dropped == 1

    def test_pickle_roundtrip(self):
        recorder = TraceRecorder(max_events=7)
        recorder.record("s", 0.0, 0.1, args={"k": 1})
        clone = pickle.loads(pickle.dumps(recorder))
        assert clone.max_events == 7
        assert clone.events == recorder.events
        assert clone.dropped == 0

    def test_pids(self):
        recorder = TraceRecorder()
        recorder.record("s", 0.0, 0.1)
        assert recorder.pids() == {os.getpid()}


class TestRegistryTraceIntegration:
    def test_spans_emit_trace_events(self):
        registry = MetricsRegistry(trace=TraceRecorder())
        with registry.span("outer", trace_args={"day": 9}):
            with registry.span("inner"):
                pass
        names = [event[0] for event in registry.trace.events]
        assert sorted(names) == ["inner", "outer"]
        outer = next(e for e in registry.trace.events if e[0] == "outer")
        assert outer[5] == {"day": 9}
        # Span aggregation is unchanged by tracing.
        assert registry.spans[("outer", "inner")].calls == 1

    def test_no_trace_recorder_means_no_buffering(self):
        registry = MetricsRegistry()
        with registry.span("s"):
            pass
        assert registry.trace is None

    def test_disabled_registry_traces_nothing(self):
        registry = MetricsRegistry(enabled=False, trace=TraceRecorder())
        with registry.span("s"):
            pass
        assert len(registry.trace) == 0

    def test_merge_folds_trace_buffers(self):
        parent = MetricsRegistry(trace=TraceRecorder())
        worker = MetricsRegistry(trace=TraceRecorder())
        with worker.span("task"):
            pass
        parent.merge(worker)
        assert [e[0] for e in parent.trace.events] == ["task"]

    def test_merge_adopts_recorder_when_parent_has_none(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry(trace=TraceRecorder())
        with worker.span("task"):
            pass
        parent.merge(worker)
        assert parent.trace is not None and len(parent.trace) == 1

    def test_clear_drops_trace_events(self):
        registry = MetricsRegistry(trace=TraceRecorder())
        with registry.span("s"):
            pass
        registry.clear()
        assert len(registry.trace) == 0 and registry.trace.dropped == 0


class TestChromeExport:
    def _recorder(self):
        recorder = TraceRecorder()
        recorder.record("a", 2.0, 0.5, args={"day": 1})
        recorder.record("b", 1.0, 0.25)
        return recorder

    def test_events_sorted_and_rebased(self):
        events = [e for e in chrome_trace_events(self._recorder()) if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["b", "a"]
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == pytest.approx(1.0e6)
        for event in events:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)

    def test_process_metadata_labels_parent_and_workers(self):
        recorder = self._recorder()
        recorder.events.append(("w", 3.0e6, 1.0, 99999, 99999, None))
        meta = [e for e in chrome_trace_events(recorder) if e["ph"] == "M"]
        labels = {e["pid"]: e["args"]["name"] for e in meta}
        assert labels[os.getpid()] == "repro-experiments"
        assert labels[99999] == "worker-99999"

    def test_write_chrome_trace_schema(self, tmp_path):
        out = write_chrome_trace(self._recorder(), tmp_path / "trace.json", run_info={"jobs": 1})
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["schema"] == TRACE_SCHEMA
        assert payload["otherData"]["dropped_events"] == 0
        assert payload["otherData"]["jobs"] == 1
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_empty_recorder_still_valid(self, tmp_path):
        out = write_chrome_trace(TraceRecorder(), tmp_path / "empty.json")
        payload = json.loads(out.read_text())
        assert payload["traceEvents"] == []


class TestRunnerTraceOut:
    def test_trace_out_multiprocess_chrome_json(self, tmp_path):
        """--trace-out --jobs 4 emits valid Chrome trace-event JSON with
        span events from the parent *and* at least two worker pids."""
        from repro.experiments.runner import main

        out = tmp_path / "trace.json"
        assert main(["fig2b", "--jobs", "4", "--no-cache", "--trace-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert events, "no span events recorded"
        for event in events:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0
        worker_pids = {e["pid"] for e in events} - {os.getpid()}
        assert len(worker_pids) >= 2, f"expected >=2 worker pids, got {worker_pids}"
        # Day-level spans carry their scenario day in args.
        assert any("day" in e.get("args", {}) for e in events)
        # Experiment-level span labels the run.
        assert any(e.get("args", {}).get("experiment") == "fig2b" for e in events)

    def test_trace_out_serial(self, tmp_path):
        from repro.experiments.runner import main

        out = tmp_path / "trace.json"
        assert main(["fig2a", "--no-cache", "--trace-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in events} == {os.getpid()}
        assert any(e["name"] == "experiment.fig2a" for e in events)
