"""Tests for experiment plumbing: config, result rendering, CLI runner."""

import numpy as np
import pytest

from repro.experiments.base import ExperimentConfig, ExperimentResult, format_table
from repro.experiments.runner import main


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        # Columns align: all lines equal width per column.
        assert lines[0].index("value") == lines[2].index("1") or True

    def test_float_formatting(self):
        out = format_table(["x"], [[1234.5678], [0.001234], [float("nan")], [3.14]])
        assert "1.23e+03" in out
        assert "0.00123" in out
        assert "nan" in out
        assert "3.14" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestExperimentResult:
    def test_render_and_get(self):
        result = ExperimentResult(
            experiment_id="x",
            title="demo",
            data={"k": 7},
            tables=["tbl"],
            paper_vs_measured=[("m", "1", "2")],
        )
        out = result.render()
        assert "=== x: demo ===" in out
        assert "tbl" in out
        assert "measured" in out
        assert result.get("k") == 7
        with pytest.raises(KeyError):
            result.get("missing")

    def test_render_without_comparison(self):
        result = ExperimentResult(experiment_id="y", title="t")
        assert "measured" not in result.render()


class TestConfig:
    def test_presets(self):
        small = ExperimentConfig(preset="small").scenario_config()
        paper = ExperimentConfig(preset="paper").scenario_config()
        assert small.scale < paper.scale
        assert small.topology.n_stub < paper.topology.n_stub

    def test_seed_propagates(self):
        cfg = ExperimentConfig(seed=99).scenario_config()
        assert cfg.seed == 99


class TestRunnerCli:
    def test_runs_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "$178.84" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "fig1c"]) == 0
        captured = capsys.readouterr()
        # Status lines are logged to stderr; result tables stay on stdout.
        assert "completed" in captured.err
        assert captured.out.count("===") >= 2

    def test_seed_flag(self, capsys):
        assert main(["table1", "--seed", "5"]) == 0

    def test_log_level_silences_status(self, capsys):
        assert main(["table1", "--log-level", "warning"]) == 0
        captured = capsys.readouterr()
        assert "completed" not in captured.err
        assert "===" in captured.out  # results still on stdout
