"""Tests for amplification vectors and benign traffic models."""

import numpy as np
import pytest

from repro.protocols import (
    ALL_VECTORS,
    CLDAP,
    DNS,
    MEMCACHED,
    NTP,
    AmplificationVector,
    benign_traffic_for_port,
    vector_by_name,
    vector_by_port,
)
from repro.protocols.benign import BENIGN_MIXES
from repro.stats.distributions import DiscreteDistribution


def rng():
    return np.random.default_rng(7)


class TestRegistry:
    def test_all_expected_vectors_registered(self):
        assert {
            "ntp", "dns", "cldap", "memcached", "ssdp", "chargen",
            "wsd", "tftp", "ard",
        } <= set(ALL_VECTORS)

    def test_new_vectors_have_textbook_ports(self):
        assert vector_by_name("wsd").port == 3702
        assert vector_by_name("tftp").port == 69
        assert vector_by_name("ard").port == 3283

    def test_lookup_by_name(self):
        assert vector_by_name("ntp") is NTP
        with pytest.raises(KeyError):
            vector_by_name("quic")

    def test_lookup_by_port(self):
        assert vector_by_port(123) is NTP
        assert vector_by_port(11211) is MEMCACHED
        assert vector_by_port(80) is None

    def test_ports_unique(self):
        ports = [v.port for v in ALL_VECTORS.values()]
        assert len(ports) == len(set(ports))


class TestNTP:
    def test_monlist_sizes(self):
        sizes = NTP.sample_response_sizes(rng(), 50_000)
        frac_monlist = np.mean((sizes == 486.0) | (sizes == 490.0))
        assert frac_monlist == pytest.approx(0.9862, abs=0.01)

    def test_all_responses_large(self):
        sizes = NTP.sample_response_sizes(rng(), 1000)
        assert (sizes > 200).all()

    def test_baf_order_of_magnitude(self):
        # monlist BAF is in the hundreds (556x is the textbook value for
        # full monlists; ours uses the averaged response count).
        assert 50 < NTP.bandwidth_amplification_factor < 600


class TestVectorProperties:
    @pytest.mark.parametrize("vector", list(ALL_VECTORS.values()), ids=lambda v: v.name)
    def test_amplifies(self, vector):
        assert vector.bandwidth_amplification_factor > 1.0

    @pytest.mark.parametrize("vector", list(ALL_VECTORS.values()), ids=lambda v: v.name)
    def test_response_sizes_positive_and_mtu_bounded(self, vector):
        sizes = vector.sample_response_sizes(rng(), 2000)
        assert (sizes > 0).all()
        assert (sizes <= 1500).all()

    def test_memcached_has_highest_baf(self):
        others = [v for v in ALL_VECTORS.values() if v.name != "memcached"]
        assert all(
            MEMCACHED.bandwidth_amplification_factor > v.bandwidth_amplification_factor
            for v in others
        )

    def test_requests_for_rate(self):
        # 1 Gbps of NTP: requests/s * packets/req * bytes/pkt * 8 = 1e9.
        reqs = NTP.requests_for_rate(1e9)
        recovered = reqs * NTP.response_packets_per_request * NTP.mean_response_size * 8
        assert recovered == pytest.approx(1e9)

    def test_requests_for_rate_negative_rejected(self):
        with pytest.raises(ValueError):
            NTP.requests_for_rate(-1)

    def test_sample_zero_packets(self):
        assert NTP.sample_response_sizes(rng(), 0).size == 0
        with pytest.raises(ValueError):
            NTP.sample_response_sizes(rng(), -1)

    def test_validation(self):
        dist = DiscreteDistribution.of([(100.0, 1.0)])
        with pytest.raises(ValueError):
            AmplificationVector("x", 0, 10, dist, 1, 100)
        with pytest.raises(ValueError):
            AmplificationVector("x", 1, -1, dist, 1, 100)
        with pytest.raises(ValueError):
            AmplificationVector("x", 1, 10, dist, 0, 100)


class TestBenign:
    def test_every_vector_port_has_benign_model(self):
        for vector in ALL_VECTORS.values():
            assert vector.port in BENIGN_MIXES

    def test_ntp_benign_small(self):
        mix = benign_traffic_for_port(123)
        sizes = mix.sample_sizes(rng(), 10_000)
        assert np.mean(sizes < 200) == pytest.approx(1.0, abs=0.01)

    def test_dns_busier_than_memcached(self):
        assert (
            benign_traffic_for_port(53).relative_intensity
            > benign_traffic_for_port(11211).relative_intensity
        )

    def test_unknown_port(self):
        with pytest.raises(KeyError):
            benign_traffic_for_port(4444)

    def test_benign_vs_attack_separation_ntp(self):
        """The 200-byte threshold separates benign NTP from monlist replies."""
        benign = benign_traffic_for_port(123).sample_sizes(rng(), 5000)
        attack = NTP.sample_response_sizes(rng(), 5000)
        assert (benign <= 200).all()
        assert (attack > 200).all()
