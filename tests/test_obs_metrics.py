"""Observability layer: registry, spans, merge, profile, runner wiring."""

import json
import pickle

import numpy as np
import pytest

from repro.booter.market import MarketConfig
from repro.core.parallel import day_cache
from repro.core.pipeline import TrafficSelector, collect_daily_port_series, collect_streaming
from repro.core.streaming import StreamingAnalyzer
from repro.netmodel.topology import TopologyConfig
from repro.obs import (
    Histogram,
    MetricsRegistry,
    cache_hit_rate,
    export_metrics,
    metrics,
    pool_utilization,
    render_profile,
    set_metrics,
    use_metrics,
)
from repro.scenario import Scenario, ScenarioConfig

SELECTORS = [
    TrafficSelector("ntp_to", 123, "to_reflectors"),
    TrafficSelector("ntp_from", 123, "from_reflectors"),
]


def _config(**overrides) -> ScenarioConfig:
    params = dict(
        scale=0.1,
        topology=TopologyConfig(n_tier1=3, n_tier2=10, n_stub=60),
        market=MarketConfig(daily_attacks=60.0, n_victims=300),
        pool_sizes=(
            ("ntp", 1500),
            ("dns", 1000),
            ("cldap", 400),
            ("memcached", 200),
            ("ssdp", 250),
        ),
    )
    params.update(overrides)
    return ScenarioConfig(**params)


@pytest.fixture(scope="module")
def scenario():
    return Scenario(_config())


def _deterministic(registry: MetricsRegistry) -> dict[str, float]:
    """The counter families that must not depend on jobs/cache strategy."""
    return {
        k: v
        for k, v in registry.counters.items()
        if k.startswith(("scenario.", "streaming.", "pipeline."))
    }


class TestRegistryBasics:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.inc("b", 2.5)
        assert registry.counter("a") == 5
        assert registry.counter("b") == 2.5
        assert registry.counter("missing") == 0

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.gauge("g", 3)
        registry.gauge("g", 1)
        assert registry.gauges["g"] == 1.0

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        for value in (0.0005, 0.003, 0.3, 99.0):
            registry.observe("h", value)
        histogram = registry.histograms["h"]
        assert histogram.count == 4
        assert histogram.total == pytest.approx(99.3035)
        assert sum(histogram.counts) == 4
        # The huge value lands in the final (inf) bucket.
        assert histogram.counts[-1] == 1

    def test_histogram_validation(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="bucket"):
            Histogram(buckets=())

    def test_span_tree_nesting(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
            with registry.span("inner"):
                pass
        assert registry.spans[("outer",)].calls == 1
        assert registry.spans[("outer", "inner")].calls == 2
        assert registry.spans[("outer",)].total_s >= registry.spans[("outer", "inner")].total_s

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a")
        registry.gauge("g", 1)
        registry.observe("h", 1.0)
        with registry.span("s"):
            pass
        assert not registry.counters and not registry.gauges
        assert not registry.histograms and not registry.spans

    def test_disabled_span_is_shared_noop(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.span("a") is registry.span("b")

    def test_clear(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge("g", 1)
        registry.observe("h", 1.0)
        with registry.span("s"):
            pass
        registry.clear()
        assert registry.to_dict()["counters"] == {}
        assert registry.to_dict()["spans"] == []

    def test_pickle_roundtrip_drops_open_stack(self):
        registry = MetricsRegistry()
        registry.inc("a", 3)
        with registry.span("open"):
            clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter("a") == 3
        assert clone._span_stack == []

    def test_to_dict_is_json_stable(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        registry.observe("h", 0.5)
        with registry.span("s"):
            pass
        payload = registry.to_dict()
        assert payload["schema"] == "repro.obs.metrics/1"
        assert list(payload["counters"]) == ["a", "b"]
        # inf bucket bound must survive JSON round-tripping.
        again = json.loads(json.dumps(payload))
        assert again["histograms"]["h"]["buckets"][-1] == "inf"


class TestRegistryMerge:
    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        a.gauge("g", 5)
        b.gauge("g", 7)
        a.observe("h", 0.2)
        b.observe("h", 0.4)
        with a.span("s"):
            pass
        with b.span("s"):
            pass
        a.merge(b)
        assert a.counter("c") == 5
        assert a.gauges["g"] == 7
        assert a.histograms["h"].count == 2
        assert a.spans[("s",)].calls == 2

    def test_merge_into_empty_copies(self):
        b = MetricsRegistry()
        b.inc("c", 3)
        b.observe("h", 0.4)
        with b.span("s"):
            pass
        a = MetricsRegistry()
        a.merge(b)
        assert a.to_dict()["counters"] == b.to_dict()["counters"]
        # Deep copy: mutating the merged side must not leak back.
        a.histograms["h"].observe(0.1)
        a.spans[("s",)].calls += 1
        assert b.histograms["h"].count == 1
        assert b.spans[("s",)].calls == 1

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.1, buckets=(1.0, float("inf")))
        b.observe("h", 0.1, buckets=(2.0, float("inf")))
        with pytest.raises(ValueError, match="buckets"):
            a.merge(b)


class TestActiveRegistry:
    def test_default_is_disabled(self):
        assert metrics().enabled is False

    def test_use_metrics_scopes_and_restores(self):
        registry = MetricsRegistry()
        before = metrics()
        with use_metrics(registry) as active:
            assert metrics() is registry is active
            metrics().inc("x")
        assert metrics() is before
        assert registry.counter("x") == 1

    def test_set_metrics_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            assert metrics() is registry
        finally:
            set_metrics(previous)


class TestInstrumentedPipeline:
    def test_deterministic_counters_jobs1_equals_jobs2(self, scenario):
        def run(jobs):
            day_cache().clear()
            registry = MetricsRegistry()
            with use_metrics(registry):
                series = collect_daily_port_series(
                    scenario, "ixp", SELECTORS, day_range=(40, 44), jobs=jobs
                )
                analyzer = StreamingAnalyzer(
                    SELECTORS, n_days=scenario.config.n_days, sampling_factor=10_000.0
                )
                collect_streaming(
                    scenario, "ixp", analyzer, day_range=(40, 44), jobs=jobs
                )
            return registry, series

        serial_registry, serial_series = run(1)
        parallel_registry, parallel_series = run(2)
        assert _deterministic(serial_registry) == _deterministic(parallel_registry)
        assert serial_registry.counter("scenario.days_generated") == 8
        assert serial_registry.counter("streaming.days_ingested") == 4
        np.testing.assert_array_equal(
            serial_series.get("ntp_to"), parallel_series.get("ntp_to")
        )

    def test_pool_counters_and_utilization(self, scenario):
        day_cache().clear()
        registry = MetricsRegistry()
        with use_metrics(registry):
            collect_daily_port_series(
                scenario, "ixp", SELECTORS, day_range=(40, 44), jobs=2
            )
        assert registry.counter("pool.tasks") == 4
        assert registry.gauges["pool.workers"] == 2
        assert registry.counter("pool.busy_s") > 0
        utilization = pool_utilization(registry)
        assert utilization is not None and 0 < utilization <= 1.0

    def test_cache_counters_recorded(self, scenario):
        day_cache().clear()
        registry = MetricsRegistry()
        with use_metrics(registry):
            collect_daily_port_series(
                scenario, "tier2", SELECTORS, day_range=(40, 42), cache=True
            )
            collect_daily_port_series(
                scenario, "tier2", SELECTORS, day_range=(40, 42), cache=True
            )
        assert registry.counter("cache.hits") >= 2
        assert registry.counter("cache.bytes_stored") > 0
        assert cache_hit_rate(registry) is not None
        assert registry.gauges["cache.resident_bytes"] > 0
        day_cache().clear()

    def test_cache_hits_replay_scenario_counters(self, scenario):
        """scenario.* counters are logical work: a cache-served day must
        count exactly like a regenerated one, so exports do not depend on
        what an earlier experiment happened to leave in the cache."""
        day_cache().clear()
        cold = MetricsRegistry()
        with use_metrics(cold):
            collect_daily_port_series(
                scenario, "tier2", SELECTORS, day_range=(40, 43), cache=True
            )
        warm = MetricsRegistry()
        with use_metrics(warm):
            collect_daily_port_series(
                scenario, "tier2", SELECTORS, day_range=(40, 43), cache=True
            )
        assert warm.counter("cache.hits") > 0
        # no physical generation ran (no day_traffic span), yet the logical
        # counters were replayed from the cached entries
        assert not any(p[-1] == "scenario.day_traffic" for p in warm.spans)
        assert _deterministic(warm) == _deterministic(cold)
        day_cache().clear()

    def test_streaming_counters_match_after_foreign_cache_warmup(self, scenario):
        """The fig5-after-fig4 case: one experiment warms the observed-table
        cache serially, the next streams the same days — its counters must
        equal a cold-cache streaming run of identical days."""

        def stream(cache):
            registry = MetricsRegistry()
            with use_metrics(registry):
                analyzer = StreamingAnalyzer(
                    SELECTORS, n_days=scenario.config.n_days, sampling_factor=10_000.0
                )
                collect_streaming(
                    scenario, "tier2", analyzer, day_range=(40, 43), cache=cache
                )
            return registry

        day_cache().clear()
        cold = stream(cache=False)
        warmup = MetricsRegistry()
        with use_metrics(warmup):
            collect_daily_port_series(
                scenario, "tier2", SELECTORS, day_range=(40, 43), cache=True
            )
        warm = stream(cache=True)
        assert warm.counter("cache.hits") >= 3  # served, not regenerated
        assert _deterministic(warm) == _deterministic(cold)
        day_cache().clear()

    def test_span_tree_covers_hot_path(self, scenario):
        registry = MetricsRegistry()
        with use_metrics(registry):
            collect_daily_port_series(
                scenario, "ixp", SELECTORS, day_range=(40, 42)
            )
        paths = {"/".join(p) for p in registry.spans}
        assert "pipeline.collect_daily_port_series" in paths
        assert any(p.endswith("scenario.day_traffic") for p in paths)
        assert any(p.endswith("scenario.synthesize_flows") for p in paths)

    def test_cache_hit_rate_none_without_cache_traffic(self):
        assert cache_hit_rate(MetricsRegistry()) is None
        assert pool_utilization(MetricsRegistry()) is None


class TestSummaryEdgeCases:
    """pool_utilization / cache_hit_rate outside the happy full-run path."""

    def test_empty_registry_yields_none(self):
        registry = MetricsRegistry()
        assert cache_hit_rate(registry) is None
        assert pool_utilization(registry) is None

    def test_disabled_registry_yields_none_even_after_traffic(self, scenario):
        registry = MetricsRegistry(enabled=False)
        with use_metrics(registry):
            collect_daily_port_series(scenario, "ixp", SELECTORS, day_range=(40, 41))
        assert cache_hit_rate(registry) is None
        assert pool_utilization(registry) is None

    def test_zero_task_pool_run_yields_none_not_zero_division(self):
        # A jobs>1 call whose items all came from the cache never starts
        # the pool: tasks/capacity stay zero and utilization must be None.
        registry = MetricsRegistry()
        registry.inc("pool.tasks", 0)
        registry.inc("pool.capacity_s", 0)
        registry.gauge("pool.workers", 4)
        assert pool_utilization(registry) is None

    def test_all_hits_and_all_misses_rates(self):
        hits_only = MetricsRegistry()
        hits_only.inc("cache.hits", 5)
        assert cache_hit_rate(hits_only) == 1.0
        misses_only = MetricsRegistry()
        misses_only.inc("cache.misses", 5)
        assert cache_hit_rate(misses_only) == 0.0

    def test_render_profile_handles_empty_disabled_registry(self):
        text = render_profile(MetricsRegistry(enabled=False))
        assert "(no spans recorded)" in text
        assert "hit rate" not in text and "utilization" not in text

    def test_single_day_serial_run_records_inline_pool(self, scenario):
        # jobs=2 with one item runs inline: real traffic, no workers
        # spawned — but the same pool.* counter family is recorded (with
        # one logical worker) so profiles stay comparable across modes.
        registry = MetricsRegistry()
        with use_metrics(registry):
            collect_daily_port_series(scenario, "ixp", SELECTORS, day_range=(40, 41), jobs=2)
        assert registry.counter("pipeline.days_processed") == 1
        assert registry.gauges.get("pool.workers") == 1
        assert registry.counter("pool.tasks") == 1
        assert registry.counter("pool.spawns") == 0
        assert pool_utilization(registry) == 1.0


class TestProfileAndExport:
    def _recorded(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        with registry.span("stage_a"):
            with registry.span("stage_b"):
                pass
        registry.inc("cache.hits", 3)
        registry.inc("cache.misses", 1)
        registry.inc("pool.busy_s", 1.0)
        registry.inc("pool.capacity_s", 2.0)
        registry.inc("pool.tasks", 8)
        registry.gauge("pool.workers", 2)
        return registry

    def test_render_profile_table(self):
        text = render_profile(self._recorded(), title="profile")
        assert "profile" in text
        assert "stage_a" in text and "  stage_b" in text
        assert "calls" in text and "total ms" in text
        assert "day-cache hit rate: 75.0%" in text
        assert "pool utilization: 50.0%" in text

    def test_render_profile_empty(self):
        assert "(no spans recorded)" in render_profile(MetricsRegistry())

    def test_export_metrics_schema(self, tmp_path):
        registry = self._recorded()
        out = export_metrics(
            {"fig4": registry},
            registry,
            tmp_path / "metrics.json",
            run_info={"jobs": 2},
        )
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.obs.export/1"
        assert payload["run"]["jobs"] == 2
        assert "fig4" in payload["experiments"]
        assert payload["total"]["counters"]["cache.hits"] == 3


class TestRunnerWiring:
    def test_metrics_out_writes_valid_json(self, tmp_path, capsys):
        from repro.experiments.runner import main

        out = tmp_path / "metrics.json"
        assert main(["fig2a", "--metrics-out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "fig2a profile" in captured
        assert "run profile (all experiments)" in captured
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.obs.export/1"
        assert payload["run"]["experiments"] == ["fig2a"]
        counters = payload["experiments"]["fig2a"]["counters"]
        assert counters["scenario.days_generated"] >= 1
        # The runner restores the disabled default registry afterwards.
        assert metrics().enabled is False

    def test_profile_flag_prints_table_without_export(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--profile", "--no-cache"]) == 0
        captured = capsys.readouterr().out
        assert "table1 profile" in captured
        assert "metrics written" not in captured

    def test_default_run_has_no_profile_output(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--no-cache"]) == 0
        captured = capsys.readouterr().out
        assert "profile" not in captured

    def test_experiment_config_carries_metrics_out(self):
        from repro.experiments.base import ExperimentConfig

        config = ExperimentConfig(metrics_out="m.json")
        assert config.metrics_out == "m.json"
        assert ExperimentConfig().metrics_out is None
