"""Prometheus exposition conformance: render, parse, validate, quantiles.

The contract under test is the acceptance criterion of the live
telemetry plane: everything ``/v1/metrics`` emits must parse line by
line, histogram buckets must be cumulative and monotone with
``_sum``/``_count`` consistent, and the renderer/parser pair must round
trip every value the registry holds.
"""

import math

import pytest

from repro.obs import MetricsRegistry, TraceRecorder
from repro.obs.expo import (
    EXPO_CONTENT_TYPE,
    histogram_quantile,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
    validate_exposition,
)
from repro.obs.metrics import FINE_LATENCY_BUCKETS


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry(enabled=True, trace=TraceRecorder())
    registry.inc("serve.requests", 7)
    registry.inc("serve.cache_tier.mem", 4)
    registry.inc("serve.cache_tier.compute", 3)
    registry.inc("pool.busy_s", 1.25)
    registry.gauge("pool.workers", 2)
    for value in (0.00015, 0.0003, 0.004, 0.2, 7.5, 99.0):
        registry.observe("serve.latency_s", value, buckets=FINE_LATENCY_BUCKETS)
    with registry.span("scenario.synthesize_flows", trace_args={"day": 1}):
        pass
    return registry


class TestSanitizeMetricName:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.cache_tier.mem") == "serve_cache_tier_mem"

    def test_invalid_characters_replaced(self):
        assert sanitize_metric_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_colons_preserved(self):
        assert sanitize_metric_name("job:ratio") == "job:ratio"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sanitize_metric_name("")


class TestRenderExposition:
    def test_content_type_constant(self):
        assert EXPO_CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_every_line_parses(self):
        text = render_exposition(_populated_registry()).decode()
        families = parse_exposition(text)  # raises on any malformed line
        assert "serve_requests_total" in families
        assert families["serve_requests_total"].type == "counter"

    def test_counter_and_gauge_values_round_trip(self):
        registry = _populated_registry()
        families = parse_exposition(render_exposition(registry).decode())
        assert families["serve_requests_total"].value() == 7
        assert families["pool_busy_s_total"].value() == 1.25
        assert families["pool_workers"].value() == 2
        assert families["pool_workers"].type == "gauge"

    def test_extra_gauges_ride_along(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("serve.requests")
        families = parse_exposition(
            render_exposition(
                registry, extra_gauges={"serve.uptime_s": 3.5}
            ).decode()
        )
        assert families["serve_uptime_s"].value() == 3.5

    def test_help_and_type_lines_present_for_every_family(self):
        text = render_exposition(_populated_registry()).decode()
        families = parse_exposition(text)
        for family in families.values():
            assert family.help, family.name
            assert family.type != "untyped", family.name

    def test_spans_export_as_labeled_counters(self):
        families = parse_exposition(
            render_exposition(_populated_registry()).decode()
        )
        calls = families["repro_span_calls_total"]
        assert calls.value(stage="scenario.synthesize_flows") == 1
        seconds = families["repro_span_seconds_total"].value(
            stage="scenario.synthesize_flows"
        )
        assert seconds is not None and seconds >= 0

    def test_sanitization_collision_raises(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("serve.a.b")
        registry.inc("serve.a_b")
        with pytest.raises(ValueError, match="collision"):
            render_exposition(registry)

    def test_disabled_registry_renders_empty(self):
        assert render_exposition(MetricsRegistry(enabled=False)) == b""
        assert parse_exposition("") == {}


class TestHistogramConformance:
    def test_buckets_cumulative_monotone_and_consistent(self):
        registry = _populated_registry()
        families = validate_exposition(render_exposition(registry).decode())
        latency = families["serve_latency_s"]
        buckets = [
            s for s in latency.samples if s.name == "serve_latency_s_bucket"
        ]
        counts = [s.value for s in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1].label("le") == "+Inf"
        assert buckets[-1].value == latency.value("_count") == 6
        observed_sum = latency.value("_sum")
        assert observed_sum == pytest.approx(
            registry.histograms["serve.latency_s"].total
        )

    def test_sub_millisecond_buckets_resolve_warm_latencies(self):
        registry = _populated_registry()
        families = validate_exposition(render_exposition(registry).decode())
        latency = families["serve_latency_s"]
        by_le = {
            s.label("le"): s.value
            for s in latency.samples
            if s.name == "serve_latency_s_bucket"
        }
        # The two sub-ms observations land in distinct sub-ms buckets
        # instead of collapsing into le="0.001".
        assert by_le["0.00025"] == 1
        assert by_le["0.0005"] == 2

    def test_validator_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            validate_exposition(text)

    def test_validator_rejects_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 4\n"
        )
        with pytest.raises(ValueError, match="disagrees"):
            validate_exposition(text)

    def test_validator_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.5"} 3\n'
            "h_sum 1.0\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_exposition(text)

    def test_validator_rejects_missing_sum(self):
        text = '# TYPE h histogram\nh_bucket{le="+Inf"} 1\nh_count 1\n'
        with pytest.raises(ValueError, match="_sum"):
            validate_exposition(text)


class TestParseStrictness:
    def test_sample_without_type_declaration_rejected(self):
        with pytest.raises(ValueError, match="no preceding"):
            parse_exposition("orphan_metric 1\n")

    def test_malformed_sample_line_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_exposition("# TYPE x counter\nx one\n")

    def test_duplicate_type_declaration_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            parse_exposition("# TYPE x counter\n# TYPE x counter\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_exposition("# TYPE x thingy\n")

    def test_label_escapes_round_trip(self):
        registry = MetricsRegistry(enabled=True)
        with registry.span('weird"name\\with\nescapes'):
            pass
        families = parse_exposition(render_exposition(registry).decode())
        stages = [
            s.label("stage")
            for s in families["repro_span_calls_total"].samples
        ]
        assert stages == ['weird"name\\with\nescapes']

    def test_inf_and_nan_sample_values(self):
        families = parse_exposition("# TYPE x gauge\nx +Inf\n")
        assert math.isinf(families["x"].value())


class TestHistogramQuantile:
    BUCKETS = [(0.001, 10.0), (0.01, 30.0), (0.1, 40.0), (math.inf, 40.0)]

    def test_interpolates_within_bucket(self):
        # rank 20 of 40 falls halfway into the (0.001, 0.01] bucket.
        p50 = histogram_quantile(self.BUCKETS, 0.5)
        assert p50 == pytest.approx(0.001 + (0.01 - 0.001) * 0.5)

    def test_lowest_bucket_interpolates_from_zero(self):
        p10 = histogram_quantile(self.BUCKETS, 0.1)
        assert 0 < p10 <= 0.001

    def test_inf_bucket_answers_highest_finite_bound(self):
        buckets = [(0.001, 1.0), (math.inf, 2.0)]
        assert histogram_quantile(buckets, 1.0) == 0.001

    def test_empty_histogram_returns_none(self):
        assert histogram_quantile([], 0.5) is None
        assert histogram_quantile([(math.inf, 0.0)], 0.5) is None

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantile(self.BUCKETS, 1.5)
