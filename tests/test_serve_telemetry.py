"""Live telemetry plane acceptance tests over real sockets.

The three acceptance criteria of the telemetry PR, end to end:

* ``/v1/metrics`` serves Prometheus text exposition that passes the
  strict conformance validator (every line parses, histogram buckets
  cumulative/monotone, ``_sum``/``_count`` consistent);
* a request id recorded in the JSONL access log resolves to pool-worker
  spans in the exported Perfetto trace (the id crosses the serve →
  single-flight → workerpool boundary);
* the deterministic-counter drift digest is byte-identical with full
  telemetry on vs off, and so are the payload bytes.

Plus the middleware satellites: extended ``/v1/health``, ``X-Request-Id``
echo, SSE heartbeats, and the ``repro-obs top`` dashboard against a live
server.
"""

import asyncio
import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.parallel import day_cache
from repro.core.workerpool import shutdown_pool
from repro.experiments.base import ExperimentConfig
from repro.obs import (
    MetricsRegistry,
    TraceRecorder,
    chrome_trace_events,
    counter_digest,
    use_metrics,
    validate_exposition,
)
from repro.obs import cli as obs_cli
from repro.serve import routes as routes_module
from repro.serve.routes import ServerState
from repro.serve.server import AccessLog, ObservatoryServer
from repro.serve.service import ObservatoryService

SERIES_QUERY = "/v1/series/takedown?start=2018-12-17&end=2018-12-21"


def _config(executor: str = "inline", jobs: int = 1) -> ExperimentConfig:
    return ExperimentConfig(preset="small", seed=2018, jobs=jobs, executor=executor)


@pytest.fixture(autouse=True)
def _fresh_day_cache():
    """Every test starts cold: the day cache is a process-wide singleton."""
    day_cache().clear()
    day_cache().attach_disk(None)
    yield
    day_cache().clear()
    day_cache().attach_disk(None)
    shutdown_pool()


@contextlib.contextmanager
def _live_server(config: ExperimentConfig | None = None, **server_kwargs):
    """Boot a server in a background thread; yield its base URL."""
    service = ObservatoryService(config or _config())
    started = threading.Event()
    holder: dict = {}

    async def run() -> None:
        server = ObservatoryServer(service, **server_kwargs)
        await server.start()
        holder["loop"] = asyncio.get_running_loop()
        holder["port"] = server.port
        holder["server"] = server
        forever = asyncio.ensure_future(server.serve_forever())
        holder["task"] = forever
        started.set()
        try:
            await forever
        except asyncio.CancelledError:
            pass
        finally:
            await server.aclose()

    thread = threading.Thread(target=lambda: asyncio.run(run()), daemon=True)
    thread.start()
    assert started.wait(60), "server failed to start"
    try:
        yield f"http://127.0.0.1:{holder['port']}", holder["server"]
    finally:
        holder["loop"].call_soon_threadsafe(holder["task"].cancel)
        thread.join(30)


def _get(url: str, headers: dict | None = None) -> tuple[int, dict, bytes]:
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, dict(response.headers), response.read()


class TestMetricsEndpoint:
    def test_exposition_conformance_over_a_real_socket(self):
        registry = MetricsRegistry(enabled=True)
        with use_metrics(registry), _live_server() as (base, _):
            _get(f"{base}/v1/health")
            _get(f"{base}/v1/days/2018-12-18")
            status, headers, body = _get(f"{base}/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        families = validate_exposition(body.decode())
        assert families["serve_requests_total"].value() >= 2
        assert families["serve_latency_s"].type == "histogram"
        # The rolling-window gauges ride along from the server state.
        assert "serve_uptime_s" in families
        assert "serve_window_rps_1m" in families

    def test_scrape_safe_with_disabled_registry(self):
        with _live_server() as (base, _):
            status, _, body = _get(f"{base}/v1/metrics")
        assert status == 200
        validate_exposition(body.decode())  # may be empty, must be valid


class TestHealthExtensions:
    def test_health_reports_uptime_version_connections_and_slo(self):
        with _live_server() as (base, _):
            _get(f"{base}/v1/health")  # prime the rolling window
            _, _, body = _get(f"{base}/v1/health")
        payload = json.loads(body)
        from repro import __version__

        assert payload["version"] == __version__
        assert payload["uptime_seconds"] >= 0
        assert payload["started_at"].endswith("Z")
        assert payload["active_connections"] >= 1  # this very request
        assert set(payload["slo"]) == {"1m", "5m"}
        assert payload["slo"]["1m"]["requests"] >= 1
        assert payload["slo"]["1m"]["error_rate"] == 0


class TestRequestIds:
    def test_every_response_carries_a_request_id(self):
        with _live_server() as (base, _):
            _, first, _ = _get(f"{base}/v1/health")
            _, second, _ = _get(f"{base}/v1/health")
        assert first["X-Request-Id"]
        assert second["X-Request-Id"]
        assert first["X-Request-Id"] != second["X-Request-Id"]

    def test_client_supplied_id_is_honored(self):
        with _live_server() as (base, _):
            _, headers, _ = _get(
                f"{base}/v1/health", headers={"X-Request-Id": "my-trace-0042"}
            )
        assert headers["X-Request-Id"] == "my-trace-0042"

    def test_malformed_client_id_is_replaced(self):
        with _live_server() as (base, _):
            _, headers, _ = _get(
                f"{base}/v1/health", headers={"X-Request-Id": "bad id with spaces"}
            )
        assert headers["X-Request-Id"] != "bad id with spaces"


class TestAccessLog:
    def test_one_wellformed_line_per_request(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        with _live_server(access_log=AccessLog(log_path)) as (base, _):
            _, headers, _ = _get(f"{base}/v1/health")
            _get(f"{base}/v1/config")
        lines = [json.loads(l) for l in log_path.read_text().splitlines()]
        assert len(lines) == 2
        by_target = {line["target"]: line for line in lines}
        health = by_target["/v1/health"]
        assert health["request_id"] == headers["X-Request-Id"]
        assert health["status"] == 200
        assert health["method"] == "GET"
        assert health["latency_ms"] >= 0
        assert health["bytes"] > 0
        assert health["client"] == "127.0.0.1"

    def test_rotates_by_size_with_no_partial_lines(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        log = AccessLog(log_path, max_bytes=400)
        try:
            for i in range(50):
                log.write({"request_id": f"req-{i:04d}", "status": 200})
        finally:
            log.close()
        assert log.rotations > 0
        rotated = log_path.with_name(log_path.name + ".1")
        assert rotated.exists()
        # Every surviving line is complete, parseable JSON...
        current = [json.loads(l) for l in log_path.read_text().splitlines()]
        previous = [json.loads(l) for l in rotated.read_text().splitlines()]
        assert current and previous
        # ...files respect the byte bound (a single line may start a file)...
        assert len(log_path.read_bytes()) <= 400
        assert len(rotated.read_bytes()) <= 400
        # ...and the two generations hold the most recent contiguous tail.
        ids = [line["request_id"] for line in previous + current]
        assert ids == [f"req-{i:04d}" for i in range(50 - len(ids), 50)]

    def test_unbounded_by_default_and_rejects_negative(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        log = AccessLog(log_path)
        try:
            for i in range(100):
                log.write({"request_id": i})
        finally:
            log.close()
        assert log.rotations == 0
        assert not log_path.with_name(log_path.name + ".1").exists()
        assert len(log_path.read_text().splitlines()) == 100
        with pytest.raises(ValueError):
            AccessLog(log_path, max_bytes=-1)

    def test_rotation_preserves_size_accounting_across_reopen(self, tmp_path):
        """A reopened log appends (tell() seeds the size), then rotates."""
        log_path = tmp_path / "access.jsonl"
        first = AccessLog(log_path, max_bytes=200)
        first.write({"request_id": "old-0"})
        first.close()
        log = AccessLog(log_path, max_bytes=200)
        try:
            for i in range(20):
                log.write({"request_id": f"new-{i}"})
        finally:
            log.close()
        assert log.rotations > 0
        assert len(log_path.read_bytes()) <= 200


class TestRequestTraceCorrelation:
    """Acceptance: an access-log request id resolves to pool-worker spans."""

    def test_access_log_id_reaches_pool_worker_spans(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        registry = MetricsRegistry(enabled=True, trace=TraceRecorder())
        config = _config(executor="thread", jobs=2)
        with use_metrics(registry):
            with _live_server(config, access_log=AccessLog(log_path)) as (base, _):
                status, headers, _ = _get(base + SERIES_QUERY)
        assert status == 200
        request_id = headers["X-Request-Id"]
        log_line = json.loads(log_path.read_text().splitlines()[0])
        assert log_line["request_id"] == request_id

        events = chrome_trace_events(registry.trace)
        tagged = [
            e for e in events if e.get("args", {}).get("request_id") == request_id
        ]
        names = {e["name"] for e in tagged}
        # The exchange event itself...
        assert "serve.request" in names
        # ...and spans that ran inside pool worker threads: the id
        # crossed the serve -> single-flight -> workerpool boundary.
        worker_names = {n for n in names if n.startswith(("scenario.", "streaming."))}
        assert worker_names, f"no pool-worker spans carried {request_id}: {names}"
        exchange = next(e for e in tagged if e["name"] == "serve.request")
        assert exchange["args"]["status"] == 200
        assert exchange["args"]["path"] == "/v1/series/takedown"
        # Worker spans really ran on other threads than the exchange loop.
        worker_tids = {
            e["tid"] for e in tagged if e["name"] in worker_names
        }
        assert worker_tids - {exchange["tid"]}


class TestDigestUnchangedByTelemetry:
    """Acceptance: the drift digest is identical with telemetry on vs off."""

    def test_digest_and_payload_bytes_identical(self, tmp_path):
        results = {}
        for mode in ("off", "on"):
            day_cache().clear()
            shutdown_pool()
            registry = (
                MetricsRegistry(enabled=True, trace=TraceRecorder())
                if mode == "on"
                else MetricsRegistry(enabled=True)
            )
            kwargs = (
                {"access_log": AccessLog(tmp_path / "on.jsonl")}
                if mode == "on"
                else {"state": ServerState(windows=None)}
            )
            with use_metrics(registry):
                with _live_server(_config(), **kwargs) as (base, _):
                    _, _, body = _get(base + SERIES_QUERY)
            results[mode] = (counter_digest(registry.counters), body)
        assert results["on"][0] == results["off"][0]
        assert results["on"][1] == results["off"][1]


class TestSseHeartbeat:
    def test_idle_stream_emits_comment_heartbeats(self, monkeypatch):
        monkeypatch.setattr(routes_module, "SSE_HEARTBEAT_S", 0.05)

        def slow_events(self, day):
            time.sleep(0.35)
            return []

        monkeypatch.setattr(ObservatoryService, "day_events_payload", slow_events)
        with _live_server() as (base, _):
            _, _, body = _get(
                f"{base}/v1/events/stream?start=2018-12-18&end=2018-12-18"
            )
        text = body.decode()
        assert text.count(": heartbeat") >= 2
        assert "event: end" in text


class TestTopDashboard:
    def test_renders_live_frames_and_exits_clean(self, capsys):
        registry = MetricsRegistry(enabled=True)
        with use_metrics(registry), _live_server() as (base, _):
            _get(f"{base}/v1/health")
            code = obs_cli.main(
                ["top", base, "--iterations", "2", "--interval", "0.1", "--no-clear"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro observatory" in out
        assert "traffic" in out and "cache tiers" in out and "pool" in out
        assert out.count("latency") == 2  # one frame per iteration

    def test_unreachable_server_exits_with_error(self):
        code = obs_cli.main(
            ["top", "http://127.0.0.1:9/", "--iterations", "1", "--timeout", "0.5"]
        )
        assert code == obs_cli.EXIT_ERROR
