"""Tests for the persistent on-disk day cache."""

import json

import numpy as np
import pytest

from repro.core.diskcache import SIDECAR_SCHEMA, DiskDayCache, key_digest
from repro.core.parallel import DayResultCache
from repro.flows.binio import HEADER
from repro.flows.records import SCHEMA, FlowTable
from repro.obs import MetricsRegistry, use_metrics


def make_table(n, seed=0):
    rng = np.random.default_rng(seed)
    return FlowTable(
        {
            "time": rng.uniform(0, 86400, n),
            "src_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
            "dst_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
            "proto": np.full(n, 17, dtype=np.uint8),
            "src_port": np.full(n, 123, dtype=np.uint16),
            "dst_port": rng.integers(1024, 65536, n).astype(np.uint16),
            "packets": rng.integers(1, 10**6, n),
            "bytes": rng.integers(64, 10**9, n),
            "src_asn": rng.integers(-1, 1 << 30, n),
            "dst_asn": rng.integers(-1, 1 << 30, n),
            "peer_asn": rng.integers(-1, 1 << 30, n),
        }
    )


KEY = ("observed", "cfg-hash", "takedown-repr", "ixp", 3, True, None)
DELTAS = {"scenario.days_generated": 1, "scenario.flows_generated": 1234.0}


class TestRoundtrip:
    def test_table_roundtrip_bit_identical(self, tmp_path):
        cache = DiskDayCache(tmp_path)
        table = make_table(200, seed=1)
        assert cache.put(KEY, (table, DELTAS))
        value, deltas = cache.get(KEY)
        for name in SCHEMA:
            np.testing.assert_array_equal(table[name], value[name], err_msg=name)
            assert value[name].dtype == table[name].dtype, name
        assert deltas == DELTAS
        # ints stay ints, floats stay floats: the counter digest
        # distinguishes 1 from 1.0, so replay must preserve types.
        assert isinstance(deltas["scenario.days_generated"], int)
        assert isinstance(deltas["scenario.flows_generated"], float)

    def test_persists_across_instances(self, tmp_path):
        DiskDayCache(tmp_path).put(KEY, (make_table(50), None))
        reopened = DiskDayCache(tmp_path)
        assert len(reopened) == 1
        value, deltas = reopened.get(KEY)
        assert len(value) == 50 and deltas is None

    def test_empty_table(self, tmp_path):
        cache = DiskDayCache(tmp_path)
        assert cache.put(KEY, (FlowTable.empty(), None))
        value, _ = cache.get(KEY)
        assert isinstance(value, FlowTable) and len(value) == 0

    def test_json_value_roundtrip(self, tmp_path):
        cache = DiskDayCache(tmp_path)
        counts = {"ntp_to": 123456, "dns_from": 0}
        assert cache.put(KEY, (counts, DELTAS))
        value, deltas = cache.get(KEY)
        assert value == counts
        assert all(isinstance(v, int) for v in value.values())
        assert deltas == DELTAS

    def test_miss_returns_none(self, tmp_path):
        cache = DiskDayCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.stats()["misses"] == 1


class TestDeclinedValues:
    def test_non_tuple_declined(self, tmp_path):
        assert not DiskDayCache(tmp_path).put(KEY, make_table(5))

    def test_json_distorting_values_declined(self, tmp_path):
        cache = DiskDayCache(tmp_path)
        assert not cache.put(KEY, (object(), None))
        assert not cache.put(KEY, ({"a": (1, 2)}, None))  # tuple -> list
        assert not cache.put(KEY, ({"a": np.int64(3)}, None))  # numpy scalar
        assert len(cache) == 0

    def test_wide_asn_table_declined(self, tmp_path):
        cache = DiskDayCache(tmp_path)
        table = make_table(5).with_columns(src_asn=np.full(5, 2**40))
        assert not cache.put(KEY, (table, None))
        assert len(cache) == 0


class TestCorruption:
    def _store(self, tmp_path, n=40):
        cache = DiskDayCache(tmp_path)
        cache.put(KEY, (make_table(n, seed=2), DELTAS))
        digest = key_digest(KEY)
        return cache, tmp_path / f"{digest}.rfl", tmp_path / f"{digest}.json"

    def _assert_corrupt_miss(self, cache, data_path, sidecar_path):
        registry = MetricsRegistry(enabled=True)
        with use_metrics(registry):
            assert cache.get(KEY) is None
        assert cache.corrupt == 1
        assert registry.counter("cache.disk_corrupt") == 1
        assert registry.counter("cache.disk_misses") == 1
        assert not data_path.exists() and not sidecar_path.exists()

    def test_flipped_magic(self, tmp_path):
        cache, data, sidecar = self._store(tmp_path)
        raw = bytearray(data.read_bytes())
        raw[0] ^= 0xFF
        data.write_bytes(bytes(raw))
        self._assert_corrupt_miss(cache, data, sidecar)

    def test_truncated_payload(self, tmp_path):
        cache, data, sidecar = self._store(tmp_path)
        data.write_bytes(data.read_bytes()[:-13])
        self._assert_corrupt_miss(cache, data, sidecar)

    def test_sha_mismatch(self, tmp_path):
        cache, data, sidecar = self._store(tmp_path)
        raw = bytearray(data.read_bytes())
        raw[-1] ^= 0x01
        data.write_bytes(bytes(raw))
        self._assert_corrupt_miss(cache, data, sidecar)

    def test_mangled_sidecar_json(self, tmp_path):
        cache, data, sidecar = self._store(tmp_path)
        sidecar.write_text("{not json")
        self._assert_corrupt_miss(cache, data, sidecar)

    def test_schema_version_mismatch(self, tmp_path):
        cache, data, sidecar = self._store(tmp_path)
        payload = json.loads(sidecar.read_text())
        payload["schema"] = "repro.diskcache/0"
        sidecar.write_text(json.dumps(payload))
        self._assert_corrupt_miss(cache, data, sidecar)

    def test_key_repr_mismatch(self, tmp_path):
        cache, data, sidecar = self._store(tmp_path)
        payload = json.loads(sidecar.read_text())
        payload["key"] = repr(("other", "key"))
        sidecar.write_text(json.dumps(payload))
        self._assert_corrupt_miss(cache, data, sidecar)

    def test_missing_sidecar(self, tmp_path):
        cache, data, sidecar = self._store(tmp_path)
        sidecar.unlink()
        self._assert_corrupt_miss(cache, data, sidecar)

    def test_corruption_never_raises_from_get(self, tmp_path):
        cache, data, _ = self._store(tmp_path)
        data.write_bytes(b"garbage")
        assert cache.get(KEY) is None  # no exception


class TestEviction:
    def _key(self, i):
        return ("observed", "cfg", "td", "ixp", i, True, None)

    def test_evicts_lru_by_bytes(self, tmp_path):
        entry_size = HEADER.size + 100 * 50
        cache = DiskDayCache(tmp_path, max_bytes=3 * entry_size)
        for i in range(5):
            assert cache.put(self._key(i), (make_table(100, seed=i), None))
        assert cache.evictions == 2
        assert len(cache) == 3
        assert cache.resident_bytes <= 3 * entry_size
        assert cache.get(self._key(0)) is None  # oldest, evicted
        assert cache.get(self._key(4)) is not None  # newest, kept

    def test_newest_entry_always_survives(self, tmp_path):
        cache = DiskDayCache(tmp_path, max_bytes=1)  # below any entry size
        assert cache.put(self._key(0), (make_table(10), None))
        assert len(cache) == 1
        assert cache.get(self._key(0)) is not None

    def test_hit_refreshes_lru_position(self, tmp_path):
        entry_size = HEADER.size + 100 * 50
        cache = DiskDayCache(tmp_path, max_bytes=3 * entry_size)
        for i in range(3):
            cache.put(self._key(i), (make_table(100, seed=i), None))
        assert cache.get(self._key(0)) is not None  # touch oldest
        cache.put(self._key(3), (make_table(100, seed=3), None))
        assert cache.get(self._key(1)) is None  # evicted instead of 0
        assert cache.get(self._key(0)) is not None

    def test_clear(self, tmp_path):
        cache = DiskDayCache(tmp_path)
        cache.put(self._key(0), (make_table(10), None))
        cache.clear()
        assert len(cache) == 0
        assert cache.resident_bytes == 0
        assert not list(tmp_path.glob("*.rfl"))

    def test_bad_max_bytes(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            DiskDayCache(tmp_path, max_bytes=0)


class TestDayResultCacheIntegration:
    def test_memory_miss_promotes_from_disk(self, tmp_path):
        disk = DiskDayCache(tmp_path)
        first = DayResultCache()
        first.attach_disk(disk)
        table = make_table(80, seed=7)
        first.put(KEY, (table, DELTAS))

        second = DayResultCache()
        second.attach_disk(disk)
        entry = second.get(KEY)
        assert entry is not None
        value, deltas = entry
        for name in SCHEMA:
            np.testing.assert_array_equal(table[name], value[name], err_msg=name)
        assert deltas == DELTAS
        assert disk.hits == 1
        # Promoted: the next lookup is served from memory.
        assert second.get(KEY) is entry or second.get(KEY) == entry
        assert disk.hits == 1

    def test_detach(self, tmp_path):
        cache = DayResultCache()
        cache.attach_disk(DiskDayCache(tmp_path))
        cache.attach_disk(None)
        assert cache.get(KEY) is None
        assert "disk" not in cache.stats()

    def test_stats_nest_disk_tier(self, tmp_path):
        cache = DayResultCache()
        cache.attach_disk(DiskDayCache(tmp_path))
        stats = cache.stats()
        assert stats["disk"]["entries"] == 0
        assert stats["disk"]["corrupt"] == 0
