"""Property-based tests (hypothesis) of the two merge protocols.

The parallel executor is only correct if merging per-chunk accumulators
over *any* partition of the day range, in *any* order, reproduces the
one-pass result. That law is asserted here for both protocols:

* :meth:`repro.core.streaming.StreamingAnalyzer.merge` — commutative,
  associative, and partition-invariant over randomized day partitions;
* :meth:`repro.obs.MetricsRegistry.merge` — the same laws for counters,
  histograms, and span stats (gauges merge by max, which is commutative
  and associative but deliberately *not* partition-invariant against
  sequential last-write-wins, so partitions only draw the other kinds).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.booter.market import MarketConfig
from repro.core.pipeline import TrafficSelector
from repro.core.streaming import StreamingAnalyzer
from repro.netmodel.topology import TopologyConfig
from repro.obs import MetricsRegistry
from repro.scenario import Scenario, ScenarioConfig

slow_settings = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

SELECTORS = [
    TrafficSelector("ntp_to", 123, "to_reflectors"),
    TrafficSelector("ntp_from", 123, "from_reflectors"),
]
DAYS = list(range(40, 46))


@pytest.fixture(scope="module")
def observed_tables():
    """One observed table per day, generated once for every example."""
    scenario = Scenario(
        ScenarioConfig(
            scale=0.1,
            topology=TopologyConfig(n_tier1=3, n_tier2=10, n_stub=60),
            market=MarketConfig(daily_attacks=60.0, n_victims=300),
            pool_sizes=(
                ("ntp", 1500),
                ("dns", 1000),
                ("cldap", 400),
                ("memcached", 200),
                ("ssdp", 250),
            ),
        )
    )
    return {
        day: scenario.observe_day("ixp", scenario.day_traffic(day)) for day in DAYS
    }, scenario.config.n_days


def _fresh(n_days: int) -> StreamingAnalyzer:
    return StreamingAnalyzer(SELECTORS, n_days=n_days, sampling_factor=10_000.0)


def _ingested(days, tables, n_days) -> StreamingAnalyzer:
    analyzer = _fresh(n_days)
    for day in days:
        analyzer.ingest_day(day, tables[day])
    return analyzer


def _assert_analyzers_equal(a: StreamingAnalyzer, b: StreamingAnalyzer) -> None:
    for name in ("ntp_to", "ntp_from"):
        np.testing.assert_array_equal(a.daily_series(name), b.daily_series(name))
    np.testing.assert_array_equal(a.hourly_attacks, b.hourly_attacks)
    sa, sb = a.victim_stats(), b.victim_stats()
    np.testing.assert_array_equal(sa.destinations, sb.destinations)
    np.testing.assert_array_equal(sa.peak_bps, sb.peak_bps)
    np.testing.assert_array_equal(sa.unique_sources_estimate, sb.unique_sources_estimate)
    np.testing.assert_array_equal(sa.total_packets, sb.total_packets)


@st.composite
def day_partitions(draw):
    """A shuffled partition of a random non-empty subset of DAYS."""
    days = draw(
        st.lists(st.sampled_from(DAYS), min_size=1, max_size=len(DAYS), unique=True)
    )
    n_groups = draw(st.integers(min_value=1, max_value=len(days)))
    assignment = [draw(st.integers(min_value=0, max_value=n_groups - 1)) for _ in days]
    groups = [[] for _ in range(n_groups)]
    for day, group in zip(days, assignment):
        groups[group].append(day)
    return days, [g for g in groups if g]


class TestStreamingAnalyzerMergeLaws:
    @slow_settings
    @given(partition=day_partitions())
    def test_any_partition_merges_to_one_pass(self, observed_tables, partition):
        tables, n_days = observed_tables
        days, groups = partition
        one_pass = _ingested(sorted(days), tables, n_days)
        merged = _ingested(groups[0], tables, n_days)
        for group in groups[1:]:
            merged.merge(_ingested(group, tables, n_days))
        _assert_analyzers_equal(one_pass, merged)

    @slow_settings
    @given(split=st.integers(min_value=1, max_value=len(DAYS) - 1))
    def test_merge_commutes(self, observed_tables, split):
        tables, n_days = observed_tables
        left_days, right_days = DAYS[:split], DAYS[split:]
        ab = _ingested(left_days, tables, n_days).merge(
            _ingested(right_days, tables, n_days)
        )
        ba = _ingested(right_days, tables, n_days).merge(
            _ingested(left_days, tables, n_days)
        )
        _assert_analyzers_equal(ab, ba)

    @slow_settings
    @given(
        cuts=st.tuples(
            st.integers(min_value=1, max_value=len(DAYS) - 2),
            st.integers(min_value=1, max_value=len(DAYS) - 2),
        )
    )
    def test_merge_associates(self, observed_tables, cuts):
        tables, n_days = observed_tables
        first = min(cuts)
        second = max(cuts) + 1
        parts = [DAYS[:first], DAYS[first:second], DAYS[second:]]
        parts = [p for p in parts if p]

        def build(i):
            return _ingested(parts[i], tables, n_days)

        if len(parts) < 3:
            left = build(0).merge(build(1))
            right = build(0).merge(build(1))
        else:
            left = build(0).merge(build(1)).merge(build(2))
            right = build(0).merge(build(1).merge(build(2)))
        _assert_analyzers_equal(left, right)


# -- MetricsRegistry ----------------------------------------------------------

_NAMES = ("alpha", "beta", "gamma")
_BUCKETS = (1.0, 10.0, float("inf"))

counter_ops = st.tuples(
    st.just("inc"), st.sampled_from(_NAMES), st.integers(min_value=0, max_value=1000)
)
histogram_ops = st.tuples(
    st.just("observe"), st.sampled_from(_NAMES), st.integers(min_value=0, max_value=20)
)
span_ops = st.tuples(
    st.just("span"), st.sampled_from(_NAMES), st.just(0)
)
partition_safe_ops = st.lists(
    st.one_of(counter_ops, histogram_ops, span_ops), max_size=40
)
gauge_ops = st.tuples(
    st.just("gauge"), st.sampled_from(_NAMES), st.integers(min_value=0, max_value=1000)
)
all_ops = st.lists(
    st.one_of(counter_ops, histogram_ops, span_ops, gauge_ops), max_size=40
)


def _apply(ops) -> MetricsRegistry:
    registry = MetricsRegistry()
    for kind, name, value in ops:
        if kind == "inc":
            registry.inc(name, value)
        elif kind == "observe":
            registry.observe(name, value, buckets=_BUCKETS)
        elif kind == "gauge":
            registry.gauge(name, value)
        else:
            with registry.span(name):
                pass
    return registry


def _comparable(registry: MetricsRegistry) -> dict:
    """to_dict with span timings dropped (wall time is never mergeable)."""
    payload = registry.to_dict()
    for span in payload["spans"]:
        del span["total_s"]
    return payload


class TestMetricsRegistryMergeLaws:
    @settings(max_examples=50, deadline=None)
    @given(ops_a=all_ops, ops_b=all_ops)
    def test_merge_commutes(self, ops_a, ops_b):
        ab = _apply(ops_a).merge(_apply(ops_b))
        ba = _apply(ops_b).merge(_apply(ops_a))
        assert _comparable(ab) == _comparable(ba)

    @settings(max_examples=50, deadline=None)
    @given(ops_a=all_ops, ops_b=all_ops, ops_c=all_ops)
    def test_merge_associates(self, ops_a, ops_b, ops_c):
        left = _apply(ops_a).merge(_apply(ops_b)).merge(_apply(ops_c))
        right = _apply(ops_a).merge(_apply(ops_b).merge(_apply(ops_c)))
        assert _comparable(left) == _comparable(right)

    @settings(max_examples=50, deadline=None)
    @given(ops=all_ops)
    def test_empty_registry_is_identity(self, ops):
        one = _apply(ops)
        merged = MetricsRegistry().merge(_apply(ops))
        assert _comparable(merged) == _comparable(one)
        absorbed = _apply(ops).merge(MetricsRegistry())
        assert _comparable(absorbed) == _comparable(one)

    @settings(max_examples=50, deadline=None)
    @given(
        ops=partition_safe_ops,
        assignment=st.lists(st.integers(min_value=0, max_value=3), max_size=40),
    )
    def test_any_partition_merges_to_one_pass(self, ops, assignment):
        one_pass = _apply(ops)
        groups = [[] for _ in range(4)]
        for i, op in enumerate(ops):
            groups[assignment[i] if i < len(assignment) else 0].append(op)
        merged = MetricsRegistry()
        for group in groups:
            merged.merge(_apply(group))
        assert _comparable(merged) == _comparable(one_pass)
