"""Route-level guarantees of the observatory server.

Three pillars:

* **Byte determinism** — ``/v1/series/takedown`` answers with identical
  bytes whichever executor computed it (inline/thread/process) and
  whichever tier served it (cold compute vs disk-warm), pinned against
  a committed golden digest like the experiment outputs are.
* **Single-flight coalescing** — the acceptance property: 100 concurrent
  clients asking for the same uncomputed day cost exactly one pipeline
  run (``serve.cache_tier.compute == 1``, ``serve.singleflight_hits ==
  99``) and receive bit-identical payloads; plus a hypothesis property
  over arbitrary waiter counts.
* **Concurrency safety** — hammering distinct-date requests through
  parallel compute slots exercises the day-cache and disk-cache locks
  end to end.

Refresh the golden after an intentional behaviour change with::

    PYTHONPATH=src python -m pytest tests/test_serve_routes.py --update-goldens
"""

import asyncio
import hashlib
import json
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diskcache import DiskDayCache
from repro.core.parallel import day_cache
from repro.core.workerpool import shutdown_pool
from repro.experiments.base import ExperimentConfig
from repro.obs import MetricsRegistry, metrics, use_metrics
from repro.serve.routes import ServeContext, cached_payload_bytes
from repro.serve.server import ObservatoryServer
from repro.serve.service import ObservatoryService
from repro.timeutil import date_of

GOLDEN_PATH = Path(__file__).parent / "goldens" / "serve_small.json"

#: The series range under test: the 5 days straddling the takedown.
SERIES_QUERY = "/v1/series/takedown?start=2018-12-17&end=2018-12-21"


def _config(executor: str = "inline", jobs: int = 1) -> ExperimentConfig:
    return ExperimentConfig(preset="small", seed=2018, jobs=jobs, executor=executor)


async def _http_get(port: int, path: str) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n".encode())
        await writer.drain()
        head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), 30)
        status = int(head.split(b"\r\n")[0].split(b" ")[1])
        length = None
        for line in head.split(b"\r\n")[1:]:
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        if length is not None:
            body = await asyncio.wait_for(reader.readexactly(length), 30)
        else:
            body = await asyncio.wait_for(reader.read(-1), 30)  # SSE: until EOF
        return status, body
    finally:
        writer.close()


def _fetch_series_bytes(config: ExperimentConfig) -> bytes:
    """Boot a server for ``config``, GET the series, tear down."""

    async def run() -> bytes:
        service = ObservatoryService(config)
        server = ObservatoryServer(service, compute_slots=1)
        await server.start()
        try:
            status, body = await _http_get(server.port, SERIES_QUERY)
            assert status == 200, body
            return body
        finally:
            await server.aclose()

    try:
        return asyncio.run(run())
    finally:
        shutdown_pool()


@pytest.fixture(scope="module")
def service():
    """One built small-preset service shared by the in-module tests."""
    return ObservatoryService(_config())


@pytest.fixture(autouse=True)
def _fresh_day_cache():
    """Every test starts cold: the day cache is a process-wide singleton."""
    day_cache().clear()
    day_cache().attach_disk(None)
    yield
    day_cache().clear()
    day_cache().attach_disk(None)


class TestSeriesByteDeterminism:
    def test_identical_across_executors_and_tiers_and_matches_golden(
        self, tmp_path, update_goldens
    ):
        payloads: dict[str, bytes] = {}
        for executor, jobs in (("inline", 1), ("thread", 2), ("process", 2)):
            day_cache().clear()
            payloads[executor] = _fetch_series_bytes(_config(executor, jobs))

        assert payloads["inline"] == payloads["thread"] == payloads["process"]

        # Cold vs disk-warm through the durable tier: fill the disk from
        # memory-cold, then drop memory so only disk can answer.
        disk = DiskDayCache(tmp_path / "daycache")
        day_cache().clear()
        day_cache().attach_disk(disk)
        cold = _fetch_series_bytes(_config())
        day_cache().clear()
        before_disk_hits = disk.hits
        warm = _fetch_series_bytes(_config())
        assert cold == warm == payloads["inline"]
        assert disk.hits > before_disk_hits, "warm run never touched the disk tier"

        digest = hashlib.sha256(payloads["inline"]).hexdigest()
        snapshot = {
            "query": SERIES_QUERY,
            "series_payload_sha256": digest,
            "scenario_config_hash": _config().scenario_config().content_hash(),
        }
        if update_goldens:
            GOLDEN_PATH.parent.mkdir(exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
            )
            pytest.skip(f"goldens rewritten at {GOLDEN_PATH}; commit the file")
        assert GOLDEN_PATH.exists(), (
            f"{GOLDEN_PATH} is missing; generate it with "
            "`python -m pytest tests/test_serve_routes.py --update-goldens`"
        )
        golden = json.loads(GOLDEN_PATH.read_text())
        assert golden == snapshot, (
            "serve payload drifted from the committed golden; if the "
            "change is intentional, refresh with --update-goldens"
        )

    def test_analysis_window_rides_on_the_series(self, service):
        payload = service.series_payload(
            "2018-12-09", "2018-12-29", None, "ntp_to", "10"
        )
        analysis = payload["analysis"]["ntp_to"]
        assert analysis["window"] == 10
        assert isinstance(analysis["significant"], bool)
        assert 0.0 <= analysis["reduction_ratio"] <= 1.0


class TestSingleFlightAcceptance:
    N_CLIENTS = 100

    def test_100_concurrent_clients_one_compute(self, service):
        """The acceptance property, end to end over real sockets."""
        registry = MetricsRegistry(enabled=True)
        date = str(date_of(service.scenario_config.takedown_day + 3))

        async def run() -> list[bytes]:
            server = ObservatoryServer(service, compute_slots=1)
            await server.start()
            try:
                async def client() -> bytes:
                    status, body = await _http_get(server.port, f"/v1/days/{date}")
                    assert status == 200
                    return body

                return await asyncio.gather(
                    *(client() for _ in range(self.N_CLIENTS))
                )
            finally:
                await server.aclose()

        with use_metrics(registry):
            bodies = asyncio.run(run())

        assert len(bodies) == self.N_CLIENTS
        assert len(set(bodies)) == 1, "coalesced clients saw different bytes"
        assert registry.counter("serve.cache_tier.compute") == 1
        assert registry.counter("serve.singleflight_hits") == self.N_CLIENTS - 1
        assert registry.counter("serve.singleflight_leaders") == 1
        assert registry.counter("serve.requests") == self.N_CLIENTS
        payload = json.loads(bodies[0])
        assert payload["date"] == date
        assert payload["observed"]["flows"] > 0

    @given(k=st.integers(min_value=2, max_value=50))
    @settings(deadline=None, max_examples=20)
    def test_k_waiters_one_compute_property(self, k):
        """Hypothesis: any K concurrent waiters -> 1 compute, K equal payloads."""
        registry = MetricsRegistry(enabled=True)

        async def run() -> list[bytes]:
            ctx = ServeContext(service=None)
            release = threading.Event()

            def fn():
                metrics().inc("serve.cache_tier.compute")
                # Hold the leader open until every waiter has joined the
                # flight, so coalescing is deterministic, not timing luck.
                release.wait(10)
                return {"answer": 42}

            tasks = [
                asyncio.create_task(cached_payload_bytes(ctx, ("k",), fn))
                for _ in range(k)
            ]
            while registry.counter("serve.singleflight_hits") < k - 1:
                await asyncio.sleep(0.001)
            release.set()
            return await asyncio.gather(*tasks)

        with use_metrics(registry):
            results = asyncio.run(run())

        assert len(set(results)) == 1
        assert results[0] == b'{"answer":42}'
        assert registry.counter("serve.cache_tier.compute") == 1
        assert registry.counter("serve.singleflight_leaders") == 1
        assert registry.counter("serve.singleflight_hits") == k - 1


class TestConcurrentDistinctDates:
    def test_parallel_compute_slots_hammer_the_cache_locks(self, service, tmp_path):
        """Distinct-date requests through parallel compute slots.

        Regression for the unlocked-cache race: to_thread workers insert
        into the shared day cache (and write through to disk)
        concurrently; corruption showed up as KeyErrors, lost entries,
        or a drifted resident_bytes tally.
        """
        disk = DiskDayCache(tmp_path / "hammer")
        day_cache().attach_disk(disk)
        registry = MetricsRegistry(enabled=True)
        takedown = service.scenario_config.takedown_day
        dates = [str(date_of(takedown + offset)) for offset in range(-4, 4)]

        async def run() -> dict[str, bytes]:
            server = ObservatoryServer(service, compute_slots=8)
            await server.start()
            try:
                async def client(date: str) -> tuple[str, bytes]:
                    status, body = await _http_get(server.port, f"/v1/days/{date}")
                    assert status == 200, body
                    return date, body

                pairs = await asyncio.gather(*(client(d) for d in dates))
                return dict(pairs)
            finally:
                await server.aclose()

        with use_metrics(registry):
            bodies = asyncio.run(run())

        assert sorted(bodies) == sorted(dates)
        for date, body in bodies.items():
            assert json.loads(body)["date"] == date
        cache = day_cache()
        assert cache.resident_bytes == sum(cache._sizes.values())
        assert set(cache._data) == set(cache._sizes)
        assert disk.resident_bytes == sum(disk._index.values())


class TestRouteErrors:
    def _get(self, service, path):
        async def run():
            server = ObservatoryServer(service)
            await server.start()
            try:
                return await _http_get(server.port, path)
            finally:
                await server.aclose()

        return asyncio.run(run())

    def test_unparseable_date_is_400(self, service):
        status, body = self._get(service, "/v1/days/not-a-date")
        assert status == 400
        assert b"YYYY-MM-DD" in body

    def test_out_of_window_date_is_404(self, service):
        status, _ = self._get(service, "/v1/days/2030-01-01")
        assert status == 404

    def test_unknown_vantage_is_400(self, service):
        status, body = self._get(service, "/v1/days/2018-12-19?vantage=mars")
        assert status == 400
        assert b"vantage" in body

    def test_series_end_before_start_is_400(self, service):
        status, _ = self._get(
            service, "/v1/series/takedown?start=2018-12-20&end=2018-12-10"
        )
        assert status == 400

    def test_unknown_selector_is_400(self, service):
        status, body = self._get(
            service, "/v1/series/takedown?selectors=warp_drive"
        )
        assert status == 400
        assert b"warp_drive" in body

    def test_victims_top_out_of_range_is_400(self, service):
        status, _ = self._get(service, "/v1/victims/top?top=0")
        assert status == 400

    def test_events_stream_replays_and_terminates(self, service):
        status, body = self._get(
            service,
            "/v1/events/stream?start=2018-12-18&end=2018-12-18&limit=5",
        )
        assert status == 200
        assert body.startswith(b"retry: 5000\n\n")
        frames = [f for f in body.split(b"\n\n") if f]
        attack_frames = [f for f in frames if f.startswith(b"event: attack")]
        assert len(attack_frames) == 5
        assert frames[-1].startswith(b"event: end")
        end_data = json.loads(frames[-1].split(b"data: ", 1)[1])
        assert end_data == {"events_sent": 5}
