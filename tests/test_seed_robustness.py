"""Seed robustness: the headline conclusions must not be seed-tuned.

The calibration work was done under seed 2018; a reproduction whose
conclusions flip under a different random world would be an overfit
artifact. This re-runs the core takedown comparison (shortened ±15-day
windows for speed) under fresh seeds and checks the qualitative pattern:
significant reflector-side drops with memcached deepest and DNS
shallowest, and the victim-side null.
"""

import pytest

from repro.booter.market import MarketConfig
from repro.core.pipeline import TrafficSelector, collect_daily_port_series
from repro.core.takedown_analysis import analyze_takedown
from repro.netmodel.topology import TopologyConfig
from repro.scenario import Scenario, ScenarioConfig

WINDOW = 15


def _scenario(seed):
    return Scenario(
        ScenarioConfig(
            seed=seed,
            scale=0.1,
            topology=TopologyConfig(n_tier1=3, n_tier2=10, n_stub=60),
            market=MarketConfig(daily_attacks=120.0, n_victims=400),
            pool_sizes=(
                ("ntp", 1500),
                ("dns", 1200),
                ("cldap", 500),
                ("memcached", 250),
                ("ssdp", 300),
            ),
        )
    )


@pytest.mark.parametrize("seed", [7, 99])
def test_takedown_conclusions_hold_for_fresh_seeds(seed):
    scenario = _scenario(seed)
    takedown = scenario.config.takedown_day
    day_range = (takedown - WINDOW - 1, takedown + WINDOW + 2)
    selectors = [
        TrafficSelector("mc_to", 11211, "to_reflectors"),
        TrafficSelector("ntp_to", 123, "to_reflectors"),
        TrafficSelector("dns_to", 53, "to_reflectors"),
        TrafficSelector("ntp_from", 123, "from_reflectors"),
    ]
    series = collect_daily_port_series(scenario, "ixp", selectors, day_range=day_range)
    idx = takedown - day_range[0]

    windows = {
        name: analyze_takedown(series.get(name), idx, windows=(WINDOW,)).window(WINDOW)
        for name in ("mc_to", "ntp_to", "dns_to", "ntp_from")
    }

    # Reflector-side drops are significant for every vector.
    for name in ("mc_to", "ntp_to", "dns_to"):
        assert windows[name].significant, name
    # Depth ordering: memcached deepest, DNS shallowest.
    assert windows["mc_to"].reduction_ratio < windows["ntp_to"].reduction_ratio
    assert windows["ntp_to"].reduction_ratio < windows["dns_to"].reduction_ratio
    # Victim-side null.
    assert not windows["ntp_from"].significant
