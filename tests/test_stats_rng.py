"""Tests for deterministic RNG derivation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.rng import SeedSequenceTree, derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_distinct_paths_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_length_prefixing_prevents_collisions(self):
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_integer_path_components(self):
        assert derive_seed(0, 1, 2) == derive_seed(0, "1", "2")

    def test_negative_root_seed(self):
        assert derive_seed(-5, "x") == derive_seed(-5, "x")
        assert derive_seed(-5, "x") != derive_seed(5, "x")

    def test_empty_path(self):
        assert isinstance(derive_seed(7), int)

    @given(st.integers(), st.lists(st.text(max_size=10), max_size=4))
    def test_always_nonnegative_64bit(self, root, path):
        seed = derive_seed(root, *path)
        assert 0 <= seed < 2**64


class TestDeriveRng:
    def test_same_path_same_stream(self):
        a = derive_rng(9, "x").random(5)
        b = derive_rng(9, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_path_different_stream(self):
        a = derive_rng(9, "x").random(5)
        b = derive_rng(9, "y").random(5)
        assert not np.array_equal(a, b)


class TestSeedSequenceTree:
    def test_child_extends_path(self):
        tree = SeedSequenceTree(3)
        assert tree.child("a", "b").path == ("a", "b")
        assert tree.child("a").child("b").path == ("a", "b")

    def test_child_chain_equals_flat_child(self):
        tree = SeedSequenceTree(3)
        assert tree.child("a").child("b").seed() == tree.child("a", "b").seed()

    def test_rng_matches_derive_rng(self):
        tree = SeedSequenceTree(11, ("base",))
        a = tree.child("sub").rng().random(3)
        b = derive_rng(11, "base", "sub").random(3)
        np.testing.assert_array_equal(a, b)

    def test_equality_and_hash(self):
        assert SeedSequenceTree(1, ("a",)) == SeedSequenceTree(1, ("a",))
        assert SeedSequenceTree(1, ("a",)) != SeedSequenceTree(1, ("b",))
        assert hash(SeedSequenceTree(1, ("a",))) == hash(SeedSequenceTree(1, ("a",)))

    def test_sibling_independence(self):
        tree = SeedSequenceTree(0)
        draws = {tuple(tree.child("s", i).rng().integers(0, 1 << 30, 4)) for i in range(20)}
        assert len(draws) == 20

    def test_root_seed_property(self):
        assert SeedSequenceTree(17).root_seed == 17
