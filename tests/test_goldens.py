"""Golden-regression snapshots of small-preset experiment outputs.

Perf PRs (parallelism, caching, vectorization) must not change *what*
the experiments compute, only how fast. These tests pin the rendered
outputs of cheap, deterministic drivers (``table1``/``fig1a``/``fig2a``
at the small preset, seed 2018) plus the scenario config content hash
under ``tests/goldens/``; any silent change to results fails here.

After an *intentional* behaviour change, refresh with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

and commit the rewritten ``tests/goldens/small_preset.json``.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.base import ExperimentConfig
from repro.experiments.registry import run_experiment

GOLDEN_PATH = Path(__file__).parent / "goldens" / "small_preset.json"
EXPERIMENT_IDS = ("table1", "fig1a", "fig2a")


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _current_snapshot() -> dict:
    config = ExperimentConfig()  # small preset, seed 2018, jobs=1, no cache
    snapshot = {
        "preset": config.preset,
        "seed": config.seed,
        "scenario_config_hash": config.scenario_config().content_hash(),
        "experiments": {},
    }
    for experiment_id in EXPERIMENT_IDS:
        result = run_experiment(experiment_id, config)
        snapshot["experiments"][experiment_id] = {
            "tables_sha256": _digest("\n\n".join(result.tables)),
            "paper_vs_measured_sha256": _digest(
                json.dumps([list(row) for row in result.paper_vs_measured])
            ),
        }
    return snapshot


@pytest.fixture(scope="module")
def current_snapshot():
    return _current_snapshot()


def test_goldens_file_exists(update_goldens):
    if update_goldens:
        pytest.skip("--update-goldens: the file is (re)written this run")
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} is missing; generate it with "
        f"`python -m pytest tests/test_goldens.py --update-goldens`"
    )


def test_small_preset_outputs_match_goldens(current_snapshot, update_goldens):
    if update_goldens:
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(current_snapshot, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"goldens rewritten at {GOLDEN_PATH}; commit the file")
    golden = json.loads(GOLDEN_PATH.read_text())
    mismatches = []
    if golden["scenario_config_hash"] != current_snapshot["scenario_config_hash"]:
        mismatches.append("scenario_config_hash (ScenarioConfig defaults changed)")
    for experiment_id, expected in golden["experiments"].items():
        got = current_snapshot["experiments"][experiment_id]
        for key in expected:
            if expected[key] != got[key]:
                mismatches.append(f"{experiment_id}.{key}")
    assert not mismatches, (
        "experiment outputs drifted from the committed goldens: "
        + ", ".join(mismatches)
        + ". If this change is intentional, refresh with "
        "`python -m pytest tests/test_goldens.py --update-goldens` "
        "and commit tests/goldens/small_preset.json; otherwise a perf "
        "or refactor change has silently altered results."
    )


def test_goldens_cover_all_pinned_experiments(update_goldens):
    if update_goldens:
        pytest.skip("--update-goldens: the file is (re)written this run")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert sorted(golden["experiments"]) == sorted(EXPERIMENT_IDS)
    for entry in golden["experiments"].values():
        assert set(entry) == {"tables_sha256", "paper_vs_measured_sha256"}
