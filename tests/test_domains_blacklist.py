"""Tests for booter blacklist maintenance."""

import pytest

from repro.domains.blacklist import BlacklistEntry, BooterBlacklist
from repro.domains.zone import DomainUniverse, UniverseConfig
from repro.stats.rng import SeedSequenceTree
from repro.timeutil import DOMAIN_EPOCH, TAKEDOWN_DATE, day_index

TAKEDOWN_DAY = day_index(TAKEDOWN_DATE, DOMAIN_EPOCH)


@pytest.fixture(scope="module")
def universe():
    seized = ["A", "B"] + [f"S{i:02d}" for i in range(5)]
    surviving = ["C", "D"] + [f"S{i:02d}" for i in range(5, 10)]
    return DomainUniverse(
        seized_booters=seized,
        surviving_booters=surviving,
        config=UniverseConfig(n_benign=400, n_extra_booters=15),
        seeds=SeedSequenceTree(13),
        revival_delays={"A": 3},
    )


@pytest.fixture
def blacklist(universe):
    return BooterBlacklist(universe)


class TestBlacklistEntry:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlacklistEntry("x.com", 10, 5, "active")
        with pytest.raises(ValueError):
            BlacklistEntry("x.com", 0, 0, "weird")


class TestBooterBlacklist:
    def test_single_crawl_populates(self, blacklist):
        added = blacklist.run_crawl(TAKEDOWN_DAY - 30)
        assert len(added) == len(blacklist)
        assert len(blacklist) > 10
        assert all(blacklist.get(d).status in ("active", "seized", "offline") for d in added)

    def test_weekly_crawls_grow_monotonically(self, blacklist):
        blacklist.run_weekly(400, 800)
        first_counts = len(blacklist)
        blacklist.run_weekly(800, 900)
        assert len(blacklist) >= first_counts

    def test_seizure_flips_status(self, blacklist):
        blacklist.run_crawl(TAKEDOWN_DAY - 7)
        active_before = set(blacklist.active_domains())
        blacklist.run_crawl(TAKEDOWN_DAY + 7)
        seized = set(blacklist.seized_domains())
        assert seized  # the FBI batch
        assert seized <= active_before | set(blacklist._entries)
        # Seized domains keep their history.
        for domain in seized:
            entry = blacklist.get(domain)
            assert entry.first_seen_day <= TAKEDOWN_DAY - 7

    def test_new_since_finds_replacement_domain(self, blacklist, universe):
        blacklist.run_crawl(TAKEDOWN_DAY - 7)
        blacklist.run_crawl(TAKEDOWN_DAY + 7)
        new = blacklist.new_since(TAKEDOWN_DAY - 7)
        spare = [d for d in universe.domains_of("A") if d.seized_day is None][0]
        assert spare.name in new

    def test_crawls_must_advance(self, blacklist):
        blacklist.run_crawl(500)
        with pytest.raises(ValueError):
            blacklist.run_crawl(500)
        with pytest.raises(ValueError):
            blacklist.run_crawl(400)

    def test_export_rows(self, blacklist):
        blacklist.run_crawl(600)
        rows = blacklist.export_rows()
        assert len(rows) == len(blacklist)
        assert set(rows[0]) == {"domain", "first_seen_day", "last_seen_day", "status"}

    def test_unknown_domain(self, blacklist):
        with pytest.raises(KeyError):
            blacklist.get("nope.example")

    def test_empty_range_rejected(self, blacklist):
        with pytest.raises(ValueError):
            blacklist.run_weekly(100, 100)
