"""Failure injection and degenerate-input robustness.

Measurement pipelines meet ugly data: empty days, dead markets, boundary
takedowns, single-reflector attacks, all-benign traffic. Every path must
degrade gracefully (empty results, not exceptions) or fail loudly with a
clear error — never return silently-wrong numbers.
"""

import numpy as np
import pytest

from repro.booter.market import MarketConfig
from repro.booter.takedown import TakedownScenario
from repro.core.classify import ConservativeClassifier, OptimisticClassifier
from repro.core.takedown_analysis import analyze_takedown
from repro.core.victims import attacks_per_hour, victim_report
from repro.flows.records import FlowTable
from repro.flows.sampling import PacketSampler
from repro.flows.timeseries import per_destination_stats
from repro.netmodel.topology import TopologyConfig, build_topology
from repro.scenario import Scenario, ScenarioConfig
from repro.stats.rng import SeedSequenceTree


def tcp_only_table(n=10):
    rng = np.random.default_rng(0)
    return FlowTable(
        {
            "time": np.zeros(n),
            "src_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
            "dst_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
            "proto": np.full(n, 6, dtype=np.uint8),  # TCP
            "src_port": np.full(n, 123, dtype=np.uint16),
            "dst_port": np.full(n, 50000, dtype=np.uint16),
            "packets": np.full(n, 1000, dtype=np.int64),
            "bytes": np.full(n, 487_000, dtype=np.int64),
        }
    )


class TestClassifierRobustness:
    def test_empty_table(self):
        empty = FlowTable.empty()
        assert len(OptimisticClassifier().amplification_flows(empty)) == 0
        stats = ConservativeClassifier().classify_flows(empty)
        assert len(stats) == 0

    def test_tcp_on_port_123_ignored(self):
        """The classifiers are UDP-only: TCP/123 must never classify."""
        clf = OptimisticClassifier()
        assert len(clf.amplification_flows(tcp_only_table())) == 0

    def test_all_benign_no_victims(self):
        rng = np.random.default_rng(1)
        n = 100
        benign = FlowTable(
            {
                "time": np.zeros(n),
                "src_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
                "dst_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
                "proto": np.full(n, 17, dtype=np.uint8),
                "src_port": np.full(n, 123, dtype=np.uint16),
                "dst_port": np.full(n, 50000, dtype=np.uint16),
                "packets": np.full(n, 100, dtype=np.int64),
                "bytes": np.full(n, 9000, dtype=np.int64),  # 90 B packets
            }
        )
        report = victim_report(benign)
        assert report.n_destinations == 0
        assert report.max_victim_gbps() == 0.0

    def test_attacks_per_hour_empty_window(self):
        counts = attacks_per_hour(FlowTable.empty(), 0.0, 24 * 3600.0)
        assert counts.shape == (24,)
        assert counts.sum() == 0


class TestSamplerRobustness:
    def test_everything_sampled_away(self):
        n = 50
        tiny = FlowTable(
            {
                "time": np.zeros(n),
                "src_ip": np.arange(n, dtype=np.uint32),
                "dst_ip": np.arange(n, dtype=np.uint32),
                "proto": np.full(n, 17, dtype=np.uint8),
                "src_port": np.full(n, 123, dtype=np.uint16),
                "dst_port": np.full(n, 5000, dtype=np.uint16),
                "packets": np.ones(n, dtype=np.int64),
                "bytes": np.full(n, 487, dtype=np.int64),
            }
        )
        sampled = PacketSampler(10**6).apply(tiny, np.random.default_rng(0))
        assert len(sampled) == 0
        # Downstream still works on the empty result.
        assert len(per_destination_stats(sampled)) == 0


class TestTakedownAnalysisRobustness:
    def test_constant_series_no_significance(self):
        report = analyze_takedown(np.full(122, 1000.0), 80, windows=(30, 40))
        assert not report.window(30).significant
        assert report.window(30).reduction_ratio == pytest.approx(1.0)

    def test_all_zero_series(self):
        report = analyze_takedown(np.zeros(122), 80, windows=(30,))
        assert not report.window(30).significant
        assert np.isnan(report.window(30).reduction_ratio)

    def test_takedown_at_exact_window_boundary(self):
        series = np.concatenate([np.full(30, 100.0), [50.0], np.full(30, 20.0)])
        series += np.random.default_rng(0).normal(0, 1, series.size)
        report = analyze_takedown(series, 30, windows=(30,))
        assert report.window(30).significant
        with pytest.raises(ValueError):
            analyze_takedown(series, 30, windows=(31,))


class TestScenarioRobustness:
    @pytest.fixture(scope="class")
    def dead_market_scenario(self):
        """A market whose entire demand comes from seized booters."""
        return Scenario(
            ScenarioConfig(
                scale=0.05,
                topology=TopologyConfig(n_tier1=2, n_tier2=6, n_stub=30),
                market=MarketConfig(
                    daily_attacks=20.0,
                    n_victims=100,
                    n_synthetic_booters=0,
                    seized_synthetic=0,
                ),
                pool_sizes=(("ntp", 500), ("dns", 400), ("cldap", 200), ("memcached", 100), ("ssdp", 100)),
            )
        )

    def test_total_seizure_stops_new_attacks(self, dead_market_scenario):
        """With only A-D in the market (A, B seized; C, D surviving) the
        day after the takedown still produces *some* attacks (C/D + the
        migrating demand), and the pipeline handles the shrunken day."""
        s = dead_market_scenario
        day = s.config.takedown_day + 1
        traffic = s.day_traffic(day)
        observed = s.observe_day("tier2", traffic)
        # No exceptions, and tables remain schema-consistent.
        assert observed.total_packets >= 0

    def test_observation_of_empty_day_kinds(self, dead_market_scenario):
        s = dead_market_scenario
        traffic = s.day_traffic(5)
        only_scan = s.observe_day("ixp", traffic, kinds=("scan",))
        assert only_scan.total_packets >= 0

    def test_takedown_full_revival(self, dead_market_scenario):
        """Every seized booter revives -> demand fully recovers."""
        s = dead_market_scenario
        scenario_takedown = TakedownScenario(
            takedown_day=s.config.takedown_day,
            revived_booters={"A": 1, "B": 1},
            revival_popularity_fraction=1.0,
            permanent_demand_loss=0.0,
        )
        late = s.config.takedown_day + 30
        assert scenario_takedown.demand_scale(s.market, late) == pytest.approx(1.0, abs=0.01)


class TestSingleReflectorAttack:
    def test_minimal_attack_flows(self):
        from repro.booter.attack import AttackEvent, synthesize_attack_flows

        event = AttackEvent(
            booter="X",
            vector="ntp",
            plan="non-vip",
            victim_ip=1,
            victim_asn=1,
            start_time=0.0,
            duration_s=1.0,
            total_pps=100.0,
            reflector_ips=np.array([42], dtype=np.uint32),
            reflector_asns=np.array([7], dtype=np.int64),
            reflector_weights=np.array([1.0]),
        )
        flows = synthesize_attack_flows(event, np.random.default_rng(0), bin_seconds=1.0)
        assert len(flows) == 1
        assert flows["src_ip"][0] == 42
