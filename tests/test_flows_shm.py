"""Tests for the shared-memory FlowTable transport."""

import numpy as np
import pytest

from repro.flows.records import RECORD_DTYPE, SCHEMA, FlowTable
from repro.flows.shm import (
    DEFAULT_THRESHOLD_BYTES,
    ShmTableHandle,
    set_transport_threshold,
    shm_available,
    transport_threshold,
    unwrap_table,
    wrap_table,
)
from repro.obs import MetricsRegistry, use_metrics

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def make_table(n, seed=0):
    rng = np.random.default_rng(seed)
    return FlowTable(
        {
            "time": rng.uniform(0, 86400, n),
            "src_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
            "dst_ip": rng.integers(0, 2**32, n, dtype=np.uint32),
            "proto": np.full(n, 17, dtype=np.uint8),
            "src_port": np.full(n, 123, dtype=np.uint16),
            "dst_port": rng.integers(1024, 65536, n).astype(np.uint16),
            "packets": rng.integers(1, 10**6, n),
            "bytes": rng.integers(64, 10**9, n),
            "src_asn": rng.integers(-1, 1 << 30, n),
            "dst_asn": rng.integers(-1, 1 << 30, n),
            "peer_asn": rng.integers(-1, 1 << 30, n),
        }
    )


class TestThreshold:
    def test_default(self):
        assert transport_threshold() == DEFAULT_THRESHOLD_BYTES

    def test_set_returns_previous_and_none_resets(self):
        previous = set_transport_threshold(4096)
        try:
            assert transport_threshold() == 4096
            assert set_transport_threshold(None) == 4096
            assert transport_threshold() == DEFAULT_THRESHOLD_BYTES
        finally:
            set_transport_threshold(previous)

    def test_below_threshold_passthrough(self):
        t = make_table(10)
        assert wrap_table(t, threshold=10**9) is t

    def test_negative_threshold_disables(self):
        t = make_table(10)
        assert wrap_table(t, threshold=-1) is t

    def test_empty_table_passthrough(self):
        t = FlowTable.empty()
        assert wrap_table(t, threshold=0) is t


class TestWrapUnwrap:
    def test_roundtrip_bit_identical(self):
        t = make_table(500, seed=1)
        handle = wrap_table(t, threshold=0)
        assert isinstance(handle, ShmTableHandle)
        assert handle.n_records == 500
        back = unwrap_table(handle)
        assert isinstance(back, FlowTable)
        for name in SCHEMA:
            np.testing.assert_array_equal(t[name], back[name], err_msg=name)
            assert back[name].dtype == t[name].dtype, name

    def test_block_unlinked_after_unwrap(self):
        from multiprocessing import shared_memory

        handle = wrap_table(make_table(100), threshold=0)
        unwrap_table(handle)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)

    def test_non_table_passthrough(self):
        for obj in ({"a": 1}, [1, 2], None, 42):
            assert unwrap_table(wrap_table(obj, threshold=0)) == obj or obj is None

    def test_wide_asn_table_passthrough(self):
        """Tables the packed layout cannot carry exactly stay on the
        pickle lane instead of being silently clamped."""
        t = make_table(100).with_columns(src_asn=np.full(100, 2**40))
        assert wrap_table(t, threshold=0) is t

    def test_handle_is_small(self):
        import pickle

        handle = wrap_table(make_table(1000), threshold=0)
        try:
            assert len(pickle.dumps(handle)) < 256
        finally:
            unwrap_table(handle)


class TestMetrics:
    def test_shm_counters(self):
        registry = MetricsRegistry(enabled=True)
        t = make_table(200, seed=2)
        with use_metrics(registry):
            unwrap_table(wrap_table(t, threshold=0))
        assert registry.counter("shm.blocks") == 1
        assert registry.counter("shm.bytes") == 200 * RECORD_DTYPE.itemsize
        assert registry.counter("pool.pipe_bytes") == 0

    def test_pipe_counter_for_passthrough_tables(self):
        registry = MetricsRegistry(enabled=True)
        t = make_table(30)
        with use_metrics(registry):
            back = unwrap_table(wrap_table(t, threshold=10**9))
        assert back is t
        assert registry.counter("pool.pipe_bytes") == 30 * RECORD_DTYPE.itemsize
        assert registry.counter("shm.blocks") == 0
