"""Tests for calendar helpers."""

import datetime as dt

import pytest

from repro.timeutil import (
    DOMAIN_EPOCH,
    TAKEDOWN_DATE,
    TRAFFIC_EPOCH,
    date_of,
    day_index,
    iter_months,
    month_key,
    parse_date,
)


class TestAnchors:
    def test_takedown_is_dec_19(self):
        assert TAKEDOWN_DATE == dt.date(2018, 12, 19)

    def test_takedown_is_day_80_of_traffic_study(self):
        """The 122-day series starts 2018-09-30; the seizure is day 80."""
        assert day_index(TAKEDOWN_DATE) == 80

    def test_traffic_window_is_122_days(self):
        # 122 days starting 2018-09-30: 2019-01-30 is the exclusive end.
        assert day_index(dt.date(2019, 1, 30)) == 122

    def test_domain_epoch(self):
        assert DOMAIN_EPOCH == dt.date(2016, 8, 1)


class TestConversions:
    def test_roundtrip(self):
        for day in (0, 1, 80, 121, 500):
            assert day_index(date_of(day)) == day

    def test_negative_days(self):
        before = dt.date(2018, 9, 27)  # tier-2 trace start, 3 days early
        assert day_index(before) == -3

    def test_explicit_epoch(self):
        assert day_index(dt.date(2016, 8, 2), DOMAIN_EPOCH) == 1
        assert date_of(1, DOMAIN_EPOCH) == dt.date(2016, 8, 2)

    def test_parse_date(self):
        assert parse_date("2018-12-19") == TAKEDOWN_DATE
        with pytest.raises(ValueError):
            parse_date("19/12/2018")

    def test_month_key(self):
        assert month_key(dt.date(2018, 12, 19)) == "2018-12"
        assert month_key(dt.date(2019, 1, 1)) == "2019-01"


class TestIterMonths:
    def test_within_year(self):
        assert iter_months(dt.date(2018, 10, 5), dt.date(2018, 12, 31)) == [
            "2018-10",
            "2018-11",
            "2018-12",
        ]

    def test_across_years(self):
        months = iter_months(dt.date(2016, 8, 1), dt.date(2019, 4, 30))
        assert months[0] == "2016-08"
        assert months[-1] == "2019-04"
        assert len(months) == 33

    def test_single_month(self):
        assert iter_months(dt.date(2018, 1, 1), dt.date(2018, 1, 31)) == ["2018-01"]

    def test_reversed_rejected(self):
        with pytest.raises(ValueError):
            iter_months(dt.date(2019, 1, 1), dt.date(2018, 1, 1))
