"""Packet sampling of flow traces.

IXPs export *sampled* IPFIX (the paper's IXP samples packets at a fixed
rate and notes that attack volumes must be scaled up accordingly).
:class:`PacketSampler` applies random packet sampling to a
:class:`~repro.flows.records.FlowTable`: each packet of each flow survives
independently with probability ``1/rate_denominator``, so a flow's sampled
packet count is binomial. Flows that lose every packet disappear from the
export — exactly the visibility loss real sampled traces suffer for small
flows (and why the paper's small-attack tails are undercounted).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.records import FlowTable

__all__ = ["PacketSampler"]


@dataclass(frozen=True)
class PacketSampler:
    """1-in-N random packet sampling.

    Attributes:
        rate_denominator: N; every packet is exported with probability 1/N.
            N = 1 is pass-through.
    """

    rate_denominator: int

    def __post_init__(self) -> None:
        if self.rate_denominator < 1:
            raise ValueError(f"rate denominator must be >= 1, got {self.rate_denominator}")

    @property
    def probability(self) -> float:
        return 1.0 / self.rate_denominator

    def apply(self, table: FlowTable, rng: np.random.Generator) -> FlowTable:
        """Sample ``table``; returns surviving flows with thinned counters.

        Byte counts are thinned proportionally to the per-flow mean packet
        size, which is exact for flows of uniform packet size (our
        synthesized flows) and a standard estimator otherwise.
        """
        if self.rate_denominator == 1 or len(table) == 0:
            return table
        packets = table["packets"]
        sampled = rng.binomial(packets, self.probability)
        survivors = sampled > 0
        if not survivors.any():
            return FlowTable.empty()
        mean_size = table.mean_packet_sizes()
        new_bytes = np.round(sampled * mean_size).astype(np.int64)
        thinned = table.with_columns(
            packets=sampled.astype(np.int64), bytes=new_bytes
        )
        return thinned.filter(survivors)

    def renormalize(self, table: FlowTable) -> FlowTable:
        """Scale sampled counters back to population estimates (xN)."""
        return table.scale_counts(float(self.rate_denominator))

    def expected_flow_survival(self, packets: int) -> float:
        """Probability that a flow of ``packets`` packets appears at all."""
        if packets < 0:
            raise ValueError("packets must be non-negative")
        return 1.0 - (1.0 - self.probability) ** packets
