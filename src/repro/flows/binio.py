"""Binary flow-record IO (NetFlow-v5-style fixed records).

CSV is convenient but bulky; real collectors store fixed-size binary
records. This module defines a compact little-endian on-disk format in
the spirit of NetFlow v5 export packets:

* a 16-byte header: magic ``b"RFL1"``, record count (u32), and a
  reserved area;
* one 50-byte record per flow — the shared :data:`RECORD_DTYPE` layout
  from :mod:`repro.flows.records`: time (f64), src/dst IP (u32),
  packets and bytes (u64 reinterpretations of the schema's i64), ports
  (u16), proto (u8) plus one pad byte, and the AS annotations (i32,
  clamped — NetFlow's AS fields are 16/32-bit too).

Reading validates the magic, the declared record count, and truncation.
Round-trips are exact for all values within field ranges (the FlowTable
schema guarantees IPs/ports/proto fit; AS numbers are stored as i32).
The same header + records framing backs the on-disk day cache
(:mod:`repro.core.diskcache`) and the shared-memory transport
(:mod:`repro.flows.shm`), so a flow file is literally a dump of the
zero-copy result plane.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.flows.records import RECORD_DTYPE, FlowTable

__all__ = ["write_flows_binary", "read_flows_binary", "MAGIC", "HEADER", "RECORD_DTYPE"]

MAGIC = b"RFL1"

#: File/segment header: magic, record count (u32), 8 reserved bytes.
HEADER = struct.Struct("<4sI8x")

# Backwards-compatible private aliases (earlier PRs referenced these).
_HEADER = HEADER
_RECORD_DTYPE = RECORD_DTYPE


def write_flows_binary(table: FlowTable, path: str | Path) -> int:
    """Write ``table`` to ``path`` in the binary format; returns row count.

    AS numbers outside the signed-32-bit range are clamped (real exports
    truncate them the same way).
    """
    path = Path(path)
    records = table.to_structured(clamp_asn=True)
    with path.open("wb") as fh:
        fh.write(HEADER.pack(MAGIC, len(records)))
        fh.write(records.tobytes())
    return len(records)


def read_flows_binary(path: str | Path) -> FlowTable:
    """Read a binary flow file written by :func:`write_flows_binary`."""
    path = Path(path)
    raw = path.read_bytes()
    if len(raw) < HEADER.size:
        raise ValueError(f"{path} is too short to be a flow file")
    magic, count = HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise ValueError(f"{path} has bad magic {magic!r} (expected {MAGIC!r})")
    body = raw[HEADER.size :]
    expected = count * RECORD_DTYPE.itemsize
    if len(body) != expected:
        raise ValueError(
            f"{path} is truncated or padded: header declares {count} records "
            f"({expected} bytes), found {len(body)} bytes"
        )
    records = np.frombuffer(body, dtype=RECORD_DTYPE)
    return FlowTable.from_structured(records)
