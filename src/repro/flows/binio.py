"""Binary flow-record IO (NetFlow-v5-style fixed records).

CSV is convenient but bulky; real collectors store fixed-size binary
records. This module defines a compact little-endian on-disk format in
the spirit of NetFlow v5 export packets:

* an 16-byte header: magic ``b"RFL1"``, record count (u32), and a
  reserved area;
* one 44-byte record per flow: time (f64), src/dst IP (u32), packets and
  bytes (u64... see layout below), ports (u16), proto (u8), and the AS
  annotations (i32, clamped — NetFlow's AS fields are 16/32-bit too).

Reading validates the magic, the declared record count, and truncation.
Round-trips are exact for all values within field ranges (the FlowTable
schema guarantees IPs/ports/proto fit; AS numbers are stored as i32).
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.flows.records import FlowTable

__all__ = ["write_flows_binary", "read_flows_binary", "MAGIC"]

MAGIC = b"RFL1"
_HEADER = struct.Struct("<4sI8x")  # magic, record count, reserved

# One record: time f64, src u32, dst u32, packets u64, bytes u64,
# src_port u16, dst_port u16, proto u8, pad u8(x1), src_asn i32,
# dst_asn i32, peer_asn i32 -- little-endian, 46 bytes packed.
_RECORD_DTYPE = np.dtype(
    [
        ("time", "<f8"),
        ("src_ip", "<u4"),
        ("dst_ip", "<u4"),
        ("packets", "<u8"),
        ("bytes", "<u8"),
        ("src_port", "<u2"),
        ("dst_port", "<u2"),
        ("proto", "u1"),
        ("_pad", "u1"),
        ("src_asn", "<i4"),
        ("dst_asn", "<i4"),
        ("peer_asn", "<i4"),
    ]
)

_ASN_MAX = 2**31 - 1


def write_flows_binary(table: FlowTable, path: str | Path) -> int:
    """Write ``table`` to ``path`` in the binary format; returns row count.

    AS numbers outside the signed-32-bit range are clamped (real exports
    truncate them the same way).
    """
    path = Path(path)
    n = len(table)
    records = np.empty(n, dtype=_RECORD_DTYPE)
    records["time"] = table["time"]
    records["src_ip"] = table["src_ip"]
    records["dst_ip"] = table["dst_ip"]
    records["packets"] = table["packets"].astype(np.uint64)
    records["bytes"] = table["bytes"].astype(np.uint64)
    records["src_port"] = table["src_port"]
    records["dst_port"] = table["dst_port"]
    records["proto"] = table["proto"]
    records["_pad"] = 0
    for field in ("src_asn", "dst_asn", "peer_asn"):
        records[field] = np.clip(table[field], -_ASN_MAX - 1, _ASN_MAX).astype(np.int32)
    with path.open("wb") as fh:
        fh.write(_HEADER.pack(MAGIC, n))
        fh.write(records.tobytes())
    return n


def read_flows_binary(path: str | Path) -> FlowTable:
    """Read a binary flow file written by :func:`write_flows_binary`."""
    path = Path(path)
    raw = path.read_bytes()
    if len(raw) < _HEADER.size:
        raise ValueError(f"{path} is too short to be a flow file")
    magic, count = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise ValueError(f"{path} has bad magic {magic!r} (expected {MAGIC!r})")
    body = raw[_HEADER.size :]
    expected = count * _RECORD_DTYPE.itemsize
    if len(body) != expected:
        raise ValueError(
            f"{path} is truncated or padded: header declares {count} records "
            f"({expected} bytes), found {len(body)} bytes"
        )
    records = np.frombuffer(body, dtype=_RECORD_DTYPE)
    return FlowTable(
        {
            "time": records["time"],
            "src_ip": records["src_ip"],
            "dst_ip": records["dst_ip"],
            "proto": records["proto"],
            "src_port": records["src_port"],
            "dst_port": records["dst_port"],
            "packets": records["packets"].astype(np.int64),
            "bytes": records["bytes"].astype(np.int64),
            "src_asn": records["src_asn"].astype(np.int64),
            "dst_asn": records["dst_asn"].astype(np.int64),
            "peer_asn": records["peer_asn"].astype(np.int64),
        }
    )
