"""CSV import/export of flow tables.

The on-disk format is a plain CSV with a fixed header matching the
:data:`repro.flows.records.SCHEMA` column order, with IPs in dotted-quad
form for interoperability with standard flow tooling (nfdump CSV exports
use the same shape). Writing is streamed; reading validates the header.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.flows.records import SCHEMA, FlowTable
from repro.netmodel.addressing import format_ip, parse_ip

__all__ = ["write_flows_csv", "read_flows_csv"]

_HEADER = list(SCHEMA)
_IP_COLUMNS = {"src_ip", "dst_ip"}


def write_flows_csv(table: FlowTable, path: str | Path) -> int:
    """Write ``table`` to ``path``; returns the number of rows written."""
    path = Path(path)
    cols = {name: table[name] for name in _HEADER}
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for i in range(len(table)):
            row = []
            for name in _HEADER:
                value = cols[name][i]
                if name in _IP_COLUMNS:
                    row.append(format_ip(int(value)))
                elif name == "time":
                    row.append(repr(float(value)))
                else:
                    row.append(int(value))
            writer.writerow(row)
    return len(table)


def read_flows_csv(path: str | Path) -> FlowTable:
    """Read a flow CSV produced by :func:`write_flows_csv`."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty (no header)") from None
        if header != _HEADER:
            raise ValueError(
                f"{path} has unexpected header {header!r}; expected {_HEADER!r}"
            )
        raw: list[list[str]] = [row for row in reader if row]
    columns: dict[str, np.ndarray] = {}
    for j, name in enumerate(_HEADER):
        values = [row[j] for row in raw]
        if name in _IP_COLUMNS:
            columns[name] = np.array([parse_ip(v) for v in values], dtype=SCHEMA[name])
        elif name == "time":
            columns[name] = np.array([float(v) for v in values], dtype=SCHEMA[name])
        else:
            columns[name] = np.array([int(v) for v in values], dtype=SCHEMA[name])
    return FlowTable(columns)
