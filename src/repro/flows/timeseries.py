"""Time binning and per-destination aggregation of flow tables.

These are the workhorse aggregations behind the paper's figures:

* daily packet sums per port/direction (Figure 4's takedown series),
* per-destination unique-source counts and peak traffic rates within
  one-minute bins (Figures 2b/2c and the conservative classifier),
* per-hour counts of systems under attack (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.records import FlowTable

__all__ = [
    "bin_timeseries",
    "daily_packet_sums",
    "DestinationStats",
    "per_destination_stats",
    "per_destination_timebinned",
]

SECONDS_PER_DAY = 86_400.0


def bin_timeseries(
    table: FlowTable,
    t0: float,
    t1: float,
    bin_seconds: float,
    value: str = "packets",
) -> np.ndarray:
    """Sum ``value`` ('packets' or 'bytes') into fixed bins over ``[t0, t1)``.

    Flows outside the window are ignored. Returns an array of
    ``ceil((t1 - t0) / bin_seconds)`` sums.
    """
    if t1 <= t0:
        raise ValueError("t1 must be after t0")
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if value not in ("packets", "bytes"):
        raise ValueError(f"value must be 'packets' or 'bytes', got {value!r}")
    n_bins = int(np.ceil((t1 - t0) / bin_seconds))
    out = np.zeros(n_bins, dtype=np.float64)
    if len(table) == 0:
        return out
    times = table["time"]
    inside = (times >= t0) & (times < t1)
    idx = ((times[inside] - t0) / bin_seconds).astype(np.int64)
    np.add.at(out, idx, table[value][inside].astype(np.float64))
    return out


def daily_packet_sums(table: FlowTable, t0: float, days: int) -> np.ndarray:
    """Daily packet sums over ``days`` days starting at ``t0``."""
    if days <= 0:
        raise ValueError("days must be positive")
    return bin_timeseries(table, t0, t0 + days * SECONDS_PER_DAY, SECONDS_PER_DAY)


@dataclass(frozen=True)
class DestinationStats:
    """Per-destination aggregates over a trace.

    Arrays are aligned: element ``i`` of every array describes
    ``destinations[i]``.

    Attributes:
        destinations: unique destination addresses.
        unique_sources: number of distinct source addresses seen per dst.
        max_sources_per_bin: max distinct sources within any single time bin.
        peak_bps: max traffic rate (bits/second) over any single time bin.
        total_packets: packet sum per destination.
        total_bytes: byte sum per destination.
    """

    destinations: np.ndarray
    unique_sources: np.ndarray
    max_sources_per_bin: np.ndarray
    peak_bps: np.ndarray
    total_packets: np.ndarray
    total_bytes: np.ndarray

    def __len__(self) -> int:
        return int(self.destinations.size)

    def filter(self, mask: np.ndarray) -> "DestinationStats":
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (len(self),):
            raise ValueError("mask must be boolean of matching length")
        return DestinationStats(
            destinations=self.destinations[mask],
            unique_sources=self.unique_sources[mask],
            max_sources_per_bin=self.max_sources_per_bin[mask],
            peak_bps=self.peak_bps[mask],
            total_packets=self.total_packets[mask],
            total_bytes=self.total_bytes[mask],
        )


def per_destination_stats(table: FlowTable, bin_seconds: float = 60.0) -> DestinationStats:
    """Aggregate a trace per destination IP with ``bin_seconds`` time bins.

    The paper uses one-minute bins for both the per-destination peak
    traffic level ("max traffic level in Gbps over one minute") and the
    per-bin amplifier counts ("max number of amplifiers per attack target
    within one minute bins").
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if len(table) == 0:
        empty_u = np.empty(0, dtype=np.uint32)
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0, dtype=np.float64)
        return DestinationStats(empty_u, empty_i, empty_i, empty_f, empty_i.copy(), empty_i.copy())

    dsts = table["dst_ip"]
    srcs = table["src_ip"]
    times = table["time"]
    packets = table["packets"].astype(np.float64)
    nbytes = table["bytes"].astype(np.float64)

    destinations, dst_idx = np.unique(dsts, return_inverse=True)
    n_dst = destinations.size

    total_packets = np.zeros(n_dst)
    total_bytes = np.zeros(n_dst)
    np.add.at(total_packets, dst_idx, packets)
    np.add.at(total_bytes, dst_idx, nbytes)

    # Unique sources per destination: count unique (dst, src) pairs.
    pair_keys = dst_idx.astype(np.uint64) << np.uint64(32) | srcs.astype(np.uint64)
    unique_pairs = np.unique(pair_keys)
    pair_dst = (unique_pairs >> np.uint64(32)).astype(np.int64)
    unique_sources = np.bincount(pair_dst, minlength=n_dst).astype(np.int64)

    # Time-binned aggregates: bins aligned to absolute bin_seconds
    # boundaries, so results don't depend on the first flow's timestamp
    # and per-day passes compose with whole-trace passes.
    t0 = np.floor(float(times.min()) / bin_seconds) * bin_seconds
    bin_idx = ((times - t0) / bin_seconds).astype(np.int64)
    n_bins = int(bin_idx.max()) + 1

    # Peak bps per destination: bytes per (dst, bin), then max over bins.
    db_keys = dst_idx.astype(np.int64) * n_bins + bin_idx
    uniq_db, db_inverse = np.unique(db_keys, return_inverse=True)
    bytes_per_db = np.zeros(uniq_db.size)
    np.add.at(bytes_per_db, db_inverse, nbytes)
    db_dst = uniq_db // n_bins
    peak_bytes = np.zeros(n_dst)
    np.maximum.at(peak_bytes, db_dst, bytes_per_db)
    peak_bps = peak_bytes * 8.0 / bin_seconds

    # Max distinct sources within one bin: unique (dst, bin, src) triples,
    # counted per (dst, bin), then max over bins.
    triple_keys = (db_keys.astype(np.uint64) << np.uint64(32)) | srcs.astype(np.uint64)
    uniq_triples = np.unique(triple_keys)
    triple_db = (uniq_triples >> np.uint64(32)).astype(np.int64)
    uniq_db_sorted, counts = np.unique(triple_db, return_counts=True)
    max_sources = np.zeros(n_dst, dtype=np.int64)
    np.maximum.at(max_sources, uniq_db_sorted // n_bins, counts)

    return DestinationStats(
        destinations=destinations,
        unique_sources=unique_sources,
        max_sources_per_bin=max_sources,
        peak_bps=peak_bps,
        total_packets=total_packets.astype(np.int64),
        total_bytes=total_bytes.astype(np.int64),
    )


def per_destination_timebinned(
    table: FlowTable,
    t0: float,
    t1: float,
    bin_seconds: float,
) -> dict[int, np.ndarray]:
    """Per-destination bytes time series over ``[t0, t1)``.

    Returns ``{dst_ip: bytes_per_bin}``. Intended for small result sets
    (e.g. the observatory's own /24); use :func:`per_destination_stats`
    for trace-wide aggregation.
    """
    if t1 <= t0:
        raise ValueError("t1 must be after t0")
    n_bins = int(np.ceil((t1 - t0) / bin_seconds))
    out: dict[int, np.ndarray] = {}
    if len(table) == 0:
        return out
    times = table["time"]
    inside = (times >= t0) & (times < t1)
    sub = table.filter(inside)
    bins = ((sub["time"] - t0) / bin_seconds).astype(np.int64)
    for dst in np.unique(sub["dst_ip"]):
        mask = sub["dst_ip"] == dst
        series = np.zeros(n_bins)
        np.add.at(series, bins[mask], sub["bytes"][mask].astype(np.float64))
        out[int(dst)] = series
    return out
