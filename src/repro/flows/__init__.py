"""Flow-record substrate.

Every vantage point in the paper exports flow summaries (IPFIX at the IXP,
NetFlow at the ISPs): no payloads, just timestamps, the 5-tuple, counters,
and ingress metadata. :class:`~repro.flows.records.FlowTable` is the
columnar in-memory form of such a trace; samplers, time binning, and
per-destination aggregation all operate on it.
"""

from repro.flows.builder import FlowTableBuilder
from repro.flows.io import read_flows_csv, write_flows_csv
from repro.flows.records import FlowRecord, FlowTable
from repro.flows.sampling import PacketSampler
from repro.flows.timeseries import (
    bin_timeseries,
    daily_packet_sums,
    per_destination_stats,
    per_destination_timebinned,
)

__all__ = [
    "FlowRecord",
    "FlowTable",
    "FlowTableBuilder",
    "PacketSampler",
    "bin_timeseries",
    "daily_packet_sums",
    "per_destination_stats",
    "per_destination_timebinned",
    "read_flows_csv",
    "write_flows_csv",
]
