"""Shared-memory transport for large FlowTable pool results.

A day table returned from a worker normally travels back over the pool's
result pipe as a pickle. For large tables that means several full copies
of the payload (pickle stream in the worker, pipe buffers, unpickle in
the parent). This module gives the result plane a second lane: the
worker writes the table's :data:`~repro.flows.records.RECORD_DTYPE`
structured records into a :class:`multiprocessing.shared_memory.SharedMemory`
block and ships only a tiny :class:`ShmTableHandle` over the pipe; the
parent attaches, copies the records out once, and unlinks the block.

Lifetime management is deliberately conservative: the worker closes its
mapping as soon as the block is filled, and the parent both closes and
unlinks after reading, so a completed transfer leaves nothing behind.
Both sides unregister from the ``resource_tracker`` (CPython registers
on create *and* attach, which would otherwise double-count and warn).
If the parent dies between create and unwrap the segment leaks until
reboot — an accepted cost, documented in the tutorial.

Small tables are not worth the syscall round-trip, so
:func:`wrap_table` only engages above a byte threshold
(:data:`DEFAULT_THRESHOLD_BYTES`, tunable via
:func:`set_transport_threshold` or the runner's ``--shm-threshold``).
Everything degrades to plain pickling when shared memory is unavailable
(platform without ``/dev/shm``, permission failures) or the table's AS
numbers do not fit the packed i32 fields.

The split between lanes is observable: ``pool.pipe_bytes`` counts
payload bytes that travelled as pickles, ``shm.bytes``/``shm.blocks``
count the shared-memory lane.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.records import RECORD_DTYPE, FlowTable
from repro.obs.metrics import metrics

try:  # pragma: no cover - exercised indirectly via shm_available()
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platforms without _multiprocessing
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "DEFAULT_THRESHOLD_BYTES",
    "ShmTableHandle",
    "shm_available",
    "transport_threshold",
    "set_transport_threshold",
    "wrap_table",
    "unwrap_table",
]

#: Below this many payload bytes plain pickling wins (one pipe write beats
#: two syscalls plus a mmap for small tables). 1 MiB ~= 21k records.
DEFAULT_THRESHOLD_BYTES = 1 << 20

_threshold_bytes = DEFAULT_THRESHOLD_BYTES


def shm_available() -> bool:
    """True if this platform supports ``multiprocessing.shared_memory``."""
    return shared_memory is not None


def transport_threshold() -> int:
    """Current shm engagement threshold in payload bytes (negative = off)."""
    return _threshold_bytes


def set_transport_threshold(nbytes: int | None) -> int:
    """Set the shm threshold; returns the previous value.

    ``None`` restores :data:`DEFAULT_THRESHOLD_BYTES`; a negative value
    disables the shared-memory lane entirely.
    """
    global _threshold_bytes
    previous = _threshold_bytes
    _threshold_bytes = DEFAULT_THRESHOLD_BYTES if nbytes is None else int(nbytes)
    return previous


@dataclass(frozen=True)
class ShmTableHandle:
    """Pipe-sized stand-in for a FlowTable parked in a shared-memory block."""

    name: str
    n_records: int


def _untrack(block) -> None:
    # CPython's resource_tracker registers a segment on create and again
    # on attach; we manage the lifetime explicitly (worker creates,
    # parent unlinks), so both registrations must be withdrawn or the
    # tracker warns about "leaked" segments at interpreter exit.
    if resource_tracker is None:  # pragma: no cover
        return
    try:
        resource_tracker.unregister(getattr(block, "_name", block.name), "shared_memory")
    except Exception:  # pragma: no cover - tracker API drift
        pass


def wrap_table(table: object, threshold: int | None = None):
    """Park ``table`` in shared memory if it is big enough; else passthrough.

    Called in the *worker* on a day result before it is pickled back.
    Returns either the object unchanged or a :class:`ShmTableHandle`.
    Never raises for transport reasons: any failure to provision the
    block falls back to returning the table itself.
    """
    if threshold is None:
        threshold = _threshold_bytes
    if (
        shared_memory is None
        or threshold < 0
        or not isinstance(table, FlowTable)
        or len(table) == 0
    ):
        return table
    nbytes = len(table) * RECORD_DTYPE.itemsize
    if nbytes < threshold:
        return table
    try:
        records = table.to_structured()
    except ValueError:
        # Out-of-range AS numbers: the packed layout would clamp, so the
        # exact per-column pickle path carries this (rare) table.
        return table
    try:
        block = shared_memory.SharedMemory(create=True, size=nbytes)
    except OSError:
        return table
    try:
        np.ndarray(len(records), dtype=RECORD_DTYPE, buffer=block.buf)[:] = records
        handle = ShmTableHandle(name=block.name, n_records=len(records))
    except Exception:
        try:
            block.close()
            block.unlink()
        except OSError:  # pragma: no cover
            pass
        return table
    _untrack(block)
    block.close()
    return handle


def unwrap_table(obj: object):
    """Resolve a pool result: reclaim shm handles, count pipe traffic.

    Called in the *parent* on each raw pool result. For a handle, the
    records are copied out of the block exactly once and the block is
    unlinked; for a plain FlowTable the payload bytes are credited to
    ``pool.pipe_bytes``. Any other object passes through untouched.
    """
    reg = metrics()
    if not isinstance(obj, ShmTableHandle):
        if isinstance(obj, FlowTable):
            reg.inc("pool.pipe_bytes", len(obj) * RECORD_DTYPE.itemsize)
        return obj
    if shared_memory is None:  # pragma: no cover - handle can't exist then
        raise RuntimeError("received a ShmTableHandle but shared memory is unavailable")
    block = shared_memory.SharedMemory(name=obj.name)
    # No explicit untrack here: unlink() below withdraws the registration
    # this attach just made, and the worker's create-side registration was
    # withdrawn in wrap_table — one registration, one withdrawal, each side.
    try:
        records = np.ndarray(obj.n_records, dtype=RECORD_DTYPE, buffer=block.buf).copy()
    finally:
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
    reg.inc("shm.blocks")
    reg.inc("shm.bytes", records.nbytes)
    return FlowTable.from_structured(records)
