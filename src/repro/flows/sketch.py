"""Streaming cardinality sketches for trace-scale aggregation.

The paper's IXP trace holds 834 *billion* flows; counting exact unique
amplifiers per victim over months of such data is memory-prohibitive.
:class:`HyperLogLog` implements the standard cardinality sketch (Flajolet
et al. 2007) with the small-range linear-counting correction, and
:class:`PerKeyCardinality` maintains one sketch per key (e.g. unique
sources per destination) with streaming updates and mergeability —
merge sketches from per-day passes to get the multi-month answer.

The simulator itself is small enough for exact counting (and the test
suite cross-checks the sketch against exact counts); the sketch is here
so the pipeline scales to real traces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HyperLogLog", "PerKeyCardinality"]

# 64-bit Fibonacci-style mixer (splitmix64 finalizer) for integer keys.
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)


def _mix64(values: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer: a fast, well-distributed 64-bit hash."""
    x = values.astype(np.uint64)
    with np.errstate(over="ignore"):
        x = x ^ (x >> np.uint64(30))
        x = x * _M1
        x = x ^ (x >> np.uint64(27))
        x = x * _M2
        x = x ^ (x >> np.uint64(31))
    return x


class HyperLogLog:
    """HyperLogLog cardinality estimator over integer items.

    Args:
        precision: number of index bits p; the sketch uses ``2**p``
            one-byte registers. p=12 (4 KiB) gives ~1.6% standard error.
    """

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 18:
            raise ValueError(f"precision must be in [4, 18], got {precision}")
        self.precision = precision
        self.m = 1 << precision
        self.registers = np.zeros(self.m, dtype=np.uint8)
        if precision == 4:
            self._alpha = 0.673
        elif precision == 5:
            self._alpha = 0.697
        elif precision == 6:
            self._alpha = 0.709
        else:
            self._alpha = 0.7213 / (1.0 + 1.079 / self.m)

    def add(self, items: np.ndarray | int) -> "HyperLogLog":
        """Add one item or an array of integer items."""
        items = np.atleast_1d(np.asarray(items, dtype=np.uint64))
        if items.size == 0:
            return self
        hashed = _mix64(items)
        idx = (hashed >> np.uint64(64 - self.precision)).astype(np.int64)
        # Rank = position of the leftmost 1 in the remaining bits (1-based).
        rest = (hashed << np.uint64(self.precision)) | np.uint64(
            (1 << (self.precision - 1))
        )
        # Leading-zero count via bit_length: rank = lzc(rest) + 1.
        # numpy lacks clz; compute via log2 on the (nonzero) values.
        bit_length = np.frompyfunc(int.bit_length, 1, 1)(rest.astype(object)).astype(int)
        rank = (64 - bit_length + 1).astype(np.uint8)
        np.maximum.at(self.registers, idx, rank)
        return self

    def cardinality(self) -> float:
        """Estimated number of distinct items added."""
        registers = self.registers.astype(np.float64)
        raw = self._alpha * self.m * self.m / np.sum(2.0 ** (-registers))
        zeros = int((self.registers == 0).sum())
        if raw <= 2.5 * self.m and zeros > 0:
            # Small-range correction: linear counting.
            return float(self.m * np.log(self.m / zeros))
        return float(raw)

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Merge ``other`` into this sketch (union semantics)."""
        if other.precision != self.precision:
            raise ValueError("cannot merge sketches of different precision")
        np.maximum(self.registers, other.registers, out=self.registers)
        return self

    def copy(self) -> "HyperLogLog":
        clone = HyperLogLog(self.precision)
        clone.registers = self.registers.copy()
        return clone

    @property
    def standard_error(self) -> float:
        """Theoretical relative standard error (1.04 / sqrt(m))."""
        return 1.04 / np.sqrt(self.m)


class PerKeyCardinality:
    """One HyperLogLog per key: streaming unique-X-per-Y counting.

    Example: unique amplification sources per victim over months of
    sampled flow data, fed day by day::

        counter = PerKeyCardinality(precision=10)
        for day in days:
            table = observe(day)
            counter.update(table["dst_ip"], table["src_ip"])
        counter.estimate(victim_ip)
    """

    def __init__(self, precision: int = 10) -> None:
        self.precision = precision
        self._sketches: dict[int, HyperLogLog] = {}

    def update(self, keys: np.ndarray, items: np.ndarray) -> None:
        """Add ``items[i]`` to the sketch of ``keys[i]`` for all i."""
        keys = np.asarray(keys)
        items = np.asarray(items)
        if keys.shape != items.shape:
            raise ValueError("keys and items must align")
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_items = items[order]
        boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [sorted_keys.size]])
        for start, end in zip(starts, ends):
            if start == end:
                continue
            key = int(sorted_keys[start])
            sketch = self._sketches.get(key)
            if sketch is None:
                sketch = self._sketches[key] = HyperLogLog(self.precision)
            sketch.add(sorted_items[start:end])

    def estimate(self, key: int) -> float:
        """Estimated distinct items seen for ``key`` (0.0 if unseen)."""
        sketch = self._sketches.get(int(key))
        return sketch.cardinality() if sketch is not None else 0.0

    def keys(self) -> list[int]:
        return sorted(self._sketches)

    def merge(self, other: "PerKeyCardinality") -> "PerKeyCardinality":
        """Union-merge another per-key counter (e.g. another day's pass).

        Register-wise max is commutative and associative, so merging
        per-chunk counters of any partition of a stream — in any order —
        yields bit-identical registers to a single one-pass ingest.
        """
        if other.precision != self.precision:
            raise ValueError("cannot merge counters of different precision")
        for key, sketch in other._sketches.items():
            mine = self._sketches.get(key)
            if mine is None:
                self._sketches[key] = sketch.copy()
            else:
                mine.merge(sketch)
        return self

    def copy(self) -> "PerKeyCardinality":
        """Deep copy (register arrays included)."""
        clone = PerKeyCardinality(self.precision)
        clone._sketches = {k: s.copy() for k, s in self._sketches.items()}
        return clone

    def __len__(self) -> int:
        return len(self._sketches)
