"""Columnar flow records.

A :class:`FlowTable` holds one column per flow attribute as a numpy array,
which keeps multi-million-flow traces workable in pure Python. The schema
mirrors what the paper's vantage points actually export:

======== =========== ====================================================
column    dtype       meaning
======== =========== ====================================================
time      float64     flow start, seconds since epoch
src_ip    uint32      source address (possibly anonymized)
dst_ip    uint32      destination address (possibly anonymized)
proto     uint8       IP protocol (17 = UDP)
src_port  uint16      transport source port
dst_port  uint16      transport destination port
packets   int64       packet count (post-sampling if sampled)
bytes     int64       byte count (post-sampling if sampled)
src_asn   int64       origin AS of src_ip (-1 unknown)
dst_asn   int64       origin AS of dst_ip (-1 unknown)
peer_asn  int64       AS handing the flow to the observer (-1 unknown)
======== =========== ====================================================

``peer_asn`` models NetFlow's ingress-interface metadata at AS granularity
— it is how the paper counts "peers handing over attack traffic".

Besides the columnar dict, a table has two single-buffer serializations
— the zero-copy result plane:

* a contiguous structured array of :data:`RECORD_DTYPE`, the same
  50-byte packed record the binary file format
  (:mod:`repro.flows.binio`) writes to disk; the shared-memory
  transport (:mod:`repro.flows.shm`) and the persistent day cache
  (:mod:`repro.core.diskcache`) move tables in this interchange layout;
* a *column plane* (:meth:`FlowTable.to_plane`): the full-width columns
  laid slab after slab in one byte buffer, exact for every value, which
  is what pool pickling (:meth:`FlowTable.__reduce__`) ships instead of
  eleven separately pickled column arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

__all__ = ["FlowRecord", "FlowTable", "PLANE_ROW_BYTES", "RECORD_DTYPE", "SCHEMA"]

SCHEMA: dict[str, np.dtype] = {
    "time": np.dtype(np.float64),
    "src_ip": np.dtype(np.uint32),
    "dst_ip": np.dtype(np.uint32),
    "proto": np.dtype(np.uint8),
    "src_port": np.dtype(np.uint16),
    "dst_port": np.dtype(np.uint16),
    "packets": np.dtype(np.int64),
    "bytes": np.dtype(np.int64),
    "src_asn": np.dtype(np.int64),
    "dst_asn": np.dtype(np.int64),
    "peer_asn": np.dtype(np.int64),
}

_DEFAULTS = {"src_asn": -1, "dst_asn": -1, "peer_asn": -1}

#: One packed flow record, little-endian, 50 bytes: the layout shared by
#: the on-disk binary format, the pickle fast path, and the shared-memory
#: transport. Counters are stored as u64 (two's-complement reinterpretation
#: of the schema's i64 — exact for every value); AS numbers are stored as
#: i32, which covers 4-byte ASNs and the -1 "unknown" sentinel but NOT the
#: full i64 schema range, so the exact serializers validate the range and
#: only :func:`repro.flows.binio.write_flows_binary` clamps.
RECORD_DTYPE = np.dtype(
    [
        ("time", "<f8"),
        ("src_ip", "<u4"),
        ("dst_ip", "<u4"),
        ("packets", "<u8"),
        ("bytes", "<u8"),
        ("src_port", "<u2"),
        ("dst_port", "<u2"),
        ("proto", "u1"),
        ("_pad", "u1"),
        ("src_asn", "<i4"),
        ("dst_asn", "<i4"),
        ("peer_asn", "<i4"),
    ]
)

_ASN_FIELDS = ("src_asn", "dst_asn", "peer_asn")
_ASN_MIN = -(2**31)
_ASN_MAX = 2**31 - 1

#: Bytes per row of the column-plane serialization (the full-width schema
#: columns laid slab-after-slab in one buffer): 61 = 8+4+4+1+2+2+8*5.
PLANE_ROW_BYTES = sum(dt.itemsize for dt in SCHEMA.values())


@dataclass(frozen=True)
class FlowRecord:
    """One flow, as a plain record (row view of a :class:`FlowTable`)."""

    time: float
    src_ip: int
    dst_ip: int
    proto: int
    src_port: int
    dst_port: int
    packets: int
    bytes: int
    src_asn: int = -1
    dst_asn: int = -1
    peer_asn: int = -1

    @property
    def mean_packet_size(self) -> float:
        """Bytes per packet of the flow."""
        return self.bytes / self.packets if self.packets else 0.0


class FlowTable:
    """Immutable-by-convention columnar flow trace.

    Construction validates dtypes and column alignment. All transformation
    methods return new tables; columns are never mutated in place after
    construction (callers hold references).
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        cols: dict[str, np.ndarray] = {}
        missing = [name for name in SCHEMA if name not in columns and name not in _DEFAULTS]
        if missing:
            raise ValueError(f"missing columns: {missing}")
        unknown = [name for name in columns if name not in SCHEMA]
        if unknown:
            raise ValueError(f"unknown columns: {unknown}")
        length: int | None = None
        for name, dtype in SCHEMA.items():
            if name in columns:
                arr = np.asarray(columns[name])
                if arr.ndim != 1:
                    raise ValueError(f"column {name!r} must be 1-D")
                arr = arr.astype(dtype, copy=False)
            else:
                arr = None  # filled after length is known
            if arr is not None:
                if length is None:
                    length = arr.size
                elif arr.size != length:
                    raise ValueError(
                        f"column {name!r} has {arr.size} rows, expected {length}"
                    )
            cols[name] = arr
        if length is None:
            length = 0
        for name, default in _DEFAULTS.items():
            if cols[name] is None:
                cols[name] = np.full(length, default, dtype=SCHEMA[name])
        self._columns = cols

    # -- constructors -------------------------------------------------------

    @classmethod
    def _from_validated(cls, columns: dict[str, np.ndarray]) -> "FlowTable":
        """Trusted constructor: skip per-column casting and default filling.

        Only for call sites that guarantee schema-exact columns (the
        builder, ``concat``, ``filter``, ...). Misuse is still rejected —
        the guards below are O(#columns) identity checks, not copies.
        """
        length = -1
        for name, dtype in SCHEMA.items():
            arr = columns.get(name)
            if not isinstance(arr, np.ndarray) or arr.dtype != dtype or arr.ndim != 1:
                raise ValueError(
                    f"_from_validated: column {name!r} must be a 1-D ndarray "
                    f"of dtype {dtype}"
                )
            if length < 0:
                length = arr.size
            elif arr.size != length:
                raise ValueError(
                    f"_from_validated: column {name!r} has {arr.size} rows, "
                    f"expected {length}"
                )
        if len(columns) != len(SCHEMA):
            unknown = sorted(set(columns) - set(SCHEMA))
            raise ValueError(f"_from_validated: unknown columns: {unknown}")
        table = cls.__new__(cls)
        table._columns = dict(columns)
        return table

    @staticmethod
    def empty() -> "FlowTable":
        return FlowTable._from_validated(
            {name: np.empty(0, dtype=dt) for name, dt in SCHEMA.items()}
        )

    # -- structured-array serialization ----------------------------------------

    def to_structured(self, clamp_asn: bool = False) -> np.ndarray:
        """This table as one contiguous :data:`RECORD_DTYPE` structured array.

        The single-buffer form every serializer uses (pickle fast path,
        shared memory, the binary file format). Counters reinterpret to
        u64 (exact for all i64 values); AS numbers narrow to i32, which
        by default raises :class:`ValueError` if any value is outside
        ``[-2^31, 2^31 - 1]`` so the conversion is always bit-exact.
        ``clamp_asn=True`` clamps instead — the lossy behaviour of real
        NetFlow exports, used by the on-disk writer.
        """
        cols = self._columns
        records = np.empty(len(self), dtype=RECORD_DTYPE)
        records["time"] = cols["time"]
        records["src_ip"] = cols["src_ip"]
        records["dst_ip"] = cols["dst_ip"]
        records["packets"] = cols["packets"].view(np.uint64)
        records["bytes"] = cols["bytes"].view(np.uint64)
        records["src_port"] = cols["src_port"]
        records["dst_port"] = cols["dst_port"]
        records["proto"] = cols["proto"]
        records["_pad"] = 0
        for name in _ASN_FIELDS:
            col = cols[name]
            if clamp_asn:
                records[name] = np.clip(col, _ASN_MIN, _ASN_MAX).astype(np.int32)
            else:
                if col.size and (int(col.min()) < _ASN_MIN or int(col.max()) > _ASN_MAX):
                    raise ValueError(
                        f"column {name!r} has AS numbers outside the packed "
                        f"int32 range [{_ASN_MIN}, {_ASN_MAX}]; pass "
                        f"clamp_asn=True to truncate like a NetFlow export"
                    )
                records[name] = col.astype(np.int32)
        return records

    @classmethod
    def from_structured(cls, records: np.ndarray, copy: bool = False) -> "FlowTable":
        """Rebuild a table from a :data:`RECORD_DTYPE` structured array.

        Zero-copy where the layouts agree: time/IP/port/proto columns are
        strided views into ``records``, and the u64 counters reinterpret
        in place as i64; only the three i32 AS columns widen (a copy).
        The views keep ``records`` (and whatever backs it — a shared
        memory block, an ``np.memmap`` of a cache file) alive, which is
        exactly what the zero-copy result plane wants. ``copy=True``
        materializes independent contiguous columns instead.
        """
        records = np.asarray(records)
        if records.dtype != RECORD_DTYPE:
            raise ValueError(
                f"expected records of dtype RECORD_DTYPE "
                f"({RECORD_DTYPE.itemsize} bytes/record), got {records.dtype}"
            )
        if records.ndim != 1:
            raise ValueError("records must be a 1-D structured array")
        cols = {
            "time": records["time"],
            "src_ip": records["src_ip"],
            "dst_ip": records["dst_ip"],
            "proto": records["proto"],
            "src_port": records["src_port"],
            "dst_port": records["dst_port"],
            "packets": records["packets"].view(np.int64),
            "bytes": records["bytes"].view(np.int64),
            "src_asn": records["src_asn"].astype(np.int64),
            "dst_asn": records["dst_asn"].astype(np.int64),
            "peer_asn": records["peer_asn"].astype(np.int64),
        }
        if copy:
            cols = {name: np.ascontiguousarray(arr) for name, arr in cols.items()}
        return cls._from_validated(cols)

    # -- column-plane serialization ---------------------------------------------

    def to_plane(self) -> np.ndarray:
        """Serialize to a single contiguous byte buffer of column slabs.

        The eleven schema columns at full width, laid slab after slab in
        :data:`SCHEMA` order (:data:`PLANE_ROW_BYTES` bytes per row,
        native byte order). Unlike :meth:`to_structured` this is exact
        for *every* table — AS numbers stay i64 — and packing is eleven
        contiguous memcpys instead of eleven strided scatters into the
        record layout, which is why :meth:`__reduce__` ships this form.
        The plane is an in-memory/pipe transport format; the portable
        little-endian record layout for files stays
        :mod:`repro.flows.binio`.
        """
        n = len(self)
        plane = np.empty(n * PLANE_ROW_BYTES, dtype=np.uint8)
        offset = 0
        for name, dtype in SCHEMA.items():
            nb = dtype.itemsize * n
            col = self._columns[name]
            if not col.flags.c_contiguous:
                col = np.ascontiguousarray(col)
            plane[offset : offset + nb] = col.view(np.uint8)
            offset += nb
        return plane

    @classmethod
    def from_plane(cls, plane: np.ndarray, n_rows: int) -> "FlowTable":
        """Rebuild a table from a :meth:`to_plane` buffer — zero-copy.

        Every column is a typed view into ``plane`` at its slab offset;
        nothing is copied, and the views keep the buffer alive.
        """
        plane = np.asarray(plane)
        if plane.dtype != np.uint8 or plane.ndim != 1:
            raise ValueError("plane must be a 1-D uint8 array")
        if n_rows < 0 or plane.size != n_rows * PLANE_ROW_BYTES:
            raise ValueError(
                f"plane has {plane.size} bytes, expected "
                f"{n_rows} rows * {PLANE_ROW_BYTES} bytes/row"
            )
        if not plane.flags.c_contiguous:
            plane = np.ascontiguousarray(plane)
        cols: dict[str, np.ndarray] = {}
        offset = 0
        for name, dtype in SCHEMA.items():
            nb = dtype.itemsize * n_rows
            cols[name] = plane[offset : offset + nb].view(dtype)
            offset += nb
        return cls._from_validated(cols)

    def __reduce__(self):
        # Pool transport: collapse pickling to one contiguous byte plane
        # instead of eleven per-column array pickles. Exact for every
        # table (full-width columns, no i32 narrowing), packed with
        # contiguous copies and unpacked as views.
        return (FlowTable.from_plane, (self.to_plane(), len(self)))

    @staticmethod
    def concat(tables) -> "FlowTable":
        """Concatenate tables (row-wise); accepts any iterable of tables.

        Output columns are preallocated once at the total length and
        filled by slice assignment, so concatenating many small tables
        (or tables that are themselves concat results) copies each row
        exactly once instead of re-running validation and
        ``np.concatenate`` per column per level.
        """
        tables = [t for t in tables if len(t)]
        if not tables:
            return FlowTable.empty()
        if len(tables) == 1:
            return tables[0]
        total = sum(len(t) for t in tables)
        cols: dict[str, np.ndarray] = {}
        for name, dtype in SCHEMA.items():
            out = np.empty(total, dtype=dtype)
            pos = 0
            for t in tables:
                n = len(t)
                out[pos : pos + n] = t._columns[name]
                pos += n
            cols[name] = out
        return FlowTable._from_validated(cols)

    @staticmethod
    def from_records(records: list[FlowRecord]) -> "FlowTable":
        cols: dict[str, np.ndarray] = {
            name: np.array([getattr(r, name) for r in records], dtype=dt)
            for name, dt in SCHEMA.items()
        }
        return FlowTable(cols)

    # -- basic protocol -------------------------------------------------------

    def __len__(self) -> int:
        return int(self._columns["time"].size)

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column {name!r}") from None

    def __iter__(self) -> Iterator[FlowRecord]:
        return self.to_records()

    def to_records(self) -> Iterator[FlowRecord]:
        """Iterate rows as :class:`FlowRecord` (slow; for small tables/IO)."""
        cols = self._columns
        for i in range(len(self)):
            yield FlowRecord(
                time=float(cols["time"][i]),
                src_ip=int(cols["src_ip"][i]),
                dst_ip=int(cols["dst_ip"][i]),
                proto=int(cols["proto"][i]),
                src_port=int(cols["src_port"][i]),
                dst_port=int(cols["dst_port"][i]),
                packets=int(cols["packets"][i]),
                bytes=int(cols["bytes"][i]),
                src_asn=int(cols["src_asn"][i]),
                dst_asn=int(cols["dst_asn"][i]),
                peer_asn=int(cols["peer_asn"][i]),
            )

    def __repr__(self) -> str:
        return f"FlowTable({len(self)} flows)"

    # -- aggregate properties ---------------------------------------------------

    @property
    def total_packets(self) -> int:
        return int(self._columns["packets"].sum())

    @property
    def total_bytes(self) -> int:
        return int(self._columns["bytes"].sum())

    def time_span(self) -> tuple[float, float]:
        """(min, max) flow start time; raises on an empty table."""
        if not len(self):
            raise ValueError("empty table has no time span")
        t = self._columns["time"]
        return float(t.min()), float(t.max())

    def unique_sources(self) -> int:
        return int(np.unique(self._columns["src_ip"]).size)

    def unique_destinations(self) -> int:
        return int(np.unique(self._columns["dst_ip"]).size)

    def mean_packet_sizes(self) -> np.ndarray:
        """Per-flow mean packet size in bytes (0 for empty flows)."""
        packets = self._columns["packets"]
        with np.errstate(divide="ignore", invalid="ignore"):
            sizes = np.where(packets > 0, self._columns["bytes"] / np.maximum(packets, 1), 0.0)
        return sizes

    # -- transformations -------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "FlowTable":
        """Rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (len(self),):
            raise ValueError("mask must be a boolean array of table length")
        if mask.all():
            # Tables are immutable by convention (as in concat's
            # single-table passthrough), so an all-True filter can skip
            # re-copying every column.
            return self
        return FlowTable._from_validated(
            {name: col[mask] for name, col in self._columns.items()}
        )

    def select(
        self,
        proto: int | None = None,
        src_port: int | None = None,
        dst_port: int | None = None,
        dst_ip: int | None = None,
        src_asn: int | None = None,
        time_range: tuple[float, float] | None = None,
        min_packet_size: float | None = None,
        max_packet_size: float | None = None,
    ) -> "FlowTable":
        """Convenience conjunctive filter over common criteria.

        ``time_range`` is half-open ``[t0, t1)``; packet-size bounds apply
        to per-flow mean packet sizes (``min`` inclusive via ``>`` as in the
        paper's "> 200 bytes" rule — exclusive lower bound).
        """
        mask = np.ones(len(self), dtype=bool)
        cols = self._columns
        if proto is not None:
            mask &= cols["proto"] == proto
        if src_port is not None:
            mask &= cols["src_port"] == src_port
        if dst_port is not None:
            mask &= cols["dst_port"] == dst_port
        if dst_ip is not None:
            mask &= cols["dst_ip"] == np.uint32(dst_ip)
        if src_asn is not None:
            mask &= cols["src_asn"] == src_asn
        if time_range is not None:
            t0, t1 = time_range
            if t1 < t0:
                raise ValueError("time_range must be ordered")
            mask &= (cols["time"] >= t0) & (cols["time"] < t1)
        if min_packet_size is not None or max_packet_size is not None:
            sizes = self.mean_packet_sizes()
            if min_packet_size is not None:
                mask &= sizes > min_packet_size
            if max_packet_size is not None:
                mask &= sizes <= max_packet_size
        return self.filter(mask)

    def sort_by_time(self) -> "FlowTable":
        order = np.argsort(self._columns["time"], kind="stable")
        return FlowTable._from_validated(
            {name: col[order] for name, col in self._columns.items()}
        )

    def scale_counts(self, factor: float) -> "FlowTable":
        """Multiply packet/byte counters by ``factor`` (sampling renormalization)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        cols = dict(self._columns)
        cols["packets"] = np.round(self._columns["packets"] * factor).astype(np.int64)
        cols["bytes"] = np.round(self._columns["bytes"] * factor).astype(np.int64)
        return FlowTable._from_validated(cols)

    def with_columns(self, **overrides: np.ndarray) -> "FlowTable":
        """Replace whole columns (e.g. anonymized addresses)."""
        cols = dict(self._columns)
        for name, arr in overrides.items():
            if name not in SCHEMA:
                raise KeyError(f"no column {name!r}")
            cols[name] = arr
        return FlowTable(cols)
