"""Columnar flow records.

A :class:`FlowTable` holds one column per flow attribute as a numpy array,
which keeps multi-million-flow traces workable in pure Python. The schema
mirrors what the paper's vantage points actually export:

======== =========== ====================================================
column    dtype       meaning
======== =========== ====================================================
time      float64     flow start, seconds since epoch
src_ip    uint32      source address (possibly anonymized)
dst_ip    uint32      destination address (possibly anonymized)
proto     uint8       IP protocol (17 = UDP)
src_port  uint16      transport source port
dst_port  uint16      transport destination port
packets   int64       packet count (post-sampling if sampled)
bytes     int64       byte count (post-sampling if sampled)
src_asn   int64       origin AS of src_ip (-1 unknown)
dst_asn   int64       origin AS of dst_ip (-1 unknown)
peer_asn  int64       AS handing the flow to the observer (-1 unknown)
======== =========== ====================================================

``peer_asn`` models NetFlow's ingress-interface metadata at AS granularity
— it is how the paper counts "peers handing over attack traffic".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

__all__ = ["FlowRecord", "FlowTable", "SCHEMA"]

SCHEMA: dict[str, np.dtype] = {
    "time": np.dtype(np.float64),
    "src_ip": np.dtype(np.uint32),
    "dst_ip": np.dtype(np.uint32),
    "proto": np.dtype(np.uint8),
    "src_port": np.dtype(np.uint16),
    "dst_port": np.dtype(np.uint16),
    "packets": np.dtype(np.int64),
    "bytes": np.dtype(np.int64),
    "src_asn": np.dtype(np.int64),
    "dst_asn": np.dtype(np.int64),
    "peer_asn": np.dtype(np.int64),
}

_DEFAULTS = {"src_asn": -1, "dst_asn": -1, "peer_asn": -1}


@dataclass(frozen=True)
class FlowRecord:
    """One flow, as a plain record (row view of a :class:`FlowTable`)."""

    time: float
    src_ip: int
    dst_ip: int
    proto: int
    src_port: int
    dst_port: int
    packets: int
    bytes: int
    src_asn: int = -1
    dst_asn: int = -1
    peer_asn: int = -1

    @property
    def mean_packet_size(self) -> float:
        """Bytes per packet of the flow."""
        return self.bytes / self.packets if self.packets else 0.0


class FlowTable:
    """Immutable-by-convention columnar flow trace.

    Construction validates dtypes and column alignment. All transformation
    methods return new tables; columns are never mutated in place after
    construction (callers hold references).
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        cols: dict[str, np.ndarray] = {}
        missing = [name for name in SCHEMA if name not in columns and name not in _DEFAULTS]
        if missing:
            raise ValueError(f"missing columns: {missing}")
        unknown = [name for name in columns if name not in SCHEMA]
        if unknown:
            raise ValueError(f"unknown columns: {unknown}")
        length: int | None = None
        for name, dtype in SCHEMA.items():
            if name in columns:
                arr = np.asarray(columns[name])
                if arr.ndim != 1:
                    raise ValueError(f"column {name!r} must be 1-D")
                arr = arr.astype(dtype, copy=False)
            else:
                arr = None  # filled after length is known
            if arr is not None:
                if length is None:
                    length = arr.size
                elif arr.size != length:
                    raise ValueError(
                        f"column {name!r} has {arr.size} rows, expected {length}"
                    )
            cols[name] = arr
        if length is None:
            length = 0
        for name, default in _DEFAULTS.items():
            if cols[name] is None:
                cols[name] = np.full(length, default, dtype=SCHEMA[name])
        self._columns = cols

    # -- constructors -------------------------------------------------------

    @classmethod
    def _from_validated(cls, columns: dict[str, np.ndarray]) -> "FlowTable":
        """Trusted constructor: skip per-column casting and default filling.

        Only for call sites that guarantee schema-exact columns (the
        builder, ``concat``, ``filter``, ...). Misuse is still rejected —
        the guards below are O(#columns) identity checks, not copies.
        """
        length = -1
        for name, dtype in SCHEMA.items():
            arr = columns.get(name)
            if not isinstance(arr, np.ndarray) or arr.dtype != dtype or arr.ndim != 1:
                raise ValueError(
                    f"_from_validated: column {name!r} must be a 1-D ndarray "
                    f"of dtype {dtype}"
                )
            if length < 0:
                length = arr.size
            elif arr.size != length:
                raise ValueError(
                    f"_from_validated: column {name!r} has {arr.size} rows, "
                    f"expected {length}"
                )
        if len(columns) != len(SCHEMA):
            unknown = sorted(set(columns) - set(SCHEMA))
            raise ValueError(f"_from_validated: unknown columns: {unknown}")
        table = cls.__new__(cls)
        table._columns = dict(columns)
        return table

    @staticmethod
    def empty() -> "FlowTable":
        return FlowTable._from_validated(
            {name: np.empty(0, dtype=dt) for name, dt in SCHEMA.items()}
        )

    @staticmethod
    def concat(tables) -> "FlowTable":
        """Concatenate tables (row-wise); accepts any iterable of tables.

        Output columns are preallocated once at the total length and
        filled by slice assignment, so concatenating many small tables
        (or tables that are themselves concat results) copies each row
        exactly once instead of re-running validation and
        ``np.concatenate`` per column per level.
        """
        tables = [t for t in tables if len(t)]
        if not tables:
            return FlowTable.empty()
        if len(tables) == 1:
            return tables[0]
        total = sum(len(t) for t in tables)
        cols: dict[str, np.ndarray] = {}
        for name, dtype in SCHEMA.items():
            out = np.empty(total, dtype=dtype)
            pos = 0
            for t in tables:
                n = len(t)
                out[pos : pos + n] = t._columns[name]
                pos += n
            cols[name] = out
        return FlowTable._from_validated(cols)

    @staticmethod
    def from_records(records: list[FlowRecord]) -> "FlowTable":
        cols: dict[str, np.ndarray] = {
            name: np.array([getattr(r, name) for r in records], dtype=dt)
            for name, dt in SCHEMA.items()
        }
        return FlowTable(cols)

    # -- basic protocol -------------------------------------------------------

    def __len__(self) -> int:
        return int(self._columns["time"].size)

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column {name!r}") from None

    def __iter__(self) -> Iterator[FlowRecord]:
        return self.to_records()

    def to_records(self) -> Iterator[FlowRecord]:
        """Iterate rows as :class:`FlowRecord` (slow; for small tables/IO)."""
        cols = self._columns
        for i in range(len(self)):
            yield FlowRecord(
                time=float(cols["time"][i]),
                src_ip=int(cols["src_ip"][i]),
                dst_ip=int(cols["dst_ip"][i]),
                proto=int(cols["proto"][i]),
                src_port=int(cols["src_port"][i]),
                dst_port=int(cols["dst_port"][i]),
                packets=int(cols["packets"][i]),
                bytes=int(cols["bytes"][i]),
                src_asn=int(cols["src_asn"][i]),
                dst_asn=int(cols["dst_asn"][i]),
                peer_asn=int(cols["peer_asn"][i]),
            )

    def __repr__(self) -> str:
        return f"FlowTable({len(self)} flows)"

    # -- aggregate properties ---------------------------------------------------

    @property
    def total_packets(self) -> int:
        return int(self._columns["packets"].sum())

    @property
    def total_bytes(self) -> int:
        return int(self._columns["bytes"].sum())

    def time_span(self) -> tuple[float, float]:
        """(min, max) flow start time; raises on an empty table."""
        if not len(self):
            raise ValueError("empty table has no time span")
        t = self._columns["time"]
        return float(t.min()), float(t.max())

    def unique_sources(self) -> int:
        return int(np.unique(self._columns["src_ip"]).size)

    def unique_destinations(self) -> int:
        return int(np.unique(self._columns["dst_ip"]).size)

    def mean_packet_sizes(self) -> np.ndarray:
        """Per-flow mean packet size in bytes (0 for empty flows)."""
        packets = self._columns["packets"]
        with np.errstate(divide="ignore", invalid="ignore"):
            sizes = np.where(packets > 0, self._columns["bytes"] / np.maximum(packets, 1), 0.0)
        return sizes

    # -- transformations -------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "FlowTable":
        """Rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (len(self),):
            raise ValueError("mask must be a boolean array of table length")
        if mask.all():
            # Tables are immutable by convention (as in concat's
            # single-table passthrough), so an all-True filter can skip
            # re-copying every column.
            return self
        return FlowTable._from_validated(
            {name: col[mask] for name, col in self._columns.items()}
        )

    def select(
        self,
        proto: int | None = None,
        src_port: int | None = None,
        dst_port: int | None = None,
        dst_ip: int | None = None,
        src_asn: int | None = None,
        time_range: tuple[float, float] | None = None,
        min_packet_size: float | None = None,
        max_packet_size: float | None = None,
    ) -> "FlowTable":
        """Convenience conjunctive filter over common criteria.

        ``time_range`` is half-open ``[t0, t1)``; packet-size bounds apply
        to per-flow mean packet sizes (``min`` inclusive via ``>`` as in the
        paper's "> 200 bytes" rule — exclusive lower bound).
        """
        mask = np.ones(len(self), dtype=bool)
        cols = self._columns
        if proto is not None:
            mask &= cols["proto"] == proto
        if src_port is not None:
            mask &= cols["src_port"] == src_port
        if dst_port is not None:
            mask &= cols["dst_port"] == dst_port
        if dst_ip is not None:
            mask &= cols["dst_ip"] == np.uint32(dst_ip)
        if src_asn is not None:
            mask &= cols["src_asn"] == src_asn
        if time_range is not None:
            t0, t1 = time_range
            if t1 < t0:
                raise ValueError("time_range must be ordered")
            mask &= (cols["time"] >= t0) & (cols["time"] < t1)
        if min_packet_size is not None or max_packet_size is not None:
            sizes = self.mean_packet_sizes()
            if min_packet_size is not None:
                mask &= sizes > min_packet_size
            if max_packet_size is not None:
                mask &= sizes <= max_packet_size
        return self.filter(mask)

    def sort_by_time(self) -> "FlowTable":
        order = np.argsort(self._columns["time"], kind="stable")
        return FlowTable._from_validated(
            {name: col[order] for name, col in self._columns.items()}
        )

    def scale_counts(self, factor: float) -> "FlowTable":
        """Multiply packet/byte counters by ``factor`` (sampling renormalization)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        cols = dict(self._columns)
        cols["packets"] = np.round(self._columns["packets"] * factor).astype(np.int64)
        cols["bytes"] = np.round(self._columns["bytes"] * factor).astype(np.int64)
        return FlowTable._from_validated(cols)

    def with_columns(self, **overrides: np.ndarray) -> "FlowTable":
        """Replace whole columns (e.g. anonymized addresses)."""
        cols = dict(self._columns)
        for name, arr in overrides.items():
            if name not in SCHEMA:
                raise KeyError(f"no column {name!r}")
            cols[name] = arr
        return FlowTable(cols)
