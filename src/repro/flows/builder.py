"""Columnar accumulator for building large :class:`FlowTable`\\ s.

The flow synthesizers used to emit one small ``FlowTable`` per attack
event (or per service/protocol/noise source) and concatenate at the end —
every event paid full schema validation, and every concat level recopied
all rows. :class:`FlowTableBuilder` replaces that with an
amortized-doubling columnar buffer: producers append validated blocks
directly into preallocated schema-typed arrays via :meth:`add_block`, and
:meth:`build` materializes the finished table once through the trusted
``FlowTable._from_validated`` path. Appending is bit-identical to the old
"one table per block, then concat" shape (the property tests assert it).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.flows.records import _DEFAULTS, SCHEMA, FlowTable

__all__ = ["FlowTableBuilder"]

_MIN_CAPACITY = 1024


class FlowTableBuilder:
    """Append-only columnar buffer with ``FlowTable`` schema semantics.

    Blocks are validated exactly like ``FlowTable`` construction (schema
    membership, 1-D shape, aligned lengths, dtype casts, ASN column
    defaults) but land in one growing buffer per column, so building a
    day's traffic from thousands of events costs O(rows) instead of
    O(rows x concat levels). A builder may keep accumulating after
    :meth:`build`; each build snapshots the rows appended so far.
    """

    __slots__ = ("_columns", "_capacity", "_size")

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        self._capacity = int(capacity)
        self._size = 0
        self._columns: dict[str, np.ndarray] = {
            name: np.empty(self._capacity, dtype=dt) for name, dt in SCHEMA.items()
        }

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        need = self._size + extra
        if need <= self._capacity:
            return
        new_capacity = max(need, 2 * self._capacity, _MIN_CAPACITY)
        for name, col in self._columns.items():
            grown = np.empty(new_capacity, dtype=col.dtype)
            grown[: self._size] = col[: self._size]
            self._columns[name] = grown
        self._capacity = new_capacity

    def add_block(self, columns: Mapping[str, np.ndarray]) -> "FlowTableBuilder":
        """Append one block of aligned columns (schema-validated).

        Accepts exactly what ``FlowTable(columns)`` accepts: all
        non-defaultable columns present, no unknown names, 1-D arrays of
        one shared length (values are cast to the schema dtypes); the
        ASN columns default to ``-1`` when omitted. Returns ``self``.
        """
        missing = [name for name in SCHEMA if name not in columns and name not in _DEFAULTS]
        if missing:
            raise ValueError(f"missing columns: {missing}")
        unknown = [name for name in columns if name not in SCHEMA]
        if unknown:
            raise ValueError(f"unknown columns: {unknown}")
        length: int | None = None
        arrays: dict[str, np.ndarray] = {}
        for name, dtype in SCHEMA.items():
            if name not in columns:
                continue
            arr = np.asarray(columns[name])
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D")
            arr = arr.astype(dtype, copy=False)
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise ValueError(f"column {name!r} has {arr.size} rows, expected {length}")
            arrays[name] = arr
        if not length:
            return self
        self._reserve(length)
        start = self._size
        end = start + length
        for name in SCHEMA:
            dst = self._columns[name]
            if name in arrays:
                dst[start:end] = arrays[name]
            else:
                dst[start:end] = _DEFAULTS[name]
        self._size = end
        return self

    def add_table(self, table: FlowTable) -> "FlowTableBuilder":
        """Append an existing table's rows (columns are already typed)."""
        if len(table):
            self.add_block({name: table[name] for name in SCHEMA})
        return self

    def build(self) -> FlowTable:
        """Materialize the accumulated rows as an immutable ``FlowTable``."""
        return FlowTable._from_validated(
            {name: col[: self._size].copy() for name, col in self._columns.items()}
        )

    def take(self) -> FlowTable:
        """Materialize the accumulated rows and reset the builder.

        Move semantics: when the buffers are exactly full the columns are
        handed to the table as-is — no final O(rows) copy, which matters
        for the multi-100k-row day tables at 10k-AS scale. Oversized
        buffers still slice-copy (the table must not pin 2x memory). The
        builder is empty afterwards and may be reused.
        """
        if self._size == self._capacity:
            columns = self._columns
        else:
            columns = {name: col[: self._size].copy() for name, col in self._columns.items()}
        self._capacity = 0
        self._size = 0
        self._columns = {
            name: np.empty(0, dtype=dt) for name, dt in SCHEMA.items()
        }
        return FlowTable._from_validated(columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowTableBuilder({self._size} rows, capacity {self._capacity})"
