"""Vantage-point base machinery: capture windows and the observe pipeline."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.flows.records import FlowTable
from repro.flows.sampling import PacketSampler
from repro.netmodel.addressing import PrefixAnonymizer

__all__ = ["CaptureWindow", "VantagePoint"]

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class CaptureWindow:
    """Day range (inclusive start, exclusive end) a vantage point recorded.

    The paper's traces cover different windows: the IXP 2018-10-27 to
    2019-01-31, the tier-1 ISP only 2018-12-12 to 2018-12-30, the tier-2
    ISP 2018-09-27 to 2019-02-02. Day indices are scenario days.
    """

    start_day: int
    end_day: int

    def __post_init__(self) -> None:
        if self.end_day <= self.start_day:
            raise ValueError("capture window must be non-empty")

    def contains_day(self, day: int) -> bool:
        return self.start_day <= day < self.end_day

    @property
    def n_days(self) -> int:
        return self.end_day - self.start_day

    def clip_table(self, table: FlowTable) -> FlowTable:
        """Drop flows outside the window."""
        if len(table) == 0:
            return table
        t0 = self.start_day * SECONDS_PER_DAY
        t1 = self.end_day * SECONDS_PER_DAY
        return table.select(time_range=(t0, t1))


class VantagePoint(ABC):
    """A network whose flow export we analyze.

    The observation pipeline is: visibility filter (which flows cross this
    network and from which neighbor) -> capture-window clip -> packet
    sampling -> address anonymization. Subclasses implement the
    visibility step.
    """

    def __init__(
        self,
        name: str,
        window: CaptureWindow,
        sampler: PacketSampler,
        anonymizer: PrefixAnonymizer | None,
    ) -> None:
        if not name:
            raise ValueError("vantage point needs a name")
        self.name = name
        self.window = window
        self.sampler = sampler
        self.anonymizer = anonymizer

    @abstractmethod
    def visibility_filter(self, table: FlowTable, pair_index=None) -> FlowTable:
        """Flows this vantage point's export would contain, with
        ``peer_asn`` set to the handover neighbor. ``pair_index``
        optionally carries precomputed visibility-matrix indices for
        ``table``'s ASN columns (shared across vantage points)."""

    def observe(
        self, table: FlowTable, rng: np.random.Generator, pair_index=None
    ) -> FlowTable:
        """Full observation pipeline: filter, clip, sample, anonymize."""
        visible = self.visibility_filter(table, pair_index=pair_index)
        clipped = self.window.clip_table(visible)
        sampled = self.sampler.apply(clipped, rng)
        if self.anonymizer is not None and len(sampled):
            sampled = sampled.with_columns(
                src_ip=self.anonymizer.anonymize_array(sampled["src_ip"]),
                dst_ip=self.anonymizer.anonymize_array(sampled["dst_ip"]),
            )
        return sampled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, days [{self.window.start_day}, {self.window.end_day}))"
