"""ISP vantage points: NetFlow at border routers."""

from __future__ import annotations

from repro.flows.records import FlowTable
from repro.flows.sampling import PacketSampler
from repro.netmodel.addressing import PrefixAnonymizer
from repro.vantage.base import CaptureWindow, VantagePoint
from repro.vantage.visibility import FlowVisibility

__all__ = ["ISPVantagePoint"]


class ISPVantagePoint(VantagePoint):
    """An ISP's border-router NetFlow export.

    With ``ingress_only=True`` this reproduces the paper's tier-1 trace:
    only traffic entering the network from outside, with traffic sourced
    by the ISP's own end-users and customers excluded. With
    ``ingress_only=False`` it reproduces the tier-2 trace, which contains
    both directions including customer-sourced traffic.
    """

    def __init__(
        self,
        asn: int,
        visibility: FlowVisibility,
        window: CaptureWindow,
        ingress_only: bool,
        sampling_denominator: int = 1000,
        anonymizer: PrefixAnonymizer | None = None,
        name: str | None = None,
    ) -> None:
        if asn <= 0:
            raise ValueError(f"ASN must be positive, got {asn}")
        default_name = f"{'tier-1' if ingress_only else 'tier-2'} ISP (AS{asn})"
        super().__init__(
            name=name or default_name,
            window=window,
            sampler=PacketSampler(sampling_denominator),
            anonymizer=anonymizer,
        )
        self.asn = asn
        self.ingress_only = ingress_only
        self.visibility = visibility

    def visibility_filter(self, table: FlowTable, pair_index=None) -> FlowTable:
        if len(table) == 0:
            return table
        mask, peers = self.visibility.isp_mask(
            self.asn,
            table["src_asn"],
            table["dst_asn"],
            self.ingress_only,
            pair_index=pair_index,
        )
        return table.with_columns(peer_asn=peers).filter(mask)
