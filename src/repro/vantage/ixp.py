"""The IXP vantage point: sampled IPFIX of the peering fabric."""

from __future__ import annotations

from repro.flows.records import FlowTable
from repro.flows.sampling import PacketSampler
from repro.netmodel.addressing import PrefixAnonymizer
from repro.vantage.base import CaptureWindow, VantagePoint
from repro.vantage.visibility import FlowVisibility

__all__ = ["IXPVantagePoint"]


class IXPVantagePoint(VantagePoint):
    """A major IXP's flow export.

    Sees exactly the traffic crossing its peering LAN: flows whose AS path
    traverses a route-server (or bilateral) peering edge established at
    this IXP. Crucially it does *not* see traffic the same members
    exchange over transit or private links — which is why the paper warns
    that IXP-observed attack volumes underestimate true volumes.
    """

    def __init__(
        self,
        visibility: FlowVisibility,
        window: CaptureWindow,
        sampling_denominator: int = 10_000,
        anonymizer: PrefixAnonymizer | None = None,
        name: str = "large IXP",
    ) -> None:
        super().__init__(
            name=name,
            window=window,
            sampler=PacketSampler(sampling_denominator),
            anonymizer=anonymizer,
        )
        self.visibility = visibility

    def visibility_filter(self, table: FlowTable, pair_index=None) -> FlowTable:
        if len(table) == 0:
            return table
        mask, peers = self.visibility.ixp_mask(
            table["src_asn"], table["dst_asn"], pair_index=pair_index
        )
        return table.with_columns(peer_asn=peers).filter(mask)
