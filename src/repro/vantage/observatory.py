"""The IXP observatory: the measurement AS used for self-attacks.

Section 2/3 of the paper: a dedicated measurement AS, connected to the IXP
over a 10GE link, announcing an otherwise unused /24, peering
multilaterally via the route server and buying transit over the same
physical interface. Attacks are captured unsampled at the AS; the IXP's
sampled view covers what exceeds the interface.

:class:`IXPObservatory` drives that setup: it provisions a fresh victim IP
per attack (the paper isolates every measurement on a new address from
the /24), expands the attack into per-second flows, applies reachability
(transit on/off), ingress labeling, interface capacity, and BGP-flap
dynamics, and reports the per-second series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.booter.attack import AttackEvent, synthesize_attack_flows
from repro.netmodel.addressing import Prefix
from repro.netmodel.asn import ASRegistry
from repro.netmodel.router import MeasurementRouter
from repro.netmodel.topology import ASTopology

__all__ = ["SelfAttackMeasurement", "IXPObservatory"]


@dataclass
class SelfAttackMeasurement:
    """Post-mortem of one self-attack.

    Per-second arrays are aligned with ``seconds`` (offsets from attack
    start). Rates are *delivered* traffic after capacity clipping and
    transit flaps, as captured at the measurement AS.
    """

    booter: str
    vector: str
    plan: str
    transit_enabled: bool
    seconds: np.ndarray
    delivered_bps: np.ndarray
    offered_bps: np.ndarray
    transit_bps: np.ndarray
    peering_bps: np.ndarray
    transit_up: np.ndarray
    reflectors_per_second: np.ndarray
    peers_per_second: np.ndarray
    reflector_ips: np.ndarray
    peer_asns: np.ndarray
    peer_byte_share: dict[int, float] = field(default_factory=dict)

    @property
    def peak_bps(self) -> float:
        return float(self.delivered_bps.max()) if self.delivered_bps.size else 0.0

    @property
    def peak_offered_bps(self) -> float:
        """Peak rate as observed at the IXP fabric (pre interface clipping).

        The paper measures attack traffic exceeding the 10GE interface via
        the IXP's sampled traces — this is the 20 Gbps of Figure 1(b).
        """
        return float(self.offered_bps.max()) if self.offered_bps.size else 0.0

    @property
    def mean_bps(self) -> float:
        return float(self.delivered_bps.mean()) if self.delivered_bps.size else 0.0

    @property
    def n_reflectors(self) -> int:
        return int(self.reflector_ips.size)

    @property
    def n_peers(self) -> int:
        return int(self.peer_asns.size)

    @property
    def transit_share(self) -> float:
        """Fraction of delivered bytes that arrived via the transit link."""
        total = self.transit_bps.sum() + self.peering_bps.sum()
        return float(self.transit_bps.sum() / total) if total else 0.0

    def flapped(self) -> bool:
        return bool(self.transit_enabled and not self.transit_up.all())


class IXPObservatory:
    """The measurement AS at the IXP.

    Args:
        registry: scenario AS registry (must contain ``asn``).
        topology: scenario topology.
        asn: the measurement AS number.
        prefix: the /24 announced for the experiments.
        transit_provider: ASN of the transit upstream.
        capacity_bps: physical interface rate (10GE).
    """

    def __init__(
        self,
        registry: ASRegistry,
        topology: ASTopology,
        asn: int,
        prefix: Prefix,
        transit_provider: int,
        capacity_bps: float = 10e9,
        peering_adoption: float = 0.5,
        cone_export_prob: float = 0.3,
        decision_seed: int = 0,
        flap_trigger_seconds: int = 120,
        flap_holddown_seconds: int = 50,
    ) -> None:
        if prefix.length != 24:
            raise ValueError(f"the observatory announces a /24, got /{prefix.length}")
        self.registry = registry
        self.topology = topology
        self.asn = asn
        self.prefix = prefix
        self.transit_provider = transit_provider
        self.capacity_bps = capacity_bps
        self.peering_adoption = peering_adoption
        self.cone_export_prob = cone_export_prob
        self.decision_seed = decision_seed
        self.flap_trigger_seconds = flap_trigger_seconds
        self.flap_holddown_seconds = flap_holddown_seconds
        self._next_host = 1  # .0 is the network address

    def fresh_victim_ip(self) -> int:
        """A previously unused address from the /24 (one per measurement)."""
        if self._next_host >= self.prefix.size - 1:
            raise RuntimeError("the /24 ran out of fresh measurement addresses")
        ip = self.prefix.address_at(self._next_host)
        self._next_host += 1
        return ip

    def capture_attack(
        self,
        event: AttackEvent,
        rng: np.random.Generator,
        transit_enabled: bool = True,
        bin_jitter: float = 0.25,
    ) -> SelfAttackMeasurement:
        """Run ``event`` against the observatory and measure it.

        The event's victim must be an address inside the observatory /24.
        Capture is unsampled and per-second. ``bin_jitter`` is the
        per-second attack-wide rate wiggle (VIP attacks run much steadier
        than non-VIP ones).
        """
        if not self.prefix.contains(event.victim_ip):
            raise ValueError("self-attack victim must be inside the observatory /24")
        router = MeasurementRouter(
            self.registry,
            self.topology,
            asn=self.asn,
            transit_provider=self.transit_provider,
            transit_enabled=transit_enabled,
            capacity_bps=self.capacity_bps,
            peering_adoption=self.peering_adoption,
            cone_export_prob=self.cone_export_prob,
            decision_seed=self.decision_seed,
            flap_trigger_seconds=self.flap_trigger_seconds,
            flap_holddown_seconds=self.flap_holddown_seconds,
        )
        flows = synthesize_attack_flows(event, rng, bin_seconds=1.0, bin_jitter=bin_jitter)
        origins, handover = router.ingress_for_sources(flows["src_asn"])
        reachable = origins != 2
        flows = flows.with_columns(peer_asn=handover).filter(reachable)
        origins = origins[reachable]

        n_secs = int(np.ceil(event.end_time)) - int(np.floor(event.start_time))
        t0 = np.floor(event.start_time)
        seconds = np.arange(n_secs, dtype=np.int64)
        sec_idx = (flows["time"] - t0).astype(np.int64)
        in_range = (sec_idx >= 0) & (sec_idx < n_secs)
        sec_idx = sec_idx[in_range]
        flows = flows.filter(in_range)
        origins = origins[in_range]

        bits = flows["bytes"].astype(np.float64) * 8.0
        transit_bits = np.zeros(n_secs)
        peering_bits = np.zeros(n_secs)
        np.add.at(transit_bits, sec_idx[origins == 0], bits[origins == 0])
        np.add.at(peering_bits, sec_idx[origins == 1], bits[origins == 1])

        delivered, transit_up = router.deliver_timeseries(transit_bits, peering_bits)
        # Offered load at the IXP fabric: what the sampled IXP trace sees,
        # unconstrained by our 10GE interface (but transit traffic stops
        # reaching the fabric while the transit route is withdrawn).
        effective_transit = np.where(transit_up, transit_bits, 0.0)
        offered = effective_transit + peering_bits
        # Capacity clipping applies proportionally to both ingresses.
        with np.errstate(divide="ignore", invalid="ignore"):
            clip = np.where(offered > 0, np.minimum(1.0, self.capacity_bps / offered), 1.0)
        effective_transit = effective_transit * clip
        effective_peering = peering_bits * clip

        # Per-second reflector and peer counts (only flows that were
        # actually delivered: transit flows in flap seconds don't count).
        alive = transit_up[sec_idx] | (origins == 1)
        live_secs = sec_idx[alive]
        refl_keys = np.unique(
            live_secs.astype(np.uint64) << np.uint64(32)
            | flows["src_ip"][alive].astype(np.uint64)
        )
        reflectors_per_second = np.bincount(
            (refl_keys >> np.uint64(32)).astype(np.int64), minlength=n_secs
        )
        peer_keys = np.unique(
            live_secs.astype(np.uint64) << np.uint64(32)
            | flows["peer_asn"][alive].astype(np.uint64)
        )
        peers_per_second = np.bincount(
            (peer_keys >> np.uint64(32)).astype(np.int64), minlength=n_secs
        )

        # Byte share per IXP peer (Fig. 1b: one member carried 45.55% of
        # the peering traffic of the VIP NTP attack).
        peer_share: dict[int, float] = {}
        peering_mask = origins == 1
        peering_total = float(bits[peering_mask].sum())
        if peering_total > 0:
            for peer in np.unique(flows["peer_asn"][peering_mask]):
                share = float(
                    bits[peering_mask & (flows["peer_asn"] == peer)].sum() / peering_total
                )
                peer_share[int(peer)] = share

        return SelfAttackMeasurement(
            booter=event.booter,
            vector=event.vector,
            plan=event.plan,
            transit_enabled=transit_enabled,
            seconds=seconds,
            delivered_bps=delivered,
            offered_bps=offered,
            transit_bps=effective_transit,
            peering_bps=effective_peering,
            transit_up=transit_up,
            reflectors_per_second=reflectors_per_second,
            peers_per_second=peers_per_second,
            reflector_ips=np.unique(flows["src_ip"]),
            peer_asns=np.unique(flows["peer_asn"][peering_mask])
            if peering_mask.any()
            else np.empty(0, dtype=np.int64),
            peer_byte_share=peer_share,
        )
