"""Vantage points: what each network actually sees.

The paper's three traces differ in visibility, direction, and sampling:

* the IXP exports *sampled* IPFIX of traffic crossing its peering fabric;
* the tier-1 ISP exports ingress-only NetFlow at its border routers, with
  traffic sourced by its own end-users/customers excluded;
* the tier-2 ISP exports both directions including customer-sourced
  traffic.

All three anonymize addresses. This package reproduces those lenses over
the synthetic global traffic, plus the paper's dedicated measurement AS
(the "IXP observatory") used for the self-attacks.
"""

from repro.vantage.base import CaptureWindow, VantagePoint
from repro.vantage.isp import ISPVantagePoint
from repro.vantage.ixp import IXPVantagePoint
from repro.vantage.matrix import VisibilityMatrix
from repro.vantage.observatory import IXPObservatory, SelfAttackMeasurement
from repro.vantage.visibility import FlowVisibility

__all__ = [
    "CaptureWindow",
    "FlowVisibility",
    "ISPVantagePoint",
    "IXPObservatory",
    "IXPVantagePoint",
    "SelfAttackMeasurement",
    "VantagePoint",
    "VisibilityMatrix",
]
