"""AS-level flow visibility.

Decides, for a (src ASN, dst ASN) pair, whether a flow is seen by a given
observer and which neighbor AS hands it over. Decisions are pure functions
of the topology's valley-free routing. Two resolution strategies coexist:

* a lazy memoized oracle (one pair at a time, per-pair path walk), always
  available and the authority on correctness;
* an optional dense :class:`~repro.vantage.matrix.VisibilityMatrix` fast
  path that resolves whole flow tables with fancy indexing, falling back
  to the oracle for out-of-registry ASNs (e.g. ``-1`` unknowns).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.netmodel.topology import ASTopology
from repro.obs import metrics
from repro.vantage.matrix import VisibilityMatrix

__all__ = ["Visibility", "FlowVisibility"]


@dataclass(frozen=True)
class Visibility:
    """Observation verdict for one (src ASN, dst ASN) pair.

    Attributes:
        visible: whether the observer sees the flow at all.
        peer_asn: the neighbor AS handing the flow to the observer
            (-1 when invisible or the observer originates the flow).
    """

    visible: bool
    peer_asn: int = -1


class FlowVisibility:
    """Visibility oracle for one topology.

    With ``matrix`` set (how :class:`~repro.scenario.scenario.Scenario`
    constructs it), the vectorized mask methods resolve registry AS pairs
    by fancy indexing into the precomputed tables and only consult the
    lazy per-pair oracle for ASNs outside the registry. The
    ``visibility.matrix_hits`` / ``visibility.fallback_lookups`` counters
    record the split so profiles expose a topology that silently bypasses
    the matrix.
    """

    def __init__(self, topology: ASTopology, matrix: VisibilityMatrix | None = None) -> None:
        self.topology = topology
        self.matrix = matrix
        self._ixp_cached = lru_cache(maxsize=1 << 18)(self._ixp_visibility)
        self._isp_cached = lru_cache(maxsize=1 << 18)(self._isp_visibility)

    # -- IXP ------------------------------------------------------------------

    def _ixp_visibility(self, src_asn: int, dst_asn: int) -> Visibility:
        """A flow crosses the IXP iff its AS path uses an IXP peering edge.

        The handover peer is the src-side member of that edge (the member
        whose router forwards the packets onto the fabric).
        """
        if src_asn == dst_asn or src_asn < 0 or dst_asn < 0:
            return Visibility(False)
        path = self.topology.path(src_asn, dst_asn)
        if path is None:
            return Visibility(False)
        for a, b in zip(path, path[1:]):
            if self.topology.is_ixp_peering(a, b):
                return Visibility(True, peer_asn=a)
        return Visibility(False)

    def at_ixp(self, src_asn: int, dst_asn: int) -> Visibility:
        return self._ixp_cached(int(src_asn), int(dst_asn))

    # -- ISP ------------------------------------------------------------------

    def _isp_visibility(
        self, observer_asn: int, src_asn: int, dst_asn: int, ingress_only: bool
    ) -> Visibility:
        """Whether an ISP's border routers see the flow.

        The flow is visible when ``observer_asn`` lies on the AS path. With
        ``ingress_only`` (tier-1 trace), flows sourced inside the
        observer's own network or its customer cone are excluded — the
        paper's tier-1 trace contains no end-user/customer-sourced
        traffic. The handover peer is the AS immediately before the
        observer on the path (or after, for egress-side observation).
        """
        if src_asn < 0 or dst_asn < 0:
            return Visibility(False)
        if src_asn == dst_asn:
            return Visibility(False)
        path = self.topology.path(src_asn, dst_asn)
        if path is None or observer_asn not in path:
            return Visibility(False)
        if ingress_only and src_asn in self.topology.customer_cone(observer_asn):
            return Visibility(False)
        idx = path.index(observer_asn)
        if idx > 0:
            return Visibility(True, peer_asn=path[idx - 1])
        # Observer originates the flow (egress only; tier-2 both-directions).
        if ingress_only:
            return Visibility(False)
        peer = path[idx + 1] if len(path) > 1 else -1
        return Visibility(True, peer_asn=peer)

    def at_isp(
        self, observer_asn: int, src_asn: int, dst_asn: int, ingress_only: bool
    ) -> Visibility:
        return self._isp_cached(int(observer_asn), int(src_asn), int(dst_asn), bool(ingress_only))

    # -- vectorized helpers --------------------------------------------------------

    def ixp_mask(
        self,
        src_asns: np.ndarray,
        dst_asns: np.ndarray,
        pair_index: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`at_ixp` -> (visible mask, peer ASN array).

        ``pair_index`` optionally carries precomputed matrix indices for
        the same ASN arrays (from ``matrix.pair_index``), so repeated
        observations of one day table share the resolution work.
        """
        if self.matrix is None:
            return self._mask(src_asns, dst_asns, self.at_ixp)
        return self._matrix_mask(
            src_asns, dst_asns, self.matrix.lookup_ixp, self.at_ixp, pair_index
        )

    def isp_mask(
        self,
        observer_asn: int,
        src_asns: np.ndarray,
        dst_asns: np.ndarray,
        ingress_only: bool,
        pair_index: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`at_isp` -> (visible mask, peer ASN array)."""

        def check(src: int, dst: int) -> Visibility:
            return self.at_isp(observer_asn, src, dst, ingress_only)

        if self.matrix is not None and self.matrix.knows_observer(observer_asn):

            def lookup(src_idx: np.ndarray, dst_idx: np.ndarray):
                return self.matrix.lookup_isp(observer_asn, ingress_only, src_idx, dst_idx)

            return self._matrix_mask(src_asns, dst_asns, lookup, check, pair_index)
        return self._mask(src_asns, dst_asns, check)

    def _matrix_mask(
        self,
        src_asns: np.ndarray,
        dst_asns: np.ndarray,
        lookup,
        check,
        pair_index: tuple[np.ndarray, np.ndarray] | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve registry pairs through the matrix; route the rest through
        the oracle. ``lookup`` maps aligned (src, dst) index arrays to
        ``(visible, peer)`` — dense fancy indexing or blocked column fetches,
        the split is the matrix's concern."""
        src_asns = np.asarray(src_asns, dtype=np.int64)
        dst_asns = np.asarray(dst_asns, dtype=np.int64)
        if src_asns.shape != dst_asns.shape:
            raise ValueError("src and dst ASN arrays must align")
        if pair_index is None:
            src_idx, dst_idx = self.matrix.pair_index(src_asns, dst_asns)
        else:
            src_idx, dst_idx = pair_index
            if src_idx.shape != src_asns.shape or dst_idx.shape != dst_asns.shape:
                raise ValueError("pair_index does not match the ASN arrays")
        known = (src_idx >= 0) & (dst_idx >= 0)
        if known.all():
            vis, peers = lookup(src_idx, dst_idx)
            n_fallback = 0
        else:
            vis = np.zeros(src_asns.size, dtype=bool)
            peers = np.full(src_asns.size, -1, dtype=np.int64)
            vis[known], peers[known] = lookup(src_idx[known], dst_idx[known])
            unknown = ~known
            n_fallback = int(unknown.sum())
            f_vis, f_peers = self._mask(src_asns[unknown], dst_asns[unknown], check)
            vis[unknown] = f_vis
            peers[unknown] = f_peers
        registry = metrics()
        if registry.enabled:
            registry.inc("visibility.matrix_hits", int(src_asns.size) - n_fallback)
            registry.inc("visibility.fallback_lookups", n_fallback)
        return vis, peers

    @staticmethod
    def _mask(src_asns, dst_asns, check) -> tuple[np.ndarray, np.ndarray]:
        src_asns = np.asarray(src_asns, dtype=np.int64)
        dst_asns = np.asarray(dst_asns, dtype=np.int64)
        if src_asns.shape != dst_asns.shape:
            raise ValueError("src and dst ASN arrays must align")
        pairs = src_asns.astype(np.int64) << np.int64(32) | (dst_asns & np.int64(0xFFFFFFFF))
        unique_pairs, inverse = np.unique(pairs, return_inverse=True)
        vis = np.empty(unique_pairs.size, dtype=bool)
        peers = np.empty(unique_pairs.size, dtype=np.int64)
        for i, key in enumerate(unique_pairs):
            src = int(key >> np.int64(32))
            dst = int(np.int64(key) & np.int64(0xFFFFFFFF))
            # Recover sign of dst (ASNs can be -1 for unknown).
            if dst >= 1 << 31:
                dst -= 1 << 32
            verdict = check(src, dst)
            vis[i] = verdict.visible
            peers[i] = verdict.peer_asn
        return vis[inverse], peers[inverse]
