"""AS-level flow visibility.

Decides, for a (src ASN, dst ASN) pair, whether a flow is seen by a given
observer and which neighbor AS hands it over. Decisions are pure functions
of the topology's valley-free routing and are memoized per pair, since
traffic concentrates on few AS pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.netmodel.topology import ASTopology

__all__ = ["Visibility", "FlowVisibility"]


@dataclass(frozen=True)
class Visibility:
    """Observation verdict for one (src ASN, dst ASN) pair.

    Attributes:
        visible: whether the observer sees the flow at all.
        peer_asn: the neighbor AS handing the flow to the observer
            (-1 when invisible or the observer originates the flow).
    """

    visible: bool
    peer_asn: int = -1


class FlowVisibility:
    """Visibility oracle for one topology."""

    def __init__(self, topology: ASTopology) -> None:
        self.topology = topology
        self._ixp_cached = lru_cache(maxsize=1 << 18)(self._ixp_visibility)
        self._isp_cached = lru_cache(maxsize=1 << 18)(self._isp_visibility)

    # -- IXP ------------------------------------------------------------------

    def _ixp_visibility(self, src_asn: int, dst_asn: int) -> Visibility:
        """A flow crosses the IXP iff its AS path uses an IXP peering edge.

        The handover peer is the src-side member of that edge (the member
        whose router forwards the packets onto the fabric).
        """
        if src_asn == dst_asn or src_asn < 0 or dst_asn < 0:
            return Visibility(False)
        path = self.topology.path(src_asn, dst_asn)
        if path is None:
            return Visibility(False)
        for a, b in zip(path, path[1:]):
            if self.topology.is_ixp_peering(a, b):
                return Visibility(True, peer_asn=a)
        return Visibility(False)

    def at_ixp(self, src_asn: int, dst_asn: int) -> Visibility:
        return self._ixp_cached(int(src_asn), int(dst_asn))

    # -- ISP ------------------------------------------------------------------

    def _isp_visibility(
        self, observer_asn: int, src_asn: int, dst_asn: int, ingress_only: bool
    ) -> Visibility:
        """Whether an ISP's border routers see the flow.

        The flow is visible when ``observer_asn`` lies on the AS path. With
        ``ingress_only`` (tier-1 trace), flows sourced inside the
        observer's own network or its customer cone are excluded — the
        paper's tier-1 trace contains no end-user/customer-sourced
        traffic. The handover peer is the AS immediately before the
        observer on the path (or after, for egress-side observation).
        """
        if src_asn < 0 or dst_asn < 0:
            return Visibility(False)
        if src_asn == dst_asn:
            return Visibility(False)
        path = self.topology.path(src_asn, dst_asn)
        if path is None or observer_asn not in path:
            return Visibility(False)
        if ingress_only and src_asn in self.topology.customer_cone(observer_asn):
            return Visibility(False)
        idx = path.index(observer_asn)
        if idx > 0:
            return Visibility(True, peer_asn=path[idx - 1])
        # Observer originates the flow (egress only; tier-2 both-directions).
        if ingress_only:
            return Visibility(False)
        peer = path[idx + 1] if len(path) > 1 else -1
        return Visibility(True, peer_asn=peer)

    def at_isp(
        self, observer_asn: int, src_asn: int, dst_asn: int, ingress_only: bool
    ) -> Visibility:
        return self._isp_cached(int(observer_asn), int(src_asn), int(dst_asn), bool(ingress_only))

    # -- vectorized helpers --------------------------------------------------------

    def ixp_mask(self, src_asns: np.ndarray, dst_asns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`at_ixp` -> (visible mask, peer ASN array)."""
        return self._mask(src_asns, dst_asns, self.at_ixp)

    def isp_mask(
        self,
        observer_asn: int,
        src_asns: np.ndarray,
        dst_asns: np.ndarray,
        ingress_only: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`at_isp` -> (visible mask, peer ASN array)."""

        def check(src: int, dst: int) -> Visibility:
            return self.at_isp(observer_asn, src, dst, ingress_only)

        return self._mask(src_asns, dst_asns, check)

    @staticmethod
    def _mask(src_asns, dst_asns, check) -> tuple[np.ndarray, np.ndarray]:
        src_asns = np.asarray(src_asns, dtype=np.int64)
        dst_asns = np.asarray(dst_asns, dtype=np.int64)
        if src_asns.shape != dst_asns.shape:
            raise ValueError("src and dst ASN arrays must align")
        pairs = src_asns.astype(np.int64) << np.int64(32) | (dst_asns & np.int64(0xFFFFFFFF))
        unique_pairs, inverse = np.unique(pairs, return_inverse=True)
        vis = np.empty(unique_pairs.size, dtype=bool)
        peers = np.empty(unique_pairs.size, dtype=np.int64)
        for i, key in enumerate(unique_pairs):
            src = int(key >> np.int64(32))
            dst = int(np.int64(key) & np.int64(0xFFFFFFFF))
            # Recover sign of dst (ASNs can be -1 for unknown).
            if dst >= 1 << 31:
                dst -= 1 << 32
            verdict = check(src, dst)
            vis[i] = verdict.visible
            peers[i] = verdict.peer_asn
        return vis[inverse], peers[inverse]
