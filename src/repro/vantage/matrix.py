"""Dense precomputed visibility verdicts for all registry AS pairs.

:class:`~repro.vantage.visibility.FlowVisibility` answers one (src ASN,
dst ASN) pair at a time through a memoized oracle; at day-pipeline scale
the Python loop over unique pairs dominates observation, and each worker
process re-warms its caches from scratch. :class:`VisibilityMatrix`
instead materializes the verdicts for *every* ordered pair of registry
ASNs into dense ``(n_asn x n_asn)`` ``visible``/``peer_asn`` arrays, so a
whole flow table resolves with two ``searchsorted`` calls and fancy
indexing — no per-pair Python work, and the arrays survive pickling and
forking intact.

The matrices are built from the topology's per-destination route trees in
O(n^2): a source's verdict towards a destination is either decided by its
first hop (the hop crosses the IXP fabric / reaches the observer) or
inherited from its next hop's verdict, so each destination column fills
in one pass over ASes ordered by route length. Verdicts are bit-identical
to the lazy oracle's (the test suite asserts parity over all pairs).
"""

from __future__ import annotations

import numpy as np

from repro.netmodel.topology import ASTopology

__all__ = ["VisibilityMatrix"]


class VisibilityMatrix:
    """Precomputed ``visible``/``peer_asn`` tables over registry ASNs.

    Tables are built lazily per observation kind (IXP fabric, or one
    ``(observer ASN, ingress_only)`` ISP view) and invalidated when the
    topology gains edges after construction. ASN values outside the
    registry (e.g. ``-1`` for unresolved addresses) are not covered;
    callers route those through the lazy oracle fallback.
    """

    #: Largest ASN value for which a dense ASN -> index lookup table is
    #: materialized (int32, so 4 MiB at the cap); beyond it ``index_of``
    #: degrades to binary search.
    _LUT_MAX_ASN = 1 << 20

    def __init__(self, topology: ASTopology) -> None:
        self.topology = topology
        self._generation = topology.version
        self._asns = np.asarray(topology.asns, dtype=np.int64)
        self._lut = self._build_lut(self._asns)
        self._ixp: tuple[np.ndarray, np.ndarray] | None = None
        self._isp: dict[tuple[int, bool], tuple[np.ndarray, np.ndarray]] = {}

    @staticmethod
    def _build_lut(asns: np.ndarray) -> np.ndarray | None:
        if asns.size == 0 or int(asns[-1]) > VisibilityMatrix._LUT_MAX_ASN:
            return None
        lut = np.full(int(asns[-1]) + 1, -1, dtype=np.int32)
        lut[asns] = np.arange(asns.size, dtype=np.int32)
        return lut

    # -- ASN index ----------------------------------------------------------

    @property
    def generation(self) -> int:
        """Topology edge-mutation counter the cached tables correspond to."""
        self._refresh()
        return self._generation

    def _refresh(self) -> None:
        if self.topology.version != self._generation:
            self._generation = self.topology.version
            self._asns = np.asarray(self.topology.asns, dtype=np.int64)
            self._lut = self._build_lut(self._asns)
            self._ixp = None
            self._isp.clear()

    @property
    def asns(self) -> np.ndarray:
        """Sorted registry ASNs; row/column ``i`` of every table is ``asns[i]``."""
        self._refresh()
        return self._asns

    def index_of(self, asn_values: np.ndarray) -> np.ndarray:
        """Map ASN values to table indices (``-1`` for out-of-registry ASNs)."""
        asns = self.asns
        values = np.asarray(asn_values, dtype=np.int64)
        if self._lut is not None:
            # Direct gather: one clip + one take beats a binary search per
            # value on the multi-100k-row day tables.
            in_range = (values >= 0) & (values < self._lut.size)
            idx = self._lut[np.where(in_range, values, 0)].astype(np.int64)
            idx[~in_range] = -1
            return idx
        idx = np.searchsorted(asns, values)
        idx[idx == asns.size] = 0
        return np.where(asns[idx] == values, idx, -1)

    def pair_index(self, src_asns: np.ndarray, dst_asns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(src indices, dst indices) for aligned ASN arrays, ``-1`` = unknown."""
        src_asns = np.asarray(src_asns)
        dst_asns = np.asarray(dst_asns)
        if src_asns.shape != dst_asns.shape:
            raise ValueError("src and dst ASN arrays must align")
        return self.index_of(src_asns), self.index_of(dst_asns)

    # -- table construction -------------------------------------------------

    def _length_order(self, routes: dict) -> list[int]:
        """Route holders ordered so every AS follows its next hop.

        At the route tree's fixed point each entry's length is exactly its
        next hop's length plus one, so ascending length order guarantees
        the inherited verdict is already filled in.
        """
        return sorted(routes, key=lambda asn: routes[asn].length)

    def ixp_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense IXP verdicts: ``(visible[src, dst], peer_asn[src, dst])``."""
        self._refresh()
        if self._ixp is None:
            topo = self.topology
            asns = self._asns
            n = asns.size
            index = {int(a): i for i, a in enumerate(asns)}
            visible = np.zeros((n, n), dtype=bool)
            peer = np.full((n, n), -1, dtype=np.int64)
            for j, dst in enumerate(asns.tolist()):
                routes = topo._routes_to(dst)
                for src in self._length_order(routes):
                    if src == dst:
                        continue
                    hop = routes[src].next_hop
                    i = index[src]
                    if topo.is_ixp_peering(src, hop):
                        visible[i, j] = True
                        peer[i, j] = src
                    else:
                        k = index[hop]
                        visible[i, j] = visible[k, j]
                        peer[i, j] = peer[k, j]
            self._ixp = (visible, peer)
        return self._ixp

    def isp_tables(self, observer_asn: int, ingress_only: bool) -> tuple[np.ndarray, np.ndarray]:
        """Dense ISP verdicts for one ``(observer, ingress_only)`` view."""
        self._refresh()
        key = (int(observer_asn), bool(ingress_only))
        cached = self._isp.get(key)
        if cached is not None:
            return cached
        topo = self.topology
        asns = self._asns
        n = asns.size
        index = {int(a): i for i, a in enumerate(asns)}
        observer = int(observer_asn)
        if observer not in index:
            raise KeyError(f"observer ASN {observer} not in registry")
        on_path = np.zeros((n, n), dtype=bool)
        pred = np.full((n, n), -1, dtype=np.int64)
        for j, dst in enumerate(asns.tolist()):
            routes = topo._routes_to(dst)
            if observer in routes and observer != dst:
                # Observer-sourced flows: the handover "peer" is the next
                # AS on the observer's own path (the oracle's egress rule).
                on_path[index[observer], j] = True
                pred[index[observer], j] = routes[observer].next_hop
            for src in self._length_order(routes):
                if src == dst or src == observer:
                    continue
                hop = routes[src].next_hop
                i = index[src]
                if hop == observer:
                    on_path[i, j] = True
                    pred[i, j] = src
                else:
                    k = index[hop]
                    on_path[i, j] = on_path[k, j]
                    pred[i, j] = pred[k, j]
        if ingress_only:
            # Tier-1 trace rule: flows sourced inside the observer's
            # customer cone (the observer included) are not exported.
            cone = topo.customer_cone(observer)
            in_cone = np.fromiter((int(a) in cone for a in asns), dtype=bool, count=n)
            on_path &= ~in_cone[:, None]
        visible = on_path
        peer = np.where(visible, pred, np.int64(-1))
        self._isp[key] = (visible, peer)
        return self._isp[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = ["ixp"] if self._ixp is not None else []
        built += [f"isp{k}" for k in self._isp]
        return f"VisibilityMatrix({self._asns.size} ASNs, built={built or 'none'})"
