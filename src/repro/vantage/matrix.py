"""Precomputed visibility verdicts over registry AS pairs, dense or blocked.

:class:`~repro.vantage.visibility.FlowVisibility` answers one (src ASN,
dst ASN) pair at a time through a memoized oracle; at day-pipeline scale
the Python loop over unique pairs dominates observation, and each worker
process re-warms its caches from scratch. :class:`VisibilityMatrix`
materializes verdicts for whole pair sets instead, with two storage modes:

* **dense** — full ``(n_asn x n_asn)`` ``visible``/``peer_asn`` tables per
  observation view, resolved by fancy indexing. The historical fast path;
  kept bit-identical for every existing workload, but ``bool + int32`` per
  view means ~5 bytes * n^2 — at 10k ASes that is ~0.5 GB per view, which
  is why it stops being the default above ``dense_max_asns``.
* **blocked** — tables are built per destination-column *block* on demand
  (``block_columns`` columns at a time), stored ``bool``/int32 in a
  byte-budget LRU. Lookups group query pairs by block, so a day's flow
  table touches only the destination columns it actually contains.
  ``matrix.blocks_built`` / ``matrix.evictions`` counters and the
  ``matrix.resident_bytes`` gauge expose the cache behavior.

Both modes share one vectorized column builder: a source's verdict towards
a destination is either decided by its first hop (the hop crosses the IXP
fabric / reaches the observer) or inherited from its next hop's verdict,
so each destination column fills level by level over the route tree's
length groups — no per-pair Python. Verdicts are bit-identical to the lazy
oracle's (the test suite asserts parity over all pairs in both modes).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.netmodel.topology import ASTopology
from repro.obs import metrics

__all__ = ["VisibilityMatrix"]

#: Valid storage modes. ``auto`` picks dense below ``dense_max_asns``.
MODES = ("auto", "dense", "blocked")

_IXP_VIEW = ("ixp",)


class VisibilityMatrix:
    """Precomputed ``visible``/``peer_asn`` verdicts over registry ASNs.

    Tables are built lazily per observation view (IXP fabric, or one
    ``(observer ASN, ingress_only)`` ISP view) and invalidated when the
    topology gains edges after construction. ASN values outside the
    registry (e.g. ``-1`` for unresolved addresses) are not covered;
    callers route those through the lazy oracle fallback.
    """

    #: Largest ASN value for which a dense ASN -> index lookup table is
    #: materialized (int32, so 4 MiB at the cap); beyond it ``index_of``
    #: degrades to binary search.
    _LUT_MAX_ASN = 1 << 20

    def __init__(
        self,
        topology: ASTopology,
        *,
        mode: str = "auto",
        dense_max_asns: int = 4096,
        block_columns: int = 512,
        budget_bytes: int = 256 << 20,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r} (choose from {'/'.join(MODES)})")
        if block_columns < 1:
            raise ValueError("block_columns must be >= 1")
        self.topology = topology
        self.mode = mode
        self.dense_max_asns = int(dense_max_asns)
        self.block_columns = int(block_columns)
        self.budget_bytes = int(budget_bytes)
        self._generation = topology.version
        self._asns = np.asarray(topology.asns, dtype=np.int64)
        self._lut = self._build_lut(self._asns)
        self._ixp: tuple[np.ndarray, np.ndarray] | None = None
        self._isp: dict[tuple[int, bool], tuple[np.ndarray, np.ndarray]] = {}
        # Blocked store: (view key, block id) -> (visT (C, n), peerT (C, n)).
        self._blocks: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._resident_bytes = 0
        self.blocks_built = 0
        self.evictions = 0

    @staticmethod
    def _build_lut(asns: np.ndarray) -> np.ndarray | None:
        if asns.size == 0 or int(asns[-1]) > VisibilityMatrix._LUT_MAX_ASN:
            return None
        lut = np.full(int(asns[-1]) + 1, -1, dtype=np.int32)
        lut[asns] = np.arange(asns.size, dtype=np.int32)
        return lut

    # -- ASN index ----------------------------------------------------------

    @property
    def generation(self) -> int:
        """Topology edge-mutation counter the cached tables correspond to."""
        self._refresh()
        return self._generation

    def _refresh(self) -> None:
        if self.topology.version != self._generation:
            self._generation = self.topology.version
            self._asns = np.asarray(self.topology.asns, dtype=np.int64)
            self._lut = self._build_lut(self._asns)
            self._ixp = None
            self._isp.clear()
            self._blocks.clear()
            self._resident_bytes = 0

    @property
    def asns(self) -> np.ndarray:
        """Sorted registry ASNs; row/column ``i`` of every table is ``asns[i]``."""
        self._refresh()
        return self._asns

    @property
    def blocked(self) -> bool:
        """Whether lookups resolve through column blocks instead of dense tables."""
        self._refresh()
        if self.mode == "dense":
            return False
        if self.mode == "blocked":
            return True
        return self._asns.size > self.dense_max_asns

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held by the blocked-mode LRU."""
        return self._resident_bytes

    def index_of(self, asn_values: np.ndarray) -> np.ndarray:
        """Map ASN values to table indices (``-1`` for out-of-registry ASNs)."""
        asns = self.asns
        values = np.asarray(asn_values, dtype=np.int64)
        if self._lut is not None:
            # Direct gather: one clip + one take beats a binary search per
            # value on the multi-100k-row day tables.
            in_range = (values >= 0) & (values < self._lut.size)
            idx = self._lut[np.where(in_range, values, 0)].astype(np.int64)
            idx[~in_range] = -1
            return idx
        idx = np.searchsorted(asns, values)
        idx[idx == asns.size] = 0
        return np.where(asns[idx] == values, idx, -1)

    def pair_index(self, src_asns: np.ndarray, dst_asns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(src indices, dst indices) for aligned ASN arrays, ``-1`` = unknown."""
        src_asns = np.asarray(src_asns)
        dst_asns = np.asarray(dst_asns)
        if src_asns.shape != dst_asns.shape:
            raise ValueError("src and dst ASN arrays must align")
        return self.index_of(src_asns), self.index_of(dst_asns)

    def knows_observer(self, observer_asn: int) -> bool:
        """Whether ISP views for this observer can be resolved here."""
        asns = self.asns
        i = np.searchsorted(asns, int(observer_asn))
        return i < asns.size and int(asns[i]) == int(observer_asn)

    # -- column construction --------------------------------------------------

    def _build_columns(
        self, view: tuple, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Verdict columns ``cols`` of ``view``, transposed ``(C, n)``.

        The recurrence runs per column in ascending route-length levels:
        every source's verdict is either decided directly by its first hop
        or inherited from the hop's (already final) verdict — the same
        fixed point the per-pair oracle walks, now as ~path-diameter numpy
        ops per column.
        """
        topo = self.topology
        plane = topo.route_plane()
        n = plane.n
        asns32 = plane.asns.astype(np.int32)
        C = cols.size
        if view[0] == "ixp":
            obs_idx = -1
            ingress_only = False
        else:
            _, observer_asn, ingress_only = view
            obs_idx = int(np.searchsorted(plane.asns, int(observer_asn)))
            if obs_idx >= n or int(plane.asns[obs_idx]) != int(observer_asn):
                raise KeyError(f"observer ASN {observer_asn} not in registry")
        # Bound transient route arrays (9 bytes x C x n) when a dense build
        # asks for every column at once: recurse in column slices.
        max_cols = max(1, (1 << 22) // max(n, 1))
        if C > max_cols:
            visT = np.empty((C, n), dtype=bool)
            peerT = np.empty((C, n), dtype=np.int32)
            for i in range(0, C, max_cols):
                part = self._build_columns(view, cols[i : i + max_cols])
                visT[i : i + max_cols] = part[0]
                peerT[i : i + max_cols] = part[1]
            return visT, peerT
        kind, length, hop = topo.routes_to_many(plane.asns[cols])
        # Flat composite cells ``row * n + src`` so one pass of numpy ops
        # fills every column of the block at once. Levels group by route
        # length *globally*: inheritance only ever reads the hop's cell,
        # which sits one length lower in the same row, so ascending global
        # levels replay each column's own ascending-level recurrence.
        kindf, lengthf, hopf = kind.ravel(), length.ravel(), hop.ravel()
        visf = np.zeros(C * n, dtype=bool)
        peerf = np.full(C * n, -1, dtype=np.int32)
        if view[0] != "ixp":
            # Observer-sourced flows: the handover "peer" is the next AS
            # on the observer's own path (the oracle's egress rule).
            obs_cells = np.arange(C, dtype=np.int64) * n + obs_idx
            ok = (kind[:, obs_idx] >= 0) & (cols != obs_idx)
            visf[obs_cells[ok]] = True
            peerf[obs_cells[ok]] = asns32[hop[:, obs_idx][ok]]
        reach = np.flatnonzero(kindf >= 0)
        # Sort cells by route length with one fused value sort: pack
        # ``length << cell_bits | cell`` (both bounded) and unpack after.
        cell_bits = max(1, int(C * n - 1).bit_length())
        key = (lengthf[reach].astype(np.int64) << np.int64(cell_bits)) | reach
        key.sort()
        reach = key & np.int64((1 << cell_bits) - 1)
        lens = key >> np.int64(cell_bits)
        levels, starts = np.unique(lens, return_index=True)
        stops = np.append(starts[1:], lens.size)
        for lvl, a, b in zip(levels.tolist(), starts.tolist(), stops.tolist()):
            if lvl == 0:
                continue
            p = reach[a:b]
            src = p % n
            if view[0] != "ixp":
                keep = src != obs_idx
                p, src = p[keep], src[keep]
                if p.size == 0:
                    continue
            h = hopf[p].astype(np.int64)
            hcell = p - src + h
            if view[0] == "ixp":
                # Only peer routes can cross the fabric: a transit pair is
                # never also an IXP peering (add_peering rejects the
                # conflict), so the membership probe skips kind 0/2 cells.
                direct = np.zeros(p.size, dtype=bool)
                peer_cells = np.flatnonzero(kindf[p] == 1)
                if peer_cells.size:
                    direct[peer_cells] = plane.is_ixp_edge(
                        src[peer_cells], h[peer_cells]
                    )
            else:
                direct = h == obs_idx
            visf[p] = np.where(direct, True, visf[hcell])
            peerf[p] = np.where(direct, asns32[src], peerf[hcell])
        visT = visf.reshape(C, n)
        peerT = peerf.reshape(C, n)
        if ingress_only:
            # Tier-1 trace rule: flows sourced inside the observer's
            # customer cone (the observer included) are not exported.
            cone = topo.customer_cone_mask(int(view[1]))
            visT &= ~cone[None, :]
        np.copyto(peerT, -1, where=~visT)
        return visT, peerT

    # -- dense tables ---------------------------------------------------------

    def ixp_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense IXP verdicts: ``(visible[src, dst], peer_asn[src, dst])``."""
        self._refresh()
        if self._ixp is None:
            visT, peerT = self._build_columns(
                _IXP_VIEW, np.arange(self._asns.size, dtype=np.int64)
            )
            self._ixp = (
                np.ascontiguousarray(visT.T),
                np.ascontiguousarray(peerT.T),
            )
        return self._ixp

    def isp_tables(self, observer_asn: int, ingress_only: bool) -> tuple[np.ndarray, np.ndarray]:
        """Dense ISP verdicts for one ``(observer, ingress_only)`` view."""
        self._refresh()
        key = (int(observer_asn), bool(ingress_only))
        cached = self._isp.get(key)
        if cached is not None:
            return cached
        visT, peerT = self._build_columns(
            ("isp", *key), np.arange(self._asns.size, dtype=np.int64)
        )
        self._isp[key] = (np.ascontiguousarray(visT.T), np.ascontiguousarray(peerT.T))
        return self._isp[key]

    # -- blocked lookups ------------------------------------------------------

    def _block(self, view: tuple, block_id: int) -> tuple[np.ndarray, np.ndarray]:
        key = (view, block_id)
        cached = self._blocks.get(key)
        if cached is not None:
            self._blocks.move_to_end(key)
            return cached
        n = self._asns.size
        lo = block_id * self.block_columns
        cols = np.arange(lo, min(lo + self.block_columns, n), dtype=np.int64)
        block = self._build_columns(view, cols)
        self._blocks[key] = block
        self._resident_bytes += block[0].nbytes + block[1].nbytes
        self.blocks_built += 1
        evicted = 0
        while self._resident_bytes > self.budget_bytes and len(self._blocks) > 1:
            _, old = self._blocks.popitem(last=False)
            self._resident_bytes -= old[0].nbytes + old[1].nbytes
            evicted += 1
        self.evictions += evicted
        registry = metrics()
        if registry.enabled:
            registry.inc("matrix.blocks_built")
            if evicted:
                registry.inc("matrix.evictions", evicted)
            registry.gauge("matrix.resident_bytes", self._resident_bytes)
        return block

    def _lookup(
        self, view: tuple, src_idx: np.ndarray, dst_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Verdicts for pair index arrays (all indices must be >= 0)."""
        self._refresh()
        if not self.blocked:
            if view[0] == "ixp":
                visible, peer = self.ixp_tables()
            else:
                visible, peer = self.isp_tables(view[1], view[2])
            return visible[src_idx, dst_idx], peer[src_idx, dst_idx].astype(np.int64)
        if view[0] != "ixp" and not self.knows_observer(view[1]):
            raise KeyError(f"observer ASN {view[1]} not in registry")
        vis_out = np.zeros(src_idx.shape, dtype=bool)
        peer_out = np.full(src_idx.shape, -1, dtype=np.int64)
        block_ids = dst_idx // self.block_columns
        order = np.argsort(block_ids, kind="stable")
        sorted_ids = block_ids[order]
        uniq, starts = np.unique(sorted_ids, return_index=True)
        stops = np.append(starts[1:], sorted_ids.size)
        for bid, a, b in zip(uniq.tolist(), starts.tolist(), stops.tolist()):
            sel = order[a:b]
            visT, peerT = self._block(view, int(bid))
            local = dst_idx[sel] - int(bid) * self.block_columns
            vis_out[sel] = visT[local, src_idx[sel]]
            peer_out[sel] = peerT[local, src_idx[sel]]
        return vis_out, peer_out

    def lookup_ixp(
        self, src_idx: np.ndarray, dst_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """IXP verdicts for pair index arrays (``(visible, peer_asn)``)."""
        return self._lookup(_IXP_VIEW, src_idx, dst_idx)

    def lookup_isp(
        self,
        observer_asn: int,
        ingress_only: bool,
        src_idx: np.ndarray,
        dst_idx: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """ISP-view verdicts for pair index arrays (``(visible, peer_asn)``)."""
        return self._lookup(
            ("isp", int(observer_asn), bool(ingress_only)), src_idx, dst_idx
        )

    def warm(self, isp_views: tuple[tuple[int, bool], ...] = ()) -> None:
        """Pre-build what lookups will need (worker-pool initializer hook).

        Dense mode materializes the IXP table plus the given
        ``(observer_asn, ingress_only)`` ISP views; blocked mode only
        prepares the CSR route plane and ASN index — blocks stay
        demand-built so warming never blows the byte budget.
        """
        self._refresh()
        self.topology.route_plane()
        if self.blocked:
            return
        self.ixp_tables()
        for observer_asn, ingress_only in isp_views:
            self.isp_tables(observer_asn, ingress_only)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = ["ixp"] if self._ixp is not None else []
        built += [f"isp{k}" for k in self._isp]
        built += [f"{len(self._blocks)} blocks"] if self._blocks else []
        return f"VisibilityMatrix({self._asns.size} ASNs, built={built or 'none'})"
