"""repro — reproduction of "DDoS Hide & Seek" (IMC 2019).

A measurement-study-in-a-box: the paper's DDoS classification and
takedown-analysis pipeline plus every substrate it needs (Internet model,
flow records, amplification protocols, booter ecosystem, vantage points,
domain observatory), all deterministic from a single seed.

Most users start from :class:`repro.scenario.Scenario` (build a world,
generate traffic, observe it) and :mod:`repro.core` (classify and
analyze), or run ``repro-experiments <figure-id>`` to regenerate a paper
artifact. See README.md / DESIGN.md / EXPERIMENTS.md.
"""

from repro.core.classify import (
    ClassifierThresholds,
    ConservativeClassifier,
    OptimisticClassifier,
)
from repro.core.takedown_analysis import analyze_takedown
from repro.core.victims import attacks_per_hour, victim_report
from repro.flows.records import FlowRecord, FlowTable
from repro.scenario import Scenario, ScenarioConfig
from repro.stats.welch import welch_one_tailed

__version__ = "1.0.0"

__all__ = [
    "ClassifierThresholds",
    "ConservativeClassifier",
    "FlowRecord",
    "FlowTable",
    "OptimisticClassifier",
    "Scenario",
    "ScenarioConfig",
    "analyze_takedown",
    "attacks_per_hour",
    "victim_report",
    "welch_one_tailed",
    "__version__",
]
