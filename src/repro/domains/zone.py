"""The synthetic domain universe and its weekly zone snapshots.

Stands in for the paper's weekly crawls of ~140M .com/.net/.org domains.
Only two things about that corpus matter for the study: the booter
domains hiding in it and enough benign look-alikes to make keyword
matching noisy. Domain histories are event-based (registration, drop,
seizure, activation), so a snapshot at any day is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.domains.names import DomainNameGenerator
from repro.stats.rng import SeedSequenceTree
from repro.timeutil import DOMAIN_EPOCH, TAKEDOWN_DATE, day_index

__all__ = ["WebsiteSnapshot", "DomainRecord", "UniverseConfig", "DomainUniverse"]


@dataclass(frozen=True)
class WebsiteSnapshot:
    """What the HTTPS crawler sees on a domain's landing page."""

    title: str
    mentions_ddos_service: bool


@dataclass(frozen=True)
class DomainRecord:
    """One domain's lifecycle in the universe.

    Days are indices against :data:`repro.timeutil.DOMAIN_EPOCH`.

    Attributes:
        name: the domain name.
        is_booter: ground truth — does a booter operate this domain.
        booter: owning service name ("" for benign domains).
        registered_day: registration day.
        activated_day: day the website went live (booter A's spare domain
            was registered in June 2018 but stayed unused for months).
        dropped_day: day the domain left the zone (None = still there).
        seized_day: day law enforcement seized the domain (None = never).
        website: landing-page snapshot while active.
    """

    name: str
    is_booter: bool
    booter: str
    registered_day: int
    activated_day: int
    dropped_day: int | None = None
    seized_day: int | None = None
    website: WebsiteSnapshot | None = None

    def in_zone(self, day: int) -> bool:
        """Whether the domain exists in the zone file on ``day``."""
        if day < self.registered_day:
            return False
        if self.dropped_day is not None and day >= self.dropped_day:
            return False
        return True

    def active(self, day: int) -> bool:
        """Whether the original website is up (not seized, activated)."""
        if not self.in_zone(day) or day < self.activated_day:
            return False
        return self.seized_day is None or day < self.seized_day

    def seized_on(self, day: int) -> bool:
        return self.seized_day is not None and day >= self.seized_day


@dataclass(frozen=True)
class UniverseConfig:
    """Shape of the domain universe."""

    n_benign: int = 4000
    n_extra_booters: int = 40
    stealth_booter_fraction: float = 0.15
    booter_growth_span_days: int = 1000
    takedown_day: int = day_index(TAKEDOWN_DATE, DOMAIN_EPOCH)
    benign_drop_prob: float = 0.1

    def __post_init__(self) -> None:
        if self.n_benign < 0 or self.n_extra_booters < 0:
            raise ValueError("counts cannot be negative")
        if not 0.0 <= self.stealth_booter_fraction <= 1.0:
            raise ValueError("stealth fraction must be in [0, 1]")
        if self.booter_growth_span_days <= 0:
            raise ValueError("growth span must be positive")


class DomainUniverse:
    """All domains the observatory could ever see.

    Construction wires in the study's key domains:

    * one primary domain per market booter (seized ones get
      ``seized_day = takedown_day``);
    * booter A's spare domain — registered ~6 months before the takedown,
      activated 3 days after it, never seized;
    * ``n_extra_booters`` additional booter domains whose registrations
      spread over the growth span (the rising line of Figure 3);
    * benign bulk, some of which trips the keyword matcher.
    """

    def __init__(
        self,
        seized_booters: list[str],
        surviving_booters: list[str],
        config: UniverseConfig,
        seeds: SeedSequenceTree,
        revival_delays: dict[str, int] | None = None,
    ) -> None:
        if set(seized_booters) & set(surviving_booters):
            raise ValueError("a booter cannot be both seized and surviving")
        self.config = config
        rng = seeds.child("universe").rng()
        namegen = DomainNameGenerator(seeds.child("names").rng())
        revival_delays = revival_delays or {}
        records: list[DomainRecord] = []

        def booter_site(name: str) -> WebsiteSnapshot:
            return WebsiteSnapshot(
                title=f"{name} - best IP stresser / booter panel",
                mentions_ddos_service=True,
            )

        # Primary domains of the market booters.
        for booter in list(seized_booters) + list(surviving_booters):
            stealth = rng.random() < config.stealth_booter_fraction
            name = namegen.booter_domain(stealth=stealth)
            registered = int(rng.integers(0, max(1, config.takedown_day - 200)))
            records.append(
                DomainRecord(
                    name=name,
                    is_booter=True,
                    booter=booter,
                    registered_day=registered,
                    activated_day=registered + int(rng.integers(0, 30)),
                    seized_day=config.takedown_day if booter in seized_booters else None,
                    website=booter_site(name),
                )
            )

        # Spare/revival domains (booter A: registered June 2018, unused
        # until days after the seizure).
        for booter, delay in revival_delays.items():
            name = namegen.booter_domain(stealth=False)
            registered = config.takedown_day - 185  # ~June 2018
            records.append(
                DomainRecord(
                    name=name,
                    is_booter=True,
                    booter=booter,
                    registered_day=registered,
                    activated_day=config.takedown_day + delay,
                    website=booter_site(name),
                )
            )

        # The wider (growing) booter market beyond the studied services.
        for i in range(config.n_extra_booters):
            stealth = rng.random() < config.stealth_booter_fraction
            name = namegen.booter_domain(stealth=stealth)
            registered = int(
                rng.integers(0, config.booter_growth_span_days)
            )
            records.append(
                DomainRecord(
                    name=name,
                    is_booter=True,
                    booter=f"X{i:02d}",
                    registered_day=registered,
                    activated_day=registered + int(rng.integers(0, 60)),
                    website=booter_site(name),
                )
            )

        # Benign bulk.
        for _ in range(config.n_benign):
            name = namegen.benign_domain()
            registered = int(rng.integers(0, config.booter_growth_span_days))
            dropped = None
            if rng.random() < config.benign_drop_prob:
                dropped = registered + int(rng.integers(30, 700))
            records.append(
                DomainRecord(
                    name=name,
                    is_booter=False,
                    booter="",
                    registered_day=registered,
                    activated_day=registered,
                    dropped_day=dropped,
                    website=WebsiteSnapshot(title=f"welcome to {name}", mentions_ddos_service=False),
                )
            )

        names = [r.name for r in records]
        if len(set(names)) != len(names):
            raise RuntimeError("duplicate domain generated")  # pragma: no cover
        self.records: dict[str, DomainRecord] = {r.name: r for r in records}

    def __len__(self) -> int:
        return len(self.records)

    def get(self, name: str) -> DomainRecord:
        try:
            return self.records[name]
        except KeyError:
            raise KeyError(f"unknown domain {name!r}") from None

    def snapshot(self, day: int) -> list[DomainRecord]:
        """Zone-file snapshot: all domains present on ``day``."""
        if day < 0:
            raise ValueError("day must be non-negative")
        return [r for r in self.records.values() if r.in_zone(day)]

    def booter_records(self) -> list[DomainRecord]:
        return [r for r in self.records.values() if r.is_booter]

    def domains_of(self, booter: str) -> list[DomainRecord]:
        return [r for r in self.records.values() if r.booter == booter]
