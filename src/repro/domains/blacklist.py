"""Booter blacklist generation.

The paper selects its booters from the booter blacklist of Santanna et
al. (CNSM 2016), which is maintained by repeated crawling: keyword-match
zone snapshots, verify candidates, and track each confirmed booter domain
over time. :class:`BooterBlacklist` reproduces that maintenance loop over
the synthetic universe: accumulate weekly crawls, record first/last seen
days per domain, classify current status (active / seized / offline), and
export the list.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.domains.crawl import KeywordCrawler
from repro.domains.zone import DomainUniverse

__all__ = ["BlacklistEntry", "BooterBlacklist"]


@dataclass(frozen=True)
class BlacklistEntry:
    """One tracked booter domain."""

    domain: str
    first_seen_day: int
    last_seen_day: int
    status: str  # "active" | "seized" | "offline"

    def __post_init__(self) -> None:
        if self.last_seen_day < self.first_seen_day:
            raise ValueError("last_seen cannot precede first_seen")
        if self.status not in ("active", "seized", "offline"):
            raise ValueError(f"unknown status {self.status!r}")


class BooterBlacklist:
    """Crawl-maintained list of verified booter domains."""

    def __init__(self, universe: DomainUniverse, crawler: KeywordCrawler | None = None):
        self.universe = universe
        self.crawler = crawler or KeywordCrawler()
        self._entries: dict[str, BlacklistEntry] = {}
        self._crawl_days: list[int] = []

    def run_crawl(self, day: int) -> list[str]:
        """Run one crawl; returns domains newly added to the blacklist."""
        if self._crawl_days and day <= self._crawl_days[-1]:
            raise ValueError(
                f"crawls must advance in time (last was day {self._crawl_days[-1]})"
            )
        result = self.crawler.crawl(self.universe, day)
        added = []
        for domain in result.verified:
            record = self.universe.get(domain)
            if record.seized_on(day):
                status = "seized"
            elif record.active(day):
                status = "active"
            else:
                status = "offline"
            entry = self._entries.get(domain)
            if entry is None:
                self._entries[domain] = BlacklistEntry(domain, day, day, status)
                added.append(domain)
            else:
                self._entries[domain] = replace(entry, last_seen_day=day, status=status)
        # Domains that vanished from the zone go offline (keep history).
        seen_now = set(result.verified)
        for domain, entry in self._entries.items():
            if domain not in seen_now and entry.status == "active":
                record = self.universe.get(domain)
                if not record.in_zone(day):
                    self._entries[domain] = replace(entry, status="offline")
        self._crawl_days.append(day)
        return sorted(added)

    def run_weekly(self, start_day: int, end_day: int) -> None:
        """Run crawls every 7 days over ``[start_day, end_day)``."""
        if end_day <= start_day:
            raise ValueError("empty crawl range")
        for day in range(start_day, end_day, 7):
            self.run_crawl(day)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[BlacklistEntry]:
        return sorted(self._entries.values(), key=lambda e: e.domain)

    def get(self, domain: str) -> BlacklistEntry:
        try:
            return self._entries[domain]
        except KeyError:
            raise KeyError(f"{domain!r} not on the blacklist") from None

    def active_domains(self) -> list[str]:
        return sorted(d for d, e in self._entries.items() if e.status == "active")

    def seized_domains(self) -> list[str]:
        return sorted(d for d, e in self._entries.items() if e.status == "seized")

    def new_since(self, day: int) -> list[str]:
        """Domains first seen strictly after ``day`` (post-takedown finds)."""
        return sorted(d for d, e in self._entries.items() if e.first_seen_day > day)

    def export_rows(self) -> list[dict[str, str]]:
        """Render the blacklist the way the public one is distributed."""
        return [
            {
                "domain": e.domain,
                "first_seen_day": str(e.first_seen_day),
                "last_seen_day": str(e.last_seen_day),
                "status": e.status,
            }
            for e in self.entries()
        ]
