"""A daily Alexa-Top-1M rank process for the domain universe.

Only booter domains' trajectories matter for Figure 3; the model gives
each booter domain a rank path with the phases the paper observes:

* **ramp-in** — a new booter site starts obscure (far outside the Top 1M)
  and descends towards its base rank as it gains customers, so the number
  of booter domains inside the Top 1M grows over the measurement period;
* **seizure collapse** — after a seizure the rank decays geometrically
  (the site is a DoJ banner), with a short press bump right after the
  takedown (press reports linking to seized domains kept some of them in
  the Top 1M for a while);
* **revival** — a replacement domain ramps in *fast* once activated:
  booter A's new domain hit the Top 1M three days after the seizure
  because its customer base followed it.
"""

from __future__ import annotations

import calendar
import datetime as _dt
from dataclasses import dataclass

import numpy as np

from repro.domains.zone import DomainRecord, DomainUniverse
from repro.stats.rng import SeedSequenceTree
from repro.timeutil import DOMAIN_EPOCH, day_index

__all__ = ["AlexaModelConfig", "AlexaModel"]


@dataclass(frozen=True)
class AlexaModelConfig:
    """Parameters of the rank process."""

    top_list_size: int = 1_000_000
    base_rank_median: float = 350_000.0
    base_rank_sigma: float = 0.6
    ramp_tau_days: float = 150.0
    revival_ramp_tau_days: float = 1.0
    initial_rank_multiplier: float = 8.0
    noise_sigma: float = 0.12
    seizure_decay_per_day: float = 1.06
    press_bump_days: int = 5
    press_bump_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.top_list_size <= 0:
            raise ValueError("top list size must be positive")
        if self.seizure_decay_per_day <= 1.0:
            raise ValueError("seizure decay must exceed 1 (ranks worsen)")
        if not 0.0 < self.press_bump_factor <= 1.0:
            raise ValueError("press bump factor must be in (0, 1]")
        if self.ramp_tau_days <= 0 or self.revival_ramp_tau_days <= 0:
            raise ValueError("ramp taus must be positive")


class AlexaModel:
    """Deterministic daily ranks for every booter domain in a universe."""

    def __init__(
        self,
        universe: DomainUniverse,
        seeds: SeedSequenceTree,
        config: AlexaModelConfig = AlexaModelConfig(),
        horizon_days: int = 1100,
    ) -> None:
        if horizon_days <= 0:
            raise ValueError("horizon must be positive")
        self.universe = universe
        self.config = config
        self.horizon_days = horizon_days
        self._seeds = seeds
        self._series: dict[str, np.ndarray] = {}

    def _is_revival(self, record: DomainRecord) -> bool:
        """A spare domain activated long after registration ramps in fast."""
        return record.activated_day - record.registered_day > 90

    def _compute_series(self, record: DomainRecord) -> np.ndarray:
        cfg = self.config
        rng = self._seeds.child("alexa", record.name).rng()
        days = np.arange(self.horizon_days, dtype=float)
        base_rank = rng.lognormal(np.log(cfg.base_rank_median), cfg.base_rank_sigma)
        tau = cfg.revival_ramp_tau_days if self._is_revival(record) else cfg.ramp_tau_days
        since_active = days - record.activated_day
        ramp = 1.0 + (cfg.initial_rank_multiplier - 1.0) * np.exp(
            -np.maximum(since_active, 0.0) / tau
        )
        rank = base_rank * ramp
        # Before activation the site has no audience at all.
        rank = np.where(since_active < 0, np.inf, rank)

        if record.seized_day is not None:
            since_seizure = days - record.seized_day
            seized = since_seizure >= 0
            decay = cfg.seizure_decay_per_day ** np.maximum(since_seizure, 0.0)
            rank = np.where(seized, rank * decay, rank)
            # Press bump: reports about the takedown drive clicks to the
            # seized domain for a few days.
            bump = seized & (since_seizure < cfg.press_bump_days)
            rank = np.where(bump, rank * cfg.press_bump_factor, rank)

        noise = rng.lognormal(0.0, cfg.noise_sigma, size=days.size)
        finite = np.isfinite(rank)
        rank[finite] = np.maximum(rank[finite] * noise[finite], 1.0)
        return rank

    def daily_ranks(self, domain: str) -> np.ndarray:
        """Daily rank series over the horizon (``inf`` = unranked)."""
        if domain not in self._series:
            record = self.universe.get(domain)
            if not record.is_booter:
                raise ValueError(
                    f"{domain!r} is benign; the model only tracks booter domains"
                )
            self._series[domain] = self._compute_series(record)
        return self._series[domain]

    def rank(self, domain: str, day: int) -> float:
        if not 0 <= day < self.horizon_days:
            raise ValueError(f"day {day} outside horizon [0, {self.horizon_days})")
        return float(self.daily_ranks(domain)[day])

    def in_top_list(self, domain: str, day: int) -> bool:
        return self.rank(domain, day) <= self.config.top_list_size

    def monthly_median_rank(self, domain: str, month: str) -> float:
        """Median daily rank of ``domain`` over calendar month ``YYYY-MM``.

        Follows the paper: booter domains are ranked by their median Alexa
        rank over each month. Days outside the model horizon are ignored;
        returns ``inf`` if the domain never ranks within the month.
        """
        year, mon = (int(x) for x in month.split("-"))
        first = _dt.date(year, mon, 1)
        n_days = calendar.monthrange(year, mon)[1]
        start = day_index(first, DOMAIN_EPOCH)
        days = [d for d in range(start, start + n_days) if 0 <= d < self.horizon_days]
        if not days:
            return float("inf")
        series = self.daily_ranks(domain)[days]
        finite = series[np.isfinite(series)]
        if finite.size == 0:
            return float("inf")
        return float(np.median(finite))

    def top_list_booters(self, day: int) -> list[tuple[str, float]]:
        """Booter domains inside the Top 1M on ``day``, best rank first."""
        ranked = []
        for record in self.universe.booter_records():
            r = self.rank(record.name, day)
            if r <= self.config.top_list_size:
                ranked.append((record.name, r))
        ranked.sort(key=lambda item: item[1])
        return ranked
