"""Domain-name generation for the synthetic zone files.

Booter sites advertise what they sell: real seized domains included
critical-boot.com and quantumstress.net. The generator composes names the
same way (adjective + booter keyword), with a configurable share of
"stealth" booters whose names avoid keywords — those are the crawler's
false negatives. Benign names occasionally embed keyword substrings
("bootstrap", "distress"), producing the false positives that make the
verification step necessary.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BOOTER_KEYWORDS", "DomainNameGenerator"]

#: The keyword list of the paper's crawl (following Santanna et al.'s
#: booter blacklist methodology).
BOOTER_KEYWORDS: tuple[str, ...] = ("booter", "stresser", "stress", "boot", "ddos")

_ADJECTIVES = (
    "quantum", "critical", "titanium", "ultra", "mega", "dark", "rapid",
    "prime", "alpha", "omega", "shadow", "storm", "iron", "cyber", "nova",
    "vortex", "apex", "fury", "ghost", "neon",
)

_BOOTER_CORES = ("booter", "stresser", "stress", "boot", "ddos", "stressing")

_STEALTH_CORES = ("panel", "tools", "network", "host", "services", "labs")

_BENIGN_WORDS = (
    "garden", "kitchen", "travel", "music", "photo", "sport", "media",
    "cloud", "shop", "forum", "daily", "global", "tech", "green", "blue",
    "bootstrap", "distress", "restress", "bamboo", "robot", "rebooted",
    "football", "marketing", "design", "fitness", "crypto", "gaming",
)

_TLDS = (".com", ".net", ".org")


class DomainNameGenerator:
    """Deterministic generator of booter-looking and benign domain names."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._issued: set[str] = set()

    def _unique(self, candidate_fn) -> str:
        for _ in range(1000):
            name = candidate_fn()
            if name not in self._issued:
                self._issued.add(name)
                return name
        raise RuntimeError("domain namespace exhausted")

    def booter_domain(self, stealth: bool = False) -> str:
        """A booter domain; ``stealth`` names avoid the keyword list."""
        rng = self._rng

        def candidate() -> str:
            adjective = _ADJECTIVES[int(rng.integers(0, len(_ADJECTIVES)))]
            cores = _STEALTH_CORES if stealth else _BOOTER_CORES
            core = cores[int(rng.integers(0, len(cores)))]
            sep = "-" if rng.random() < 0.4 else ""
            suffix = str(int(rng.integers(2, 100))) if rng.random() < 0.25 else ""
            tld = _TLDS[int(rng.integers(0, len(_TLDS)))]
            return f"{adjective}{sep}{core}{suffix}{tld}"

        return self._unique(candidate)

    def benign_domain(self) -> str:
        """A benign domain (may coincidentally contain keyword substrings)."""
        rng = self._rng

        def candidate() -> str:
            a = _BENIGN_WORDS[int(rng.integers(0, len(_BENIGN_WORDS)))]
            b = _BENIGN_WORDS[int(rng.integers(0, len(_BENIGN_WORDS)))]
            suffix = str(int(rng.integers(2, 1000))) if rng.random() < 0.3 else ""
            tld = _TLDS[int(rng.integers(0, len(_TLDS)))]
            return f"{a}{b}{suffix}{tld}"

        return self._unique(candidate)

    @staticmethod
    def contains_keyword(domain: str) -> bool:
        """Whether the name matches the keyword list (substring match)."""
        label = domain.rsplit(".", 1)[0]
        return any(kw in label for kw in BOOTER_KEYWORDS)
