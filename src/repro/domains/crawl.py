"""Keyword crawling and verification of booter domains.

The paper's pipeline: keyword-match domain names from the weekly zone
snapshot, visit each match over HTTPS, and manually verify that the site
actually sells DDoS. Keyword matching alone is noisy in both directions —
benign names contain keyword substrings, and some booters brand
themselves without any keyword. The crawler reports all three sets so the
experiments can quantify the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.domains.names import BOOTER_KEYWORDS
from repro.domains.zone import DomainRecord, DomainUniverse

__all__ = ["CrawlResult", "KeywordCrawler"]


@dataclass(frozen=True)
class CrawlResult:
    """Outcome of one weekly crawl.

    Attributes:
        day: snapshot day.
        candidates: domains whose *name* matched the keyword list.
        verified: candidates confirmed as booters by visiting the site
            (ground truth via the landing page advertising DDoS service;
            seized domains show the seizure banner and still verify —
            the paper kept seized domains in its identified set).
        false_positives: candidates that turned out benign.
        missed_booters: booter domains in the zone the keywords missed.
    """

    day: int
    candidates: tuple[str, ...]
    verified: tuple[str, ...]
    false_positives: tuple[str, ...]
    missed_booters: tuple[str, ...]

    @property
    def precision(self) -> float:
        return len(self.verified) / len(self.candidates) if self.candidates else 1.0

    @property
    def recall(self) -> float:
        total = len(self.verified) + len(self.missed_booters)
        return len(self.verified) / total if total else 1.0


class KeywordCrawler:
    """Keyword matcher + HTTPS verification over a domain universe."""

    def __init__(self, keywords: tuple[str, ...] = BOOTER_KEYWORDS) -> None:
        if not keywords:
            raise ValueError("need at least one keyword")
        self.keywords = tuple(kw.lower() for kw in keywords)

    def name_matches(self, domain: str) -> bool:
        label = domain.lower().rsplit(".", 1)[0]
        return any(kw in label for kw in self.keywords)

    def _site_verifies(self, record: DomainRecord, day: int) -> bool:
        """Visiting the site: does it (or did it, if seized) sell DDoS?"""
        if not record.is_booter or record.website is None:
            return False
        if record.seized_on(day):
            # The seizure banner names the seized booter site: verifiable.
            return True
        return record.active(day) and record.website.mentions_ddos_service

    def crawl(self, universe: DomainUniverse, day: int) -> CrawlResult:
        """Run one crawl over the zone snapshot of ``day``."""
        snapshot = universe.snapshot(day)
        candidates: list[str] = []
        verified: list[str] = []
        false_positives: list[str] = []
        missed: list[str] = []
        for record in snapshot:
            if self.name_matches(record.name):
                candidates.append(record.name)
                if self._site_verifies(record, day):
                    verified.append(record.name)
                else:
                    false_positives.append(record.name)
            elif record.is_booter and (record.active(day) or record.seized_on(day)):
                missed.append(record.name)
        return CrawlResult(
            day=day,
            candidates=tuple(sorted(candidates)),
            verified=tuple(sorted(verified)),
            false_positives=tuple(sorted(false_positives)),
            missed_booters=tuple(sorted(missed)),
        )

    def newly_verified(
        self, universe: DomainUniverse, before_day: int, after_day: int
    ) -> tuple[str, ...]:
        """Booter domains verified on ``after_day`` but not on ``before_day``.

        This is how the paper found booter A's replacement domain after
        the takedown: re-run the keyword selection and diff.
        """
        if after_day <= before_day:
            raise ValueError("after_day must follow before_day")
        before = set(self.crawl(universe, before_day).verified)
        after = self.crawl(universe, after_day).verified
        return tuple(sorted(set(after) - before))
