"""The DNS and HTTPS observatory.

Section 5.1 of the paper tracks booter *websites*: weekly crawls of all
.com/.net/.org zones, keyword matching plus manual verification to find
booter domains, and daily Alexa Top-1M snapshots to rank them. This
package simulates that control-plane view: a synthetic domain universe
with booter and benign registrations, a keyword crawler with the same
false-positive problem real keyword matching has ("bootstrap.com"
contains "boot"), and an Alexa rank process that reproduces the growth of
booter domains, the seizure collapse, and booter A's new-domain re-entry
three days after the takedown.
"""

from repro.domains.alexa import AlexaModel, AlexaModelConfig
from repro.domains.crawl import CrawlResult, KeywordCrawler
from repro.domains.names import BOOTER_KEYWORDS, DomainNameGenerator
from repro.domains.zone import DomainRecord, DomainUniverse, UniverseConfig, WebsiteSnapshot

__all__ = [
    "AlexaModel",
    "AlexaModelConfig",
    "BOOTER_KEYWORDS",
    "CrawlResult",
    "DomainNameGenerator",
    "DomainRecord",
    "DomainUniverse",
    "KeywordCrawler",
    "UniverseConfig",
    "WebsiteSnapshot",
]
