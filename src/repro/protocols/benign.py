"""Benign traffic models for amplification-prone ports.

The classification problem of Section 4 exists because attack traffic
shares ports with legitimate traffic: regular NTP clients poll servers
with small mode-3/4 packets, DNS carries a huge volume of legitimate
queries and responses, and scanners/monitors probe reflector ports. Each
:class:`BenignPortTraffic` captures the size distribution and relative
intensity of that non-attack mix so vantage-point traffic is realistically
contaminated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.distributions import DiscreteDistribution, Mixture, Sampler, TruncatedNormal

__all__ = ["BenignPortTraffic", "benign_traffic_for_port", "BENIGN_MIXES"]


@dataclass(frozen=True)
class BenignPortTraffic:
    """Benign background on one UDP port.

    Attributes:
        port: destination port of the benign flows.
        packet_size: sampler of benign packet sizes in bytes.
        relative_intensity: benign daily packet budget of this port
            relative to NTP (= 1.0); the background synthesizer multiplies
            it by its absolute per-unit budget. DNS is busier than NTP;
            Memcached/CLDAP/Chargen are practically attack-only ports
            inter-domain.
    """

    port: int
    packet_size: Sampler
    relative_intensity: float

    def __post_init__(self) -> None:
        if not 0 < self.port < 65536:
            raise ValueError(f"port out of range: {self.port}")
        if self.relative_intensity < 0:
            raise ValueError("relative_intensity must be non-negative")

    def sample_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.packet_size.sample(rng, n)


# Regular NTP (modes 3/4) is 48 bytes of payload -> 76/90 byte packets
# (v4 vs v4+extensions); a small share of control traffic runs larger.
_NTP_BENIGN = BenignPortTraffic(
    port=123,
    packet_size=Mixture(
        components=(
            DiscreteDistribution.of([(76.0, 0.7), (90.0, 0.3)]),
            TruncatedNormal(mean=140.0, std=25.0, low=90.0, high=200.0),
        ),
        weights=(0.9, 0.1),
    ),
    relative_intensity=1.0,
)

# DNS: queries ~60-90 B, ordinary responses ~100-400 B. Very high volume.
_DNS_BENIGN = BenignPortTraffic(
    port=53,
    packet_size=Mixture(
        components=(
            TruncatedNormal(mean=75.0, std=12.0, low=50.0, high=120.0),
            TruncatedNormal(mean=220.0, std=90.0, low=80.0, high=512.0),
        ),
        weights=(0.55, 0.45),
    ),
    relative_intensity=2.1,
)

# Memcached is an intra-AS daemon; inter-domain port 11211 traffic is
# essentially scanners and misconfiguration. Tiny but nonzero.
_MEMCACHED_BENIGN = BenignPortTraffic(
    port=11211,
    packet_size=TruncatedNormal(mean=70.0, std=20.0, low=40.0, high=200.0),
    relative_intensity=0.0002,
)

_CLDAP_BENIGN = BenignPortTraffic(
    port=389,
    packet_size=TruncatedNormal(mean=110.0, std=40.0, low=50.0, high=400.0),
    relative_intensity=0.001,
)

_SSDP_BENIGN = BenignPortTraffic(
    port=1900,
    packet_size=TruncatedNormal(mean=160.0, std=40.0, low=90.0, high=400.0),
    relative_intensity=0.003,
)

_CHARGEN_BENIGN = BenignPortTraffic(
    port=19,
    packet_size=TruncatedNormal(mean=80.0, std=30.0, low=40.0, high=300.0),
    relative_intensity=0.0003,
)

_WSD_BENIGN = BenignPortTraffic(
    port=3702,
    packet_size=TruncatedNormal(mean=400.0, std=120.0, low=150.0, high=900.0),
    relative_intensity=0.0005,
)

_TFTP_BENIGN = BenignPortTraffic(
    port=69,
    packet_size=TruncatedNormal(mean=120.0, std=60.0, low=30.0, high=516.0),
    relative_intensity=0.0004,
)

_ARD_BENIGN = BenignPortTraffic(
    port=3283,
    packet_size=TruncatedNormal(mean=150.0, std=60.0, low=40.0, high=500.0),
    relative_intensity=0.0002,
)

BENIGN_MIXES: dict[int, BenignPortTraffic] = {
    mix.port: mix
    for mix in (
        _NTP_BENIGN,
        _DNS_BENIGN,
        _MEMCACHED_BENIGN,
        _CLDAP_BENIGN,
        _SSDP_BENIGN,
        _CHARGEN_BENIGN,
        _WSD_BENIGN,
        _TFTP_BENIGN,
        _ARD_BENIGN,
    )
}


def benign_traffic_for_port(port: int) -> BenignPortTraffic:
    """The benign mix on ``port``; raises ``KeyError`` for unmodeled ports."""
    try:
        return BENIGN_MIXES[port]
    except KeyError:
        raise KeyError(f"no benign traffic model for port {port}") from None
