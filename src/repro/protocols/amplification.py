"""The amplification vector abstraction.

An :class:`AmplificationVector` describes one reflection/amplification
protocol end to end: a spoofed *request* of ``request_size`` bytes sent to
a reflector's ``port`` elicits ``response_packets_per_request`` response
packets whose sizes follow ``response_size``. The *bandwidth amplification
factor* (BAF, Rossow NDSS'14 terminology) follows from those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.distributions import Sampler

__all__ = ["AmplificationVector", "ALL_VECTORS", "register_vector", "vector_by_name", "vector_by_port"]

UDP = 17


@dataclass(frozen=True)
class AmplificationVector:
    """One reflection/amplification protocol.

    Attributes:
        name: human-readable protocol name ("ntp", "memcached", ...).
        port: the reflector-side UDP port (e.g. 123 for NTP).
        request_size: size in bytes of one spoofed trigger request.
        response_size: sampler of response packet sizes in bytes.
        response_packets_per_request: mean number of response packets one
            request elicits (NTP monlist: up to 100 packets of ~482-490 B
            for a 234 B request).
        mean_response_size: analytic mean of ``response_size`` (used for
            rate math without sampling).
        protocol: IP protocol number (UDP for every vector here).
    """

    name: str
    port: int
    request_size: float
    response_size: Sampler
    response_packets_per_request: float
    mean_response_size: float
    protocol: int = UDP
    description: str = ""

    def __post_init__(self) -> None:
        if not 0 < self.port < 65536:
            raise ValueError(f"port out of range: {self.port}")
        if self.request_size <= 0:
            raise ValueError("request_size must be positive")
        if self.response_packets_per_request <= 0:
            raise ValueError("response_packets_per_request must be positive")
        if self.mean_response_size <= 0:
            raise ValueError("mean_response_size must be positive")

    @property
    def bandwidth_amplification_factor(self) -> float:
        """Mean response bytes per request byte (BAF)."""
        return self.response_packets_per_request * self.mean_response_size / self.request_size

    @property
    def packet_amplification_factor(self) -> float:
        """Response packets per request packet (PAF)."""
        return self.response_packets_per_request

    def sample_response_sizes(self, rng: np.random.Generator, n_packets: int) -> np.ndarray:
        """Draw ``n_packets`` response packet sizes in bytes."""
        if n_packets < 0:
            raise ValueError("n_packets must be non-negative")
        if n_packets == 0:
            return np.empty(0)
        return self.response_size.sample(rng, n_packets)

    def requests_for_rate(self, target_bps: float) -> float:
        """Requests/second a booter must trigger to hit ``target_bps`` at the victim."""
        if target_bps < 0:
            raise ValueError("target rate cannot be negative")
        bytes_per_request = self.response_packets_per_request * self.mean_response_size
        return target_bps / 8.0 / bytes_per_request


ALL_VECTORS: dict[str, AmplificationVector] = {}


def register_vector(vector: AmplificationVector) -> AmplificationVector:
    """Add ``vector`` to the global registry (keyed by name, unique port)."""
    if vector.name in ALL_VECTORS:
        raise ValueError(f"vector {vector.name!r} already registered")
    if any(v.port == vector.port for v in ALL_VECTORS.values()):
        raise ValueError(f"port {vector.port} already registered")
    ALL_VECTORS[vector.name] = vector
    return vector


def vector_by_name(name: str) -> AmplificationVector:
    """Look up a registered vector by name (KeyError lists known names)."""
    try:
        return ALL_VECTORS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_VECTORS))
        raise KeyError(f"unknown vector {name!r} (known: {known})") from None


def vector_by_port(port: int) -> AmplificationVector | None:
    """The vector listening on ``port``, or ``None``."""
    for vector in ALL_VECTORS.values():
        if vector.port == port:
            return vector
    return None
