"""Concrete amplification vectors.

Size and amplification parameters follow the paper's observations where it
reports them (NTP monlist responses of 486/490 bytes made up 98.62% of the
self-attack packets) and the standard literature values elsewhere (Rossow,
"Amplification Hell", NDSS 2014; US-CERT TA14-017A; Akamai memcached
spotlight 2018).
"""

from __future__ import annotations

from repro.protocols.amplification import AmplificationVector, register_vector
from repro.stats.distributions import DiscreteDistribution, TruncatedNormal

__all__ = ["NTP", "DNS", "CLDAP", "MEMCACHED", "SSDP", "CHARGEN"]

# NTP monlist: a 234-byte request returns up to 100 packets listing up to
# 600 recent clients. Our self-attacks saw 486/490-byte response packets
# almost exclusively (98.62%), with a small remainder of shorter packets.
_NTP_RESPONSE_SIZES = DiscreteDistribution.of(
    [(486.0, 0.55), (490.0, 0.4362), (468.0, 0.0138)]
)

NTP = register_vector(
    AmplificationVector(
        name="ntp",
        port=123,
        request_size=234.0,
        response_size=_NTP_RESPONSE_SIZES,
        response_packets_per_request=55.0,
        mean_response_size=_NTP_RESPONSE_SIZES.mean(),
        description="NTP mode-7 monlist reflection",
    )
)

# DNS ANY/TXT amplification: responses are large (EDNS0) and often
# fragmented into ~1400-byte packets plus a tail fragment.
DNS = register_vector(
    AmplificationVector(
        name="dns",
        port=53,
        request_size=64.0,
        response_size=TruncatedNormal(mean=1300.0, std=250.0, low=512.0, high=1500.0),
        response_packets_per_request=2.5,
        mean_response_size=1300.0,
        description="DNS ANY/TXT open-resolver reflection",
    )
)

# CLDAP: searchRequest against AD's connectionless LDAP; single large
# response, BAF ~56-70.
CLDAP = register_vector(
    AmplificationVector(
        name="cldap",
        port=389,
        request_size=52.0,
        response_size=TruncatedNormal(mean=1450.0, std=120.0, low=800.0, high=1500.0),
        response_packets_per_request=2.2,
        mean_response_size=1450.0,
        description="Connectionless LDAP searchRequest reflection",
    )
)

# Memcached: the record-holder (BAF up to ~51000). A small "get" against a
# planted large value streams MTU-sized packets.
MEMCACHED = register_vector(
    AmplificationVector(
        name="memcached",
        port=11211,
        request_size=15.0,
        response_size=TruncatedNormal(mean=1400.0, std=60.0, low=1000.0, high=1464.0),
        response_packets_per_request=110.0,
        mean_response_size=1400.0,
        description="Memcached UDP get reflection",
    )
)

# SSDP: M-SEARCH against UPnP devices; several ~300-400 byte responses.
SSDP = register_vector(
    AmplificationVector(
        name="ssdp",
        port=1900,
        request_size=90.0,
        response_size=TruncatedNormal(mean=350.0, std=60.0, low=200.0, high=600.0),
        response_packets_per_request=8.0,
        mean_response_size=350.0,
        description="SSDP M-SEARCH reflection",
    )
)

# Chargen: legacy character generator, ~1000-byte responses.
CHARGEN = register_vector(
    AmplificationVector(
        name="chargen",
        port=19,
        request_size=60.0,
        response_size=TruncatedNormal(mean=1020.0, std=100.0, low=512.0, high=1472.0),
        response_packets_per_request=10.0,
        mean_response_size=1020.0,
        description="Chargen reflection",
    )
)

# WS-Discovery: SOAP-over-UDP probe against IoT/printer endpoints;
# multi-kilobyte XML responses, BAF up to several hundred.
WSD = register_vector(
    AmplificationVector(
        name="wsd",
        port=3702,
        request_size=170.0,
        response_size=TruncatedNormal(mean=1250.0, std=200.0, low=600.0, high=1500.0),
        response_packets_per_request=4.0,
        mean_response_size=1250.0,
        description="WS-Discovery SOAP-over-UDP reflection",
    )
)

# TFTP: read-request for a known file; retransmissions raise the PAF.
TFTP = register_vector(
    AmplificationVector(
        name="tftp",
        port=69,
        request_size=50.0,
        response_size=TruncatedNormal(mean=516.0, std=30.0, low=100.0, high=600.0),
        response_packets_per_request=6.0,
        mean_response_size=516.0,
        description="TFTP read-request reflection",
    )
)

# ARD (Apple Remote Desktop / ARMS): getinfo against port 3283.
ARD = register_vector(
    AmplificationVector(
        name="ard",
        port=3283,
        request_size=32.0,
        response_size=TruncatedNormal(mean=1000.0, std=150.0, low=400.0, high=1464.0),
        response_packets_per_request=1.2,
        mean_response_size=1000.0,
        description="Apple Remote Desktop (ARMS) getinfo reflection",
    )
)
