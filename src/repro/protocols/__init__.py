"""Amplification protocol models.

Booter attacks abuse UDP protocols whose responses dwarf their requests.
This package models, per protocol: the well-known port, request packet
size, response packet-size distribution, response packets per request
(amplification), and the benign traffic mix on the same port — which is
what makes classification non-trivial (Figure 2a: 54% of NTP packets at
the IXP are small/benign).
"""

from repro.protocols.amplification import (
    ALL_VECTORS,
    AmplificationVector,
    vector_by_name,
    vector_by_port,
)
from repro.protocols.benign import BenignPortTraffic, benign_traffic_for_port
from repro.protocols.vectors import CHARGEN, CLDAP, DNS, MEMCACHED, NTP, SSDP

__all__ = [
    "ALL_VECTORS",
    "AmplificationVector",
    "BenignPortTraffic",
    "CHARGEN",
    "CLDAP",
    "DNS",
    "MEMCACHED",
    "NTP",
    "SSDP",
    "benign_traffic_for_port",
    "vector_by_name",
    "vector_by_port",
]
