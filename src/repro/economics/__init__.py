"""Booter-economy extension.

The paper closes by noting that its technical parameters cannot assess
"the health of the booter ecosystem" and motivates studying "the effects
of law enforcement on the booter economy, e.g., on infrastructures,
financing, or involved entities". This package takes that step: a
customer/subscription model per booter, revenue accounting, and a family
of interventions — the FBI-style domain seizure, a payment-channel
intervention (Brunt et al., WEIS 2017), and operator arrests (the
Titanium Stresser conviction) — so their economic footprints can be
compared under one simulation.

Two customer engines share the intervention interface: the aggregate
per-booter float step (:class:`CustomerPopulationModel`, the parity
authority) and the columnar per-customer :class:`CustomerLedger`
(:mod:`repro.economics.ledger`), which runs millions of simulated
customers as packed parallel arrays and produces tenure, migration, and
recidivism outputs. :func:`run_intervention_replicas` fans replicated
``strategy x seed`` studies over the warm worker pool.
"""

from repro.economics.customers import (
    CustomerDynamics,
    CustomerPopulationModel,
    normalize_popularity,
)
from repro.economics.interventions import (
    DomainSeizure,
    Intervention,
    NoIntervention,
    OperatorArrest,
    PaymentIntervention,
)
from repro.economics.ledger import CustomerLedger
from repro.economics.replicas import (
    ReplicaResult,
    ReplicaStudy,
    ReplicaTask,
    run_intervention_replicas,
)
from repro.economics.simulate import (
    ECONOMY_MODELS,
    EconomyReport,
    EconomySimulation,
    LedgerEconomyReport,
)

__all__ = [
    "CustomerDynamics",
    "CustomerLedger",
    "CustomerPopulationModel",
    "DomainSeizure",
    "ECONOMY_MODELS",
    "EconomyReport",
    "EconomySimulation",
    "Intervention",
    "LedgerEconomyReport",
    "NoIntervention",
    "OperatorArrest",
    "PaymentIntervention",
    "ReplicaResult",
    "ReplicaStudy",
    "ReplicaTask",
    "normalize_popularity",
    "run_intervention_replicas",
]
