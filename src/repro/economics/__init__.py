"""Booter-economy extension.

The paper closes by noting that its technical parameters cannot assess
"the health of the booter ecosystem" and motivates studying "the effects
of law enforcement on the booter economy, e.g., on infrastructures,
financing, or involved entities". This package takes that step: a
customer/subscription model per booter, revenue accounting, and a family
of interventions — the FBI-style domain seizure, a payment-channel
intervention (Brunt et al., WEIS 2017), and operator arrests (the
Titanium Stresser conviction) — so their economic footprints can be
compared under one simulation.
"""

from repro.economics.customers import CustomerDynamics, CustomerPopulationModel
from repro.economics.interventions import (
    DomainSeizure,
    Intervention,
    NoIntervention,
    OperatorArrest,
    PaymentIntervention,
)
from repro.economics.simulate import EconomyReport, EconomySimulation

__all__ = [
    "CustomerDynamics",
    "CustomerPopulationModel",
    "DomainSeizure",
    "EconomyReport",
    "EconomySimulation",
    "Intervention",
    "NoIntervention",
    "OperatorArrest",
    "PaymentIntervention",
]
