"""Law-enforcement interventions as economic operators.

Each intervention maps a day to (signup multipliers, extra churn) per
booter. Three archetypes from the literature:

* :class:`DomainSeizure` — the FBI's December 2018 action: seized
  front-ends sign up nobody and shed customers fast; revived domains
  (booter A) resume partially.
* :class:`PaymentIntervention` — the PayPal action studied by Brunt,
  Pandey & McCoy (WEIS 2017): for a window, *every* booter's signups and
  renewals suffer, then processors/booters adapt.
* :class:`OperatorArrest` — the Titanium Stresser conviction: one booter
  dies permanently and publicity deters a slice of market demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.booter.market import BooterMarket

__all__ = [
    "Intervention",
    "NoIntervention",
    "DomainSeizure",
    "PaymentIntervention",
    "OperatorArrest",
]


class Intervention(Protocol):
    """Maps (market, day) to per-booter economic effects."""

    name: str

    def signup_multipliers(self, market: BooterMarket, day: int) -> dict[str, float]: ...

    def extra_churn(self, market: BooterMarket, day: int) -> dict[str, float]: ...


@dataclass(frozen=True)
class NoIntervention:
    """Baseline: the market runs undisturbed."""

    name: str = "none"

    def signup_multipliers(self, market: BooterMarket, day: int) -> dict[str, float]:
        return {}

    def extra_churn(self, market: BooterMarket, day: int) -> dict[str, float]:
        return {}


@dataclass(frozen=True)
class DomainSeizure:
    """Seize the front-end domains of all catalogue-seized booters.

    Attributes:
        day: seizure day.
        revived: booter name -> days until a replacement domain is live.
        revival_signup_fraction: signup capacity of a revived booter.
        seized_daily_churn: extra daily churn while a booter has no
            working website (customers cannot log in to renew).
    """

    day: int
    revived: dict[str, int] = field(default_factory=lambda: {"A": 3})
    revival_signup_fraction: float = 0.6
    seized_daily_churn: float = 0.25
    name: str = "domain seizure"

    def __post_init__(self) -> None:
        if not 0.0 <= self.revival_signup_fraction <= 1.0:
            raise ValueError("revival_signup_fraction must be in [0, 1]")
        if not 0.0 <= self.seized_daily_churn <= 1.0:
            raise ValueError("seized_daily_churn must be in [0, 1]")

    def _state(self, booter: str, day: int) -> str:
        if day < self.day:
            return "up"
        delay = self.revived.get(booter)
        if delay is not None and day >= self.day + delay:
            return "revived"
        return "seized"

    def signup_multipliers(self, market: BooterMarket, day: int) -> dict[str, float]:
        out = {}
        for name, service in market.services.items():
            if not service.catalog.seized:
                continue
            state = self._state(name, day)
            if state == "seized":
                out[name] = 0.0
            elif state == "revived":
                out[name] = self.revival_signup_fraction
        return out

    def extra_churn(self, market: BooterMarket, day: int) -> dict[str, float]:
        out = {}
        for name, service in market.services.items():
            if service.catalog.seized and self._state(name, day) == "seized":
                out[name] = self.seized_daily_churn
        return out


@dataclass(frozen=True)
class PaymentIntervention:
    """A payment-processor crackdown hitting the whole market for a window.

    During ``[day, day + duration_days)`` every booter's signups drop to
    ``signup_fraction`` and renewals suffer ``extra_daily_churn``; after
    the window the market adapts (alternative processors, crypto).
    """

    day: int
    duration_days: int = 60
    signup_fraction: float = 0.35
    extra_daily_churn: float = 0.015
    name: str = "payment intervention"

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= self.signup_fraction <= 1.0:
            raise ValueError("signup_fraction must be in [0, 1]")
        if not 0.0 <= self.extra_daily_churn <= 1.0:
            raise ValueError("extra_daily_churn must be in [0, 1]")

    def _active(self, day: int) -> bool:
        return self.day <= day < self.day + self.duration_days

    def signup_multipliers(self, market: BooterMarket, day: int) -> dict[str, float]:
        if not self._active(day):
            return {}
        return {name: self.signup_fraction for name in market.services}

    def extra_churn(self, market: BooterMarket, day: int) -> dict[str, float]:
        if not self._active(day):
            return {}
        return {name: self.extra_daily_churn for name in market.services}


@dataclass(frozen=True)
class OperatorArrest:
    """Arrest one booter's operator: the service dies for good, and the
    publicity deters a share of market-wide signups for a while."""

    day: int
    booter: str
    deterrence_fraction: float = 0.15
    deterrence_days: int = 45
    name: str = "operator arrest"

    def __post_init__(self) -> None:
        if not 0.0 <= self.deterrence_fraction <= 1.0:
            raise ValueError("deterrence_fraction must be in [0, 1]")
        if self.deterrence_days < 0:
            raise ValueError("deterrence_days cannot be negative")

    def signup_multipliers(self, market: BooterMarket, day: int) -> dict[str, float]:
        if day < self.day:
            return {}
        out: dict[str, float] = {self.booter: 0.0}
        if day < self.day + self.deterrence_days:
            for name in market.services:
                if name != self.booter:
                    out[name] = 1.0 - self.deterrence_fraction
        return out

    def extra_churn(self, market: BooterMarket, day: int) -> dict[str, float]:
        if day < self.day:
            return {}
        # The dead service sheds its whole base quickly.
        return {self.booter: 0.5}
