"""Customer dynamics of booter services.

Each booter carries a customer base that evolves daily: new signups
arrive proportionally to the service's popularity and the overall market
growth, existing customers churn at a base rate, and interventions
modulate both (a seized front-end signs up nobody; a payment intervention
blocks a share of renewals market-wide).

Numbers are calibrated loosely against what the literature reports:
webstresser.org had ~138K registered users at seizure (Krebs 2018), and
leaked databases show thousands of *paying* customers for mid-sized
services (Santanna et al. 2015).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.booter.market import BooterMarket
from repro.stats.rng import SeedSequenceTree

__all__ = ["CustomerDynamics", "CustomerPopulationModel", "normalize_popularity"]


def normalize_popularity(
    popularity: np.ndarray, *, uniform_fallback: bool = False
) -> np.ndarray:
    """Normalize raw popularity weights into a probability vector.

    A market whose services all have zero popularity has no meaningful
    signup weighting: by default that raises a :class:`ValueError` (a
    silent ``0/0`` would propagate NaNs through every downstream count);
    with ``uniform_fallback`` it degrades to uniform weights instead,
    which is the right behavior for churner re-signup weighting where
    "nobody is more popular" should not mean "nobody re-signs".
    """
    weights = np.asarray(popularity, dtype=np.float64)
    if weights.size == 0:
        raise ValueError("popularity vector is empty — no services to weight")
    if (weights < 0).any():
        raise ValueError("popularity weights cannot be negative")
    total = weights.sum()
    if total <= 0:
        if uniform_fallback:
            return np.full(weights.size, 1.0 / weights.size)
        raise ValueError(
            "every service popularity is zero — cannot form signup weights "
            "(pass uniform_fallback=True to weight services uniformly)"
        )
    return weights / total


@dataclass(frozen=True)
class CustomerDynamics:
    """Market-wide customer flow parameters.

    Attributes:
        market_signups_per_day: new paying customers entering the market
            daily (spread over booters by popularity).
        churn_per_day: fraction of a booter's customers lost per day.
        initial_customers_per_popularity: initial base = popularity x this.
        signup_noise_sigma: day-to-day lognormal noise on signups.
    """

    market_signups_per_day: float = 400.0
    churn_per_day: float = 0.02
    # Default initial base = the flow equilibrium signups/churn, so the
    # baseline market is stationary.
    initial_customers_per_popularity: float = 20_000.0
    signup_noise_sigma: float = 0.2

    def __post_init__(self) -> None:
        if self.market_signups_per_day < 0:
            raise ValueError("signups cannot be negative")
        if not 0.0 <= self.churn_per_day <= 1.0:
            raise ValueError("churn must be in [0, 1]")
        if self.initial_customers_per_popularity < 0:
            raise ValueError("initial customers cannot be negative")


class CustomerPopulationModel:
    """Day-stepped per-booter customer counts.

    The step equation per booter ``b``::

        customers[b] += signups[b] * signup_mult[b]   (new business)
        customers[b] -= churn * customers[b]          (natural attrition)
        customers[b] -= extra_churn[b] * customers[b] (intervention)
        migrating churners re-sign at surviving booters per popularity

    ``signup_mult``/``extra_churn`` come from the active intervention.
    """

    def __init__(
        self,
        market: BooterMarket,
        dynamics: CustomerDynamics,
        seeds: SeedSequenceTree,
    ) -> None:
        self.market = market
        self.dynamics = dynamics
        self._seeds = seeds
        self.names = market.service_names()
        popularity = np.array([market.services[n].popularity for n in self.names])
        self.popularity = normalize_popularity(popularity)
        self.customers = self.popularity * dynamics.initial_customers_per_popularity

    def step(
        self,
        day: int,
        signup_mult: dict[str, float] | None = None,
        extra_churn: dict[str, float] | None = None,
        migration_fraction: float = 0.8,
    ) -> np.ndarray:
        """Advance one day; returns the new per-booter customer counts.

        ``migration_fraction`` of intervention-displaced customers re-sign
        at other booters (weighted by popularity x their signup
        multiplier); the rest leave the market.
        """
        if not 0.0 <= migration_fraction <= 1.0:
            raise ValueError("migration_fraction must be in [0, 1]")
        rng = self._seeds.child("step", day).rng()
        mult = np.array(
            [1.0 if signup_mult is None else signup_mult.get(n, 1.0) for n in self.names]
        )
        churn_extra = np.array(
            [0.0 if extra_churn is None else extra_churn.get(n, 0.0) for n in self.names]
        )
        if (mult < 0).any() or (churn_extra < 0).any() or (churn_extra > 1).any():
            raise ValueError("invalid intervention multipliers")

        # Organic signups, gated by each booter's signup multiplier.
        level = rng.lognormal(0.0, self.dynamics.signup_noise_sigma)
        signup_weights = self.popularity * mult
        total_weight = signup_weights.sum()
        signups = (
            self.dynamics.market_signups_per_day
            * level
            * (signup_weights / total_weight if total_weight > 0 else 0.0)
        )

        # Natural churn plus intervention-forced churn.
        natural = self.customers * self.dynamics.churn_per_day
        forced = self.customers * churn_extra
        displaced = forced.sum()

        self.customers = self.customers + signups - natural - forced
        # Displaced customers migrate to booters still signing people up.
        # When every signup weight is zero (all booters seized at once)
        # there is nowhere to re-sign: the displaced leave the market
        # entirely rather than dividing by a zero total weight.
        if displaced > 0 and total_weight > 0:
            self.customers = self.customers + (
                migration_fraction * displaced * signup_weights / total_weight
            )
        self.customers = np.maximum(self.customers, 0.0)
        return self.customers.copy()

    def by_name(self) -> dict[str, float]:
        return dict(zip(self.names, self.customers.tolist()))

    def total(self) -> float:
        return float(self.customers.sum())
