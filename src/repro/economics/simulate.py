"""Economy simulation: run interventions over the customer models.

Produces the quantities the paper's conclusion asks about: per-booter
customer/revenue trajectories, market totals, the dip caused by an
intervention, and how long the market takes to recover.

Two engines share the same intervention interface:

* ``model="aggregate"`` — the original per-booter float step
  (:class:`~repro.economics.customers.CustomerPopulationModel`), kept as
  the parity authority: fast, continuous, no per-customer state.
* ``model="ledger"`` — the columnar per-customer
  :class:`~repro.economics.ledger.CustomerLedger`: millions of simulated
  customers with tenure, migration, and recidivism outputs the aggregate
  step cannot represent. At matched parameters its per-booter daily
  counts match the aggregate step in expectation (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.booter.market import BooterMarket
from repro.economics.customers import CustomerDynamics, CustomerPopulationModel
from repro.economics.interventions import Intervention, NoIntervention
from repro.economics.ledger import DISPLACED, CustomerLedger
from repro.stats.rng import SeedSequenceTree

__all__ = ["ECONOMY_MODELS", "EconomyReport", "LedgerEconomyReport", "EconomySimulation"]

DAYS_PER_MONTH = 30.0

#: Valid values of the ``model`` parameter of :class:`EconomySimulation`.
ECONOMY_MODELS = ("aggregate", "ledger")


@dataclass
class EconomyReport:
    """Outcome of one economy run.

    Attributes:
        intervention_name: which intervention ran.
        days: day indices.
        customers: (n_days, n_booters) matrix of customer counts.
        revenue_per_day: per-day market revenue in USD.
        names: booter names aligned with the customer columns.
        intervention_day: when the intervention hit (None for baseline).
    """

    intervention_name: str
    days: np.ndarray
    customers: np.ndarray
    revenue_per_day: np.ndarray
    names: list[str]
    intervention_day: int | None

    def total_customers(self) -> np.ndarray:
        return self.customers.sum(axis=1)

    def dip_fraction(self) -> float:
        """Deepest market contraction relative to the pre-intervention level."""
        if self.intervention_day is None:
            return 0.0
        totals = self.total_customers()
        idx = int(np.searchsorted(self.days, self.intervention_day))
        if idx == 0 or idx >= totals.size:
            return 0.0
        before = totals[:idx].mean()
        trough = totals[idx:].min()
        return float(1.0 - trough / before) if before > 0 else 0.0

    def recovery_day(self, threshold: float = 0.95) -> int | None:
        """First day *after the trough* at which the market regains
        ``threshold`` of its pre-intervention customer level (None if
        never)."""
        if self.intervention_day is None:
            return None
        totals = self.total_customers()
        idx = int(np.searchsorted(self.days, self.intervention_day))
        if idx == 0 or idx >= totals.size:
            return None
        before = totals[:idx].mean()
        trough_idx = idx + int(np.argmin(totals[idx:]))
        for i in range(trough_idx, totals.size):
            if totals[i] >= threshold * before:
                return int(self.days[i])
        return None

    def revenue_loss(self) -> float:
        """Cumulative revenue shortfall vs the pre-intervention run rate."""
        if self.intervention_day is None:
            return 0.0
        idx = int(np.searchsorted(self.days, self.intervention_day))
        if idx == 0:
            return 0.0
        baseline = self.revenue_per_day[:idx].mean()
        shortfall = baseline - self.revenue_per_day[idx:]
        return float(np.maximum(shortfall, 0.0).sum())


@dataclass
class LedgerEconomyReport(EconomyReport):
    """An :class:`EconomyReport` plus the per-customer outputs.

    Attributes:
        migration_matrix: cumulative (from, to) re-sign counts between
            booters over the whole run.
        tenure_at_churn: histogram of subscription lengths at churn
            (index = tenure in days).
        repeat_fraction: share of intervention-displaced customers who
            re-signed somewhere (the Vu et al. recidivism measure).
        displaced: total intervention-displacement events.
        n_customer_rows: customer rows materialized (active + churned).
        ledger_digest: SHA-256 of the final ledger state — the
            determinism pin for chunk-size / executor parity.
    """

    migration_matrix: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    tenure_at_churn: np.ndarray = field(default_factory=lambda: np.zeros(0))
    repeat_fraction: float = 0.0
    displaced: int = 0
    n_customer_rows: int = 0
    ledger_digest: str = ""


class EconomySimulation:
    """Runs a customer/revenue simulation for one market.

    ``model`` selects the default engine (any :meth:`run` call can
    override it): ``"aggregate"`` for the per-booter float step,
    ``"ledger"`` for the columnar per-customer plane with
    ``n_customers`` simulated customers chunked to ``chunk_bytes``.
    """

    def __init__(
        self,
        market: BooterMarket,
        seeds: SeedSequenceTree,
        dynamics: CustomerDynamics = CustomerDynamics(),
        paying_fraction: float = 0.12,
        *,
        model: str = "aggregate",
        n_customers: int = 100_000,
        chunk_bytes: int = 32 << 20,
    ) -> None:
        """``paying_fraction``: registered customers actively paying in a
        month (leaked databases show most registered users never buy)."""
        if not 0.0 < paying_fraction <= 1.0:
            raise ValueError("paying_fraction must be in (0, 1]")
        if model not in ECONOMY_MODELS:
            raise ValueError(f"model must be one of {ECONOMY_MODELS}, got {model!r}")
        if n_customers < 0:
            raise ValueError("n_customers cannot be negative")
        self.market = market
        self.seeds = seeds
        self.dynamics = dynamics
        self.paying_fraction = paying_fraction
        self.model = model
        self.n_customers = n_customers
        self.chunk_bytes = chunk_bytes
        # Revenue per paying customer per month: the non-VIP price of the
        # service, plus the VIP premium for the VIP share of buyers.
        self._monthly_price = {}
        for name, service in market.services.items():
            non_vip = service.plans["non-vip"].price_usd
            vip = service.plans["vip"].price_usd
            self._monthly_price[name] = 0.92 * non_vip + 0.08 * vip

    def _prices(self, names: list[str]) -> np.ndarray:
        return np.array([self._monthly_price[n] for n in names])

    def run(
        self,
        n_days: int,
        intervention: Intervention | None = None,
        intervention_day: int | None = None,
        *,
        model: str | None = None,
    ) -> EconomyReport:
        """Simulate ``n_days``; ``intervention_day`` is inferred from the
        intervention's ``day`` attribute when present. ``model``
        overrides the engine chosen at construction for this run."""
        if n_days <= 0:
            raise ValueError("n_days must be positive")
        model = self.model if model is None else model
        if model not in ECONOMY_MODELS:
            raise ValueError(f"model must be one of {ECONOMY_MODELS}, got {model!r}")
        intervention = intervention or NoIntervention()
        if intervention_day is None:
            intervention_day = getattr(intervention, "day", None)
        if model == "ledger":
            return self._run_ledger(n_days, intervention, intervention_day)
        return self._run_aggregate(n_days, intervention, intervention_day)

    def _run_aggregate(
        self, n_days: int, intervention: Intervention, intervention_day: int | None
    ) -> EconomyReport:
        model = CustomerPopulationModel(
            self.market, self.dynamics, self.seeds.child("customers", intervention.name)
        )
        names = model.names
        prices = self._prices(names)
        customers = np.empty((n_days, len(names)))
        revenue = np.empty(n_days)
        for day in range(n_days):
            counts = model.step(
                day,
                signup_mult=intervention.signup_multipliers(self.market, day),
                extra_churn=intervention.extra_churn(self.market, day),
            )
            customers[day] = counts
            revenue[day] = float(
                (counts * self.paying_fraction * prices).sum() / DAYS_PER_MONTH
            )
        return EconomyReport(
            intervention_name=intervention.name,
            days=np.arange(n_days),
            customers=customers,
            revenue_per_day=revenue,
            names=names,
            intervention_day=intervention_day,
        )

    def _run_ledger(
        self, n_days: int, intervention: Intervention, intervention_day: int | None
    ) -> LedgerEconomyReport:
        names = self.market.service_names()
        prices = self._prices(names)
        # Per-customer expected daily revenue; accrued as lifetime spend
        # and used for the market revenue series, so ledger and
        # aggregate revenue follow the same price formula.
        daily_price = prices * self.paying_fraction / DAYS_PER_MONTH
        ledger = CustomerLedger.from_market(
            self.market,
            self.dynamics,
            self.seeds.child("ledger", intervention.name),
            self.n_customers,
            daily_price=daily_price,
            chunk_bytes=self.chunk_bytes,
            # One appended row per signup: reserving the expected
            # horizon up front skips the column regrowth copies.
            reserve_rows=self.n_customers
            + int(n_days * self.dynamics.market_signups_per_day * 1.3),
        )
        customers = np.empty((n_days, len(names)))
        revenue = np.empty(n_days)
        for day in range(n_days):
            counts = ledger.step(
                day,
                signup_mult=intervention.signup_multipliers(self.market, day),
                extra_churn=intervention.extra_churn(self.market, day),
            )
            customers[day] = counts
            revenue[day] = float(counts @ daily_price)
        state = ledger._state[: ledger.n_customers]
        return LedgerEconomyReport(
            intervention_name=intervention.name,
            days=np.arange(n_days),
            customers=customers,
            revenue_per_day=revenue,
            names=names,
            intervention_day=intervention_day,
            migration_matrix=ledger.migration_matrix.copy(),
            tenure_at_churn=ledger.tenure_at_churn(),
            repeat_fraction=ledger.repeat_customer_fraction(),
            displaced=int((state & DISPLACED != 0).sum()),
            n_customer_rows=ledger.n_customers,
            ledger_digest=ledger.digest(),
        )
