"""Economy simulation: run interventions over the customer model.

Produces the quantities the paper's conclusion asks about: per-booter
customer/revenue trajectories, market totals, the dip caused by an
intervention, and how long the market takes to recover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.booter.market import BooterMarket
from repro.economics.customers import CustomerDynamics, CustomerPopulationModel
from repro.economics.interventions import Intervention, NoIntervention
from repro.stats.rng import SeedSequenceTree

__all__ = ["EconomyReport", "EconomySimulation"]

DAYS_PER_MONTH = 30.0


@dataclass
class EconomyReport:
    """Outcome of one economy run.

    Attributes:
        intervention_name: which intervention ran.
        days: day indices.
        customers: (n_days, n_booters) matrix of customer counts.
        revenue_per_day: per-day market revenue in USD.
        names: booter names aligned with the customer columns.
        intervention_day: when the intervention hit (None for baseline).
    """

    intervention_name: str
    days: np.ndarray
    customers: np.ndarray
    revenue_per_day: np.ndarray
    names: list[str]
    intervention_day: int | None

    def total_customers(self) -> np.ndarray:
        return self.customers.sum(axis=1)

    def dip_fraction(self) -> float:
        """Deepest market contraction relative to the pre-intervention level."""
        if self.intervention_day is None:
            return 0.0
        totals = self.total_customers()
        idx = int(np.searchsorted(self.days, self.intervention_day))
        if idx == 0 or idx >= totals.size:
            return 0.0
        before = totals[:idx].mean()
        trough = totals[idx:].min()
        return float(1.0 - trough / before) if before > 0 else 0.0

    def recovery_day(self, threshold: float = 0.95) -> int | None:
        """First day *after the trough* at which the market regains
        ``threshold`` of its pre-intervention customer level (None if
        never)."""
        if self.intervention_day is None:
            return None
        totals = self.total_customers()
        idx = int(np.searchsorted(self.days, self.intervention_day))
        if idx == 0 or idx >= totals.size:
            return None
        before = totals[:idx].mean()
        trough_idx = idx + int(np.argmin(totals[idx:]))
        for i in range(trough_idx, totals.size):
            if totals[i] >= threshold * before:
                return int(self.days[i])
        return None

    def revenue_loss(self) -> float:
        """Cumulative revenue shortfall vs the pre-intervention run rate."""
        if self.intervention_day is None:
            return 0.0
        idx = int(np.searchsorted(self.days, self.intervention_day))
        if idx == 0:
            return 0.0
        baseline = self.revenue_per_day[:idx].mean()
        shortfall = baseline - self.revenue_per_day[idx:]
        return float(np.maximum(shortfall, 0.0).sum())


class EconomySimulation:
    """Runs a customer/revenue simulation for one market."""

    def __init__(
        self,
        market: BooterMarket,
        seeds: SeedSequenceTree,
        dynamics: CustomerDynamics = CustomerDynamics(),
        paying_fraction: float = 0.12,
    ) -> None:
        """``paying_fraction``: registered customers actively paying in a
        month (leaked databases show most registered users never buy)."""
        if not 0.0 < paying_fraction <= 1.0:
            raise ValueError("paying_fraction must be in (0, 1]")
        self.market = market
        self.seeds = seeds
        self.dynamics = dynamics
        self.paying_fraction = paying_fraction
        # Revenue per paying customer per month: the non-VIP price of the
        # service, plus the VIP premium for the VIP share of buyers.
        self._monthly_price = {}
        for name, service in market.services.items():
            non_vip = service.plans["non-vip"].price_usd
            vip = service.plans["vip"].price_usd
            self._monthly_price[name] = 0.92 * non_vip + 0.08 * vip

    def run(
        self,
        n_days: int,
        intervention: Intervention | None = None,
        intervention_day: int | None = None,
    ) -> EconomyReport:
        """Simulate ``n_days``; ``intervention_day`` is inferred from the
        intervention's ``day`` attribute when present."""
        if n_days <= 0:
            raise ValueError("n_days must be positive")
        intervention = intervention or NoIntervention()
        if intervention_day is None:
            intervention_day = getattr(intervention, "day", None)

        model = CustomerPopulationModel(
            self.market, self.dynamics, self.seeds.child("customers", intervention.name)
        )
        names = model.names
        prices = np.array([self._monthly_price[n] for n in names])
        customers = np.empty((n_days, len(names)))
        revenue = np.empty(n_days)
        for day in range(n_days):
            counts = model.step(
                day,
                signup_mult=intervention.signup_multipliers(self.market, day),
                extra_churn=intervention.extra_churn(self.market, day),
            )
            customers[day] = counts
            revenue[day] = float(
                (counts * self.paying_fraction * prices).sum() / DAYS_PER_MONTH
            )
        return EconomyReport(
            intervention_name=intervention.name,
            days=np.arange(n_days),
            customers=customers,
            revenue_per_day=revenue,
            names=names,
            intervention_day=intervention_day,
        )
