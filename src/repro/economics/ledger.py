"""Columnar per-customer market ledger: millions of customers at array speed.

The aggregate :class:`~repro.economics.customers.CustomerPopulationModel`
steps one float per booter per day — it cannot say anything about
*customers*: how long they stayed before churning, where the displaced
re-signed after a seizure, or what fraction of a seized booter's base
came back to the market (the recidivism measure of "Assessing the
Aftermath", Vu et al.). This module keeps every simulated customer as a
row across packed parallel arrays (struct-of-arrays, the same columnar
playbook as the flow and topology planes):

* ``booter`` — int16 index of the customer's current (or last) booter;
* ``signup_day`` — int16 day the customer's latest stint started;
* ``spend`` — float32 lifetime spend in USD (closed stints; open stints
  are materialized on demand);
* ``state`` — uint8 flag byte (:data:`ACTIVE` / :data:`CHURNED` /
  :data:`DISPLACED` / :data:`MIGRANT`).

That is 9 bytes per customer, so 10^7 customers hold ~90 MB of ledger
plus the active-row index and bounded per-day transients.

The daily step is event-driven rather than per-row: the active rows
are kept as one index array *per booter*, so each booter's churn
probability is a scalar along its own sequence and the step
skip-samples churn *events* with geometric gaps (one draw per event,
no thinning envelope). On a typical day only ~2% of customers churn,
and an intervention day only pays event costs on the seized booter's
rows. A booter whose churn probability crosses
:data:`_DENSE_CHURN_THRESHOLD` falls back to the dense per-row path,
chunked to the ``chunk_bytes`` transient budget. Both paths consume
dedicated :class:`~repro.stats.rng.SeedSequenceTree` child streams in
booter-then-sequence order, and the path choice depends only on the
day's parameters — never on chunking — so the same seed yields
bit-identical ledgers (same :meth:`CustomerLedger.digest`) for every
chunk size and executor.

Displaced churners re-sign at surviving booters through a single
inverse-CDF draw (``v < migration_fraction`` gates the re-sign and ``v /
migration_fraction`` picks the destination, so one uniform per displaced
customer does both). Spend never costs a per-row pass: a stint's spend
is ``daily_price[booter] x stint days``, added to the row when the stint
closes (churn) and materialized for open stints only at observation
points (:meth:`CustomerLedger.digest` / :meth:`CustomerLedger.spend_total`).

At matched parameters the ledger's per-booter daily counts equal the
aggregate model's step in expectation (property-tested in
``tests/test_economics_ledger.py``); what the aggregate model can never
produce are the per-customer outputs: tenure-at-churn distributions,
the booter-to-booter migration matrix, and the repeat-customer fraction
after an intervention.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Sequence

import numpy as np

from repro.economics.customers import CustomerDynamics, normalize_popularity
from repro.obs import metrics
from repro.stats.rng import SeedSequenceTree

__all__ = [
    "ACTIVE",
    "CHURNED",
    "DISPLACED",
    "MIGRANT",
    "BYTES_PER_CUSTOMER",
    "CustomerLedger",
]

#: State flags (one uint8 per customer, OR-combined).
ACTIVE = np.uint8(1)  #: currently subscribed to some booter
CHURNED = np.uint8(2)  #: ended at least one subscription stint
DISPLACED = np.uint8(4)  #: forcibly churned by an intervention at least once
MIGRANT = np.uint8(8)  #: re-signed somewhere after being displaced (recidivist)

#: Packed bytes per ledger row (int16 + int16 + float32 + uint8).
BYTES_PER_CUSTOMER = 9

#: Transient working bytes per active row in one dense-path chunk
#: (uniform draw + gathered booter ids + masks + collected events);
#: sizes the chunk rows from the ``chunk_bytes`` budget.
_TRANSIENT_BYTES_PER_ROW = 48

#: Highest per-booter churn probability the sparse event path handles.
#: Above this, geometric gaps are mostly 1 and one uniform per row is
#: cheaper (and memory-bounded via chunking) than one geometric draw
#: per event. The cutoff is a *parameter* of the booter's day, never of
#: the chunking, so it cannot break chunk-size determinism.
_DENSE_CHURN_THRESHOLD = 0.30

#: int16 day ceiling: the ledger addresses days and signup days as
#: int16, which bounds a simulation horizon far beyond any study here.
_MAX_DAY = np.iinfo(np.int16).max


def _apportion(weights: np.ndarray, total: int) -> np.ndarray:
    """Split ``total`` integer customers over ``weights`` (largest remainder).

    Deterministic, exact (sums to ``total``), and order-stable — the
    integer analogue of ``weights * total`` for seeding the initial
    cohort without a random draw.
    """
    raw = weights * float(total)
    base = np.floor(raw).astype(np.int64)
    missing = int(total - base.sum())
    if missing > 0:
        order = np.argsort(-(raw - base), kind="stable")
        base[order[:missing]] += 1
    return base


def _skip_sample(rng, m: int, p: float) -> np.ndarray:
    """Positions in ``[0, m)`` of iid Bernoulli(``p``) events.

    Draws one geometric gap per event (batched, refilling until the
    running position passes ``m``), so a 2%-churn day over 10^7 rows
    consumes ~2 x 10^5 draws instead of 10^7. The number of generator
    draws depends only on the realized gaps — never on chunking — so the
    consumption pattern is deterministic per seed.
    """
    if p >= 1.0:
        return np.arange(m, dtype=np.int64)
    # Geometric gaps by exact inversion in float64: unlike
    # ``rng.geometric`` this cannot overflow int64 when ``p`` is
    # vanishingly small (gaps become +inf and simply overshoot ``m``).
    log_q = np.log1p(-p)
    parts = []
    pos = -1.0
    while True:
        expect = (m - pos - 1) * p
        k = int(expect + 6.0 * np.sqrt(expect + 1.0) + 16.0)
        # gap = ceil(log(1-u)/log(1-p)) is the inversion; the ratio is
        # almost surely non-integral, so ceil == floor + 1. For
        # vanishingly small p the ratio overflows to +inf, which is the
        # correct "no event before m" outcome — not an error.
        with np.errstate(over="ignore"):
            gaps = np.ceil(np.log1p(-rng.random(k)) / log_q)
        np.maximum(gaps, 1.0, out=gaps)
        points = pos + np.cumsum(gaps)
        cut = int(np.searchsorted(points, float(m), side="left"))
        parts.append(points[:cut].astype(np.int64))
        if cut < k:  # this batch overshot m: every event is collected
            break
        pos = float(points[-1])
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


class CustomerLedger:
    """All customers of a booter market as packed parallel arrays.

    Construct via :meth:`from_market` (weights from live services) or
    directly from names + popularity weights. ``n_customers`` seeds the
    initial cohort, apportioned over booters by popularity;
    ``daily_price`` (optional, per booter, USD/day) accrues lifetime
    spend for active customers; ``chunk_bytes`` bounds per-step
    transient memory — it is a pure execution knob and never changes
    results (property-tested: digests are identical across chunk sizes).

    Days advance consecutively: the ``day`` passed to :meth:`step` must
    equal :attr:`days_stepped` (0, 1, 2, ...), which lets open-stint
    spend be priced as ``daily_price x stint days`` without a per-row
    pass per day.
    """

    def __init__(
        self,
        names: Sequence[str],
        popularity: np.ndarray,
        dynamics: CustomerDynamics,
        seeds: SeedSequenceTree,
        n_customers: int,
        *,
        daily_price: np.ndarray | None = None,
        chunk_bytes: int = 32 << 20,
        reserve_rows: int | None = None,
    ) -> None:
        if n_customers < 0:
            raise ValueError("n_customers cannot be negative")
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if reserve_rows is not None and reserve_rows < 0:
            raise ValueError("reserve_rows cannot be negative")
        self.names = list(names)
        if len(self.names) > np.iinfo(np.int16).max:
            raise ValueError("too many booters for int16 ids")
        self.popularity = normalize_popularity(popularity)
        if self.popularity.size != len(self.names):
            raise ValueError("popularity length must match names")
        self.dynamics = dynamics
        self._seeds = seeds
        self.daily_price = (
            None if daily_price is None else np.asarray(daily_price, dtype=np.float64)
        )
        if self.daily_price is not None and self.daily_price.size != len(self.names):
            raise ValueError("daily_price length must match names")
        self._price_f32 = (
            None if self.daily_price is None else self.daily_price.astype(np.float32)
        )
        self.chunk_rows = max(16_384, int(chunk_bytes) // _TRANSIENT_BYTES_PER_ROW)

        n_booters = len(self.names)
        initial = _apportion(self.popularity, n_customers)
        capacity = max(n_customers, reserve_rows or 0, 1024)
        self._booter = np.empty(capacity, dtype=np.int16)
        self._signup_day = np.empty(capacity, dtype=np.int16)
        self._spend = np.empty(capacity, dtype=np.float32)
        self._state = np.empty(capacity, dtype=np.uint8)
        self._n = n_customers
        self._booter[:n_customers] = np.repeat(
            np.arange(n_booters, dtype=np.int16), initial
        )
        self._signup_day[:n_customers] = 0
        self._spend[:n_customers] = 0.0
        self._state[:n_customers] = ACTIVE
        # Active row indices, one append-buffer per booter — each
        # booter's churn probability is a scalar along its own sequence,
        # so churn events skip-sample with no thinning and no step
        # rescans the state column. Churned rows become -1 tombstones in
        # place (an O(events) scatter, not an O(active) rebuild) and a
        # buffer compacts only once tombstones pass a quarter of its
        # slots, so active-set upkeep is amortized O(1) per event.
        # Sequence order is insertion order (deterministic).
        offsets = np.concatenate([[0], np.cumsum(initial)])
        self._arows = [
            np.arange(offsets[b], offsets[b + 1], dtype=np.int32)
            for b in range(n_booters)
        ]
        self._aused = initial.astype(np.int64)
        self._adead = np.zeros(n_booters, dtype=np.int64)
        #: Live subscriber count per booter (maintained incrementally).
        self.counts = initial.copy()
        #: Cumulative booter-to-booter re-sign counts (from-row, to-column).
        self.migration_matrix = np.zeros((n_booters, n_booters), dtype=np.int64)
        self._tenure = np.zeros(128, dtype=np.int64)
        self.days_stepped = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_market(
        cls,
        market,
        dynamics: CustomerDynamics,
        seeds: SeedSequenceTree,
        n_customers: int,
        *,
        daily_price: np.ndarray | None = None,
        chunk_bytes: int = 32 << 20,
        reserve_rows: int | None = None,
    ) -> "CustomerLedger":
        """Build a ledger over a :class:`~repro.booter.market.BooterMarket`."""
        names = market.service_names()
        popularity = market.popularity_vector(names)
        return cls(
            names,
            popularity,
            dynamics,
            seeds,
            n_customers,
            daily_price=daily_price,
            chunk_bytes=chunk_bytes,
            reserve_rows=reserve_rows,
        )

    # -- capacity management --------------------------------------------------

    def _ensure_capacity(self, needed: int) -> None:
        capacity = self._booter.size
        if needed <= capacity:
            return
        # 1.5x geometric growth: amortized O(1) per appended row without
        # the ~2x capacity a doubling schedule can strand on a 10^7-row
        # ledger. Callers that know their horizon can pre-reserve via
        # ``reserve_rows`` and never pay a regrowth copy at all.
        new_cap = max(needed, capacity + (capacity >> 1), 1024)
        for attr in ("_booter", "_signup_day", "_spend", "_state"):
            old = getattr(self, attr)
            grown = np.empty(new_cap, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, attr, grown)

    def _append_active(self, b: int, rows: np.ndarray) -> None:
        """Append row ids to booter ``b``'s active sequence (amortized O(1))."""
        used = int(self._aused[b])
        need = used + rows.size
        arr = self._arows[b]
        if need > arr.size:
            cap = max(need, arr.size + (arr.size >> 1), 64)
            grown = np.empty(cap, dtype=np.int32)
            grown[:used] = arr[:used]
            self._arows[b] = arr = grown
        arr[used:need] = rows
        self._aused[b] = need

    def _compact_active(self, b: int) -> None:
        """Drop booter ``b``'s tombstones (keeps growth slack for appends)."""
        arr = self._arows[b][: self._aused[b]]
        live = arr[arr >= 0]
        buf = np.empty(max(live.size + (live.size >> 1), 64), dtype=np.int32)
        buf[: live.size] = live
        self._arows[b] = buf
        self._aused[b] = live.size
        self._adead[b] = 0

    def _active_rows(self, b: int) -> np.ndarray:
        """Booter ``b``'s live row ids in sequence order (observation path)."""
        arr = self._arows[b][: self._aused[b]]
        return arr[arr >= 0]

    def _bump_tenure(self, tenures: np.ndarray) -> None:
        if tenures.size == 0:
            return
        top = int(tenures.max())
        if top >= self._tenure.size:
            grown = np.zeros(max(top + 1, self._tenure.size * 2), dtype=np.int64)
            grown[: self._tenure.size] = self._tenure
            self._tenure = grown
        self._tenure += np.bincount(tenures, minlength=self._tenure.size)

    # -- the daily step -------------------------------------------------------

    def _per_booter(
        self, mapping: Mapping[str, float] | np.ndarray | None, default: float
    ) -> np.ndarray:
        if mapping is None:
            return np.full(len(self.names), default)
        if isinstance(mapping, Mapping):
            return np.array([mapping.get(n, default) for n in self.names], dtype=np.float64)
        arr = np.asarray(mapping, dtype=np.float64)
        if arr.shape != (len(self.names),):
            raise ValueError("per-booter array must have one entry per booter")
        return arr

    def _churn_events(self, rng, p_total: np.ndarray, p_forced: np.ndarray):
        """Select this day's churners along each booter's active sequence.

        Returns ``(pos_parts, row_parts, forced_parts, events,
        n_chunks)``: per booter, the ascending event slot positions into
        that booter's active buffer, the live row ids at those slots,
        and a boolean per churner marking intervention-forced churn
        (the deciding uniform conditioned on the event is U(0,
        ``p_total[b]``); forced means it landed below ``p_forced[b]``),
        plus the per-booter event counts. Within a booter the churn
        probability is a single scalar, so a sparse day skip-samples the
        events directly — every candidate *is* a churner, no thinning —
        and skips the classifying uniforms entirely for booters with no
        intervention (``p_forced == 0``); a booter pushed past
        :data:`_DENSE_CHURN_THRESHOLD` draws one uniform per slot,
        chunked to the transient budget. Events landing on tombstone
        slots are discarded after the draw, which leaves every live row
        an independent Bernoulli(``p``) and keeps draw consumption a
        function of day parameters and the (deterministic) buffer
        length only. Draws are consumed booter by booter in index order.
        """
        n_booters = len(self.names)
        empty_pos = np.empty(0, dtype=np.int64)
        pos_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        forced_parts: list[np.ndarray] = []
        events = np.zeros(n_booters, dtype=np.int64)
        n_chunks = 0
        for b in range(n_booters):
            m_b = int(self._aused[b])
            p = float(p_total[b])
            pf = float(p_forced[b])
            if m_b == 0 or p <= 0.0:
                pos_parts.append(empty_pos)
                row_parts.append(empty_pos)
                forced_parts.append(np.empty(0, dtype=bool))
                continue
            if p < _DENSE_CHURN_THRESHOLD:
                n_chunks += 1
                pos = _skip_sample(rng, m_b, p)
                # The conditional law of the deciding uniform given a
                # churn event is U(0, p) — regenerated here so the skip
                # path and the dense path classify forced churn alike.
                # With no intervention on this booter the classification
                # is vacuous and the draw is skipped (a day-parameter
                # decision, so determinism is unaffected).
                if pf > 0.0:
                    forced = rng.random(pos.size) * p < pf
                else:
                    forced = np.zeros(pos.size, dtype=bool)
            else:
                chunks_pos = []
                chunks_f = []
                for c0 in range(0, m_b, self.chunk_rows):
                    c1 = min(m_b, c0 + self.chunk_rows)
                    n_chunks += 1
                    uu = rng.random(c1 - c0)
                    hits = np.flatnonzero(uu < p)
                    if hits.size:
                        chunks_pos.append(c0 + hits.astype(np.int64))
                        chunks_f.append(uu[hits] < pf)
                pos = np.concatenate(chunks_pos) if chunks_pos else empty_pos
                forced = (
                    np.concatenate(chunks_f)
                    if chunks_f
                    else np.empty(0, dtype=bool)
                )
            rows = self._arows[b][pos]
            if self._adead[b]:
                live = rows >= 0
                pos, rows, forced = pos[live], rows[live], forced[live]
            pos_parts.append(pos)
            row_parts.append(rows)
            forced_parts.append(forced)
            events[b] = pos.size
        return pos_parts, row_parts, forced_parts, events, n_chunks

    def step(
        self,
        day: int,
        signup_mult: Mapping[str, float] | np.ndarray | None = None,
        extra_churn: Mapping[str, float] | np.ndarray | None = None,
        migration_fraction: float = 0.8,
    ) -> np.ndarray:
        """Advance one day; returns the per-booter live subscriber counts.

        Semantics match the aggregate model in expectation: organic
        signups are Poisson with the day's popularity-x-multiplier
        weights, every customer churns with probability ``churn +
        extra_churn[booter]`` (the ``extra_churn`` share counts as
        intervention-displaced), and a ``migration_fraction`` slice of
        the displaced re-signs immediately at a booter drawn from the
        surviving signup weights (recorded in the migration matrix, the
        tenure histogram, and the customer's flag byte). When every
        signup weight is zero there is nowhere to re-sign and the
        displaced leave the market — the same fallback as the aggregate
        model rather than a division by zero.
        """
        if not 0.0 <= migration_fraction <= 1.0:
            raise ValueError("migration_fraction must be in [0, 1]")
        if not 0 <= day <= _MAX_DAY:
            raise ValueError(f"day must be in [0, {_MAX_DAY}] for int16 signup days")
        if day != self.days_stepped:
            raise ValueError(
                f"ledger days advance consecutively: expected day {self.days_stepped}"
            )
        n_booters = len(self.names)
        mult = self._per_booter(signup_mult, 1.0)
        extra = self._per_booter(extra_churn, 0.0)
        if (mult < 0).any() or (extra < 0).any() or (extra > 1).any():
            raise ValueError("invalid intervention multipliers")

        registry = metrics()
        weights = self.popularity * mult
        total_weight = weights.sum()
        dest_cdf = np.cumsum(weights / total_weight) if total_weight > 0 else None
        p_forced = np.clip(extra, 0.0, 1.0)
        p_total = np.clip(self.dynamics.churn_per_day + extra, 0.0, 1.0)

        # Day-level draws (booter granularity, one stream per day).
        rng_day = self._seeds.child("day", day).rng()
        level = rng_day.lognormal(0.0, self.dynamics.signup_noise_sigma)
        if total_weight > 0:
            lam = self.dynamics.market_signups_per_day * level * (weights / total_weight)
            births = rng_day.poisson(lam).astype(np.int64)
        else:
            births = np.zeros(n_booters, dtype=np.int64)

        # Per-customer draws: one dedicated stream per operation, each
        # consumed booter by booter along that booter's active sequence
        # — neither chunk boundaries nor the sparse/dense path split (a
        # day-level parameter) changes which draw a given customer sees.
        rng_churn = self._seeds.child("day", day, "churn").rng()
        rng_migrate = self._seeds.child("day", day, "migrate").rng()

        active_before = int(self.counts.sum())
        pos_parts, row_parts, forced_parts, events, n_chunks = self._churn_events(
            rng_churn, p_total, p_forced
        )

        # Close the churned stints: tenure, counts, flags, stint spend.
        n_churned = int(events.sum())
        n_displaced = n_migrated = 0
        if n_churned:
            # Tombstone the churned slots in place; compaction (below)
            # reclaims them only when a buffer turns half dead.
            for b in range(n_booters):
                if pos_parts[b].size:
                    self._arows[b][pos_parts[b]] = -1
            self._adead += events
            churn_rows = np.concatenate(row_parts)
            b_churn = np.repeat(np.arange(n_booters, dtype=np.intp), events)
            stint_days = (day - self._signup_day[churn_rows]).astype(np.int64)
            self._bump_tenure(stint_days)
            self.counts -= events
            # Flag updates happen on a compact gather of the event rows
            # and scatter back in a single pass at the end — churn,
            # displacement, and migrant re-activation together — instead
            # of one read-modify-write sweep over the column per flag.
            st = self._state[churn_rows]
            st &= np.uint8(~ACTIVE & 0xFF)
            st |= CHURNED
            if self._price_f32 is not None:
                # Churners do not pay on the churn day itself, so the
                # closed stint is worth price x (day - signup_day).
                self._spend[churn_rows] += np.repeat(self._price_f32, events) * stint_days

            forced_mask = np.concatenate(forced_parts)
            forced_rows = churn_rows[forced_mask]
            if forced_rows.size:
                st[forced_mask] |= DISPLACED
                n_displaced = forced_rows.size
                # One uniform decides re-sign *and* destination: v <
                # migration_fraction gates the re-sign, and within that
                # event v / migration_fraction is again uniform, so the
                # inverse-CDF lookup reuses it for the destination.
                v = rng_migrate.random(forced_rows.size)
                if dest_cdf is not None and migration_fraction > 0:
                    migrate_mask = v < migration_fraction
                    if migrate_mask.any():
                        dest = np.searchsorted(
                            dest_cdf, v[migrate_mask] / migration_fraction, side="right"
                        ).astype(np.intp)
                        np.clip(dest, 0, n_booters - 1, out=dest)
                        migrant_rows = forced_rows[migrate_mask]
                        origin = b_churn[forced_mask][migrate_mask]
                        forced_pos = np.flatnonzero(forced_mask)
                        st[forced_pos[migrate_mask]] |= ACTIVE | MIGRANT
                        self._booter[migrant_rows] = dest.astype(np.int16)
                        self._signup_day[migrant_rows] = day
                        self.counts += np.bincount(dest, minlength=n_booters)
                        self.migration_matrix.ravel()[:] += np.bincount(
                            origin * n_booters + dest, minlength=n_booters * n_booters
                        )
                        n_migrated = migrant_rows.size
                        # Append the migrants to their destination
                        # sequences, grouped by one mask pass per booter
                        # (order within a destination stays the stable
                        # arrival order, so it is deterministic).
                        dest_counts = np.bincount(dest, minlength=n_booters)
                        for b in range(n_booters):
                            if dest_counts[b]:
                                self._append_active(b, migrant_rows[dest == b])
            self._state[churn_rows] = st

        # Organic signups: fresh rows appended booter-major (no draw
        # needed beyond the per-booter Poisson counts above).
        total_births = int(births.sum())
        if total_births:
            self._ensure_capacity(self._n + total_births)
            grow = slice(self._n, self._n + total_births)
            self._booter[grow] = np.repeat(np.arange(n_booters, dtype=np.int16), births)
            self._signup_day[grow] = day
            self._spend[grow] = 0.0
            self._state[grow] = ACTIVE
            birth_offsets = self._n + np.concatenate([[0], np.cumsum(births)])
            self._n += total_births
            self.counts += births
            for b in range(n_booters):
                if births[b]:
                    self._append_active(
                        b,
                        np.arange(
                            birth_offsets[b], birth_offsets[b + 1], dtype=np.int32
                        ),
                    )

        # Amortized upkeep: compact any buffer whose tombstones passed
        # half of its slots (a deterministic trigger — it depends only
        # on the event history, never on chunking or timing). The lazy
        # threshold trades some tombstone-slot oversampling in the
        # churn draw for half as many O(live) compaction copies.
        for b in range(n_booters):
            if self._adead[b] * 2 > self._aused[b]:
                self._compact_active(b)

        self.days_stepped += 1
        if registry.enabled:
            registry.inc("econ.customer_days", active_before)
            registry.inc("econ.signups", total_births)
            registry.inc("econ.churned", n_churned)
            registry.inc("econ.displaced", n_displaced)
            registry.inc("econ.migrated", n_migrated)
            registry.inc("market.step_chunks", n_chunks)
            registry.gauge("market.ledger_resident_bytes", self.nbytes())
        return self.counts.copy()

    # -- outputs the aggregate model cannot produce ---------------------------

    def tenure_at_churn(self) -> np.ndarray:
        """Histogram of subscription lengths (days) at churn, index = tenure."""
        top = int(np.flatnonzero(self._tenure).max()) + 1 if self._tenure.any() else 0
        return self._tenure[:top].copy()

    def repeat_customer_fraction(self) -> float:
        """Of all intervention-displaced customers, the share that re-signed.

        This is the ledger's analogue of the recidivism measure in
        "Assessing the Aftermath" (Vu et al.): a seizure whose displaced
        customers mostly come back moved demand around without shrinking
        it. ``0.0`` when no customer was ever displaced.
        """
        state = self._state[: self._n]
        displaced = state & DISPLACED != 0
        total = int(displaced.sum())
        if total == 0:
            return 0.0
        came_back = int((state[displaced] & MIGRANT != 0).sum())
        return came_back / total

    # -- accounting -----------------------------------------------------------

    @property
    def n_customers(self) -> int:
        """Total rows ever materialized (active + churned)."""
        return self._n

    def active_customers(self) -> int:
        """Current market-wide live subscriber count."""
        return int(self.counts.sum())

    def by_name(self) -> dict[str, float]:
        """Live subscriber counts keyed by booter name."""
        return dict(zip(self.names, self.counts.astype(np.float64).tolist()))

    def total(self) -> float:
        """Live subscriber total as a float (aggregate-model API shape)."""
        return float(self.counts.sum())

    def _materialized_spend(self) -> np.ndarray:
        """Lifetime spend per row with the open stints priced in.

        Closed stints were added to the column when they churned; active
        customers have paid every day from their stint's signup day
        through the last stepped day inclusive.
        """
        spend = self._spend[: self._n].copy()
        if self._price_f32 is not None:
            for b in range(len(self.names)):
                rows = self._active_rows(b)
                if rows.size:
                    open_days = (self.days_stepped - self._signup_day[rows]).astype(
                        np.int64
                    )
                    spend[rows] += self._price_f32[b] * open_days
        return spend

    def spend_total(self) -> float:
        """Lifetime spend accrued across every customer row (USD)."""
        return float(self._materialized_spend().sum(dtype=np.float64))

    def nbytes(self) -> int:
        """Resident bytes of the packed customer arrays (capacity, not rows)."""
        return (
            self._booter.nbytes
            + self._signup_day.nbytes
            + self._spend.nbytes
            + self._state.nbytes
            + sum(arr.nbytes for arr in self._arows)
            + self.counts.nbytes
            + self.migration_matrix.nbytes
            + self._tenure.nbytes
        )

    def digest(self) -> str:
        """SHA-256 over the live ledger state (hex).

        Covers every per-customer column (spend with open stints
        materialized) plus the derived accumulators, so two ledgers
        agree on the digest iff they agree on every customer — the
        determinism pin for chunk-size and executor parity tests.
        """
        h = hashlib.sha256()
        h.update(int(self._n).to_bytes(8, "little"))
        h.update(self._booter[: self._n].tobytes())
        h.update(self._signup_day[: self._n].tobytes())
        h.update(self._materialized_spend().tobytes())
        h.update(self._state[: self._n].tobytes())
        h.update(self.counts.tobytes())
        h.update(self.migration_matrix.tobytes())
        h.update(self.tenure_at_churn().tobytes())
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CustomerLedger(n={self._n}, active={self.active_customers()}, "
            f"booters={len(self.names)}, days={self.days_stepped})"
        )
