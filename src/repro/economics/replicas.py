"""Replicated intervention studies fanned over the warm worker pool.

One economy run answers "what did this seizure do to *this* market
draw"; ranking intervention strategies needs distributions — N seeds per
strategy, compared on dip, recovery, revenue shortfall, and recidivism.
This module fans those ``strategy x replica`` runs across the persistent
:mod:`repro.core.workerpool` exactly like the day pipeline fans days:

* every replica is an independent :class:`ReplicaTask` carrying the
  scenario config and a frozen intervention — workers rebuild (or, under
  fork, inherit) the market via :func:`repro.core.workerpool.scenario_for`
  and seed the run from the scenario seed tree, so results are
  bit-identical across the ``inline`` / ``thread`` / ``process``
  executors (pinned by the ledger digests in each result);
* worker-side ``econ.*`` counters merge back into the parent registry
  through the pool's standard metering path, so a replica study shows up
  in ``--profile`` / ``--metrics-out`` like any other fan-out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.parallel import resolve_jobs
from repro.core.workerpool import (
    execution_policy,
    get_pool,
    record_inline_pool,
    register_scenario,
    scenario_for,
)
from repro.economics.customers import CustomerDynamics
from repro.economics.interventions import Intervention
from repro.economics.simulate import EconomySimulation, LedgerEconomyReport
from repro.obs import metrics
from repro.scenario.config import ScenarioConfig
from repro.scenario.scenario import Scenario

__all__ = ["ReplicaTask", "ReplicaResult", "ReplicaStudy", "run_intervention_replicas"]


@dataclass(frozen=True)
class ReplicaTask:
    """One picklable ``strategy x replica`` work item for the pool."""

    config: ScenarioConfig
    intervention: Intervention
    replica: int
    n_days: int
    n_customers: int
    chunk_bytes: int
    paying_fraction: float
    dynamics: CustomerDynamics


@dataclass(frozen=True)
class ReplicaResult:
    """Compact summary of one ledger replica run (picklable)."""

    strategy: str
    replica: int
    dip_fraction: float
    recovery_day: int | None
    revenue_loss: float
    final_customers: float
    repeat_fraction: float
    displaced: int
    ledger_digest: str
    total_customers: np.ndarray


def _replica_seeds(scenario: Scenario, task: ReplicaTask):
    # Child path includes strategy name and replica index, so every
    # (strategy, replica) pair owns an independent stream derived only
    # from the scenario seed — identical in any executor or order.
    return scenario.seeds.child("econ-replica", task.intervention.name, task.replica)


def _run_replica_task(task: ReplicaTask) -> ReplicaResult:
    """Pool worker: run one ledger replica and summarize it (module-level
    so process executors can pickle the callable)."""
    scenario = scenario_for(task.config)
    sim = EconomySimulation(
        scenario.market,
        _replica_seeds(scenario, task),
        task.dynamics,
        task.paying_fraction,
        model="ledger",
        n_customers=task.n_customers,
        chunk_bytes=task.chunk_bytes,
    )
    report = sim.run(task.n_days, task.intervention)
    assert isinstance(report, LedgerEconomyReport)
    metrics().inc("econ.replicas")
    return ReplicaResult(
        strategy=task.intervention.name,
        replica=task.replica,
        dip_fraction=report.dip_fraction(),
        recovery_day=report.recovery_day(threshold=0.9),
        revenue_loss=report.revenue_loss(),
        final_customers=float(report.total_customers()[-1]),
        repeat_fraction=report.repeat_fraction,
        displaced=report.displaced,
        ledger_digest=report.ledger_digest,
        total_customers=report.total_customers().astype(np.float64),
    )


@dataclass
class ReplicaStudy:
    """All replica results of one study, grouped per strategy."""

    n_replicas: int
    n_days: int
    n_customers: int
    results: list[ReplicaResult] = field(default_factory=list)

    def strategies(self) -> list[str]:
        """Strategy names in first-appearance order."""
        seen: dict[str, None] = {}
        for result in self.results:
            seen.setdefault(result.strategy, None)
        return list(seen)

    def by_strategy(self, strategy: str) -> list[ReplicaResult]:
        """All replicas of one strategy, ordered by replica index."""
        picked = [r for r in self.results if r.strategy == strategy]
        return sorted(picked, key=lambda r: r.replica)

    def digests(self, strategy: str) -> list[str]:
        """The per-replica ledger digests of a strategy (parity pinning)."""
        return [r.ledger_digest for r in self.by_strategy(strategy)]

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-strategy means: dip, revenue loss, recidivism, final size."""
        out: dict[str, dict[str, float]] = {}
        for strategy in self.strategies():
            rows = self.by_strategy(strategy)
            recoveries = [r.recovery_day for r in rows if r.recovery_day is not None]
            out[strategy] = {
                "dip_fraction": float(np.mean([r.dip_fraction for r in rows])),
                "revenue_loss": float(np.mean([r.revenue_loss for r in rows])),
                "repeat_fraction": float(np.mean([r.repeat_fraction for r in rows])),
                "final_customers": float(np.mean([r.final_customers for r in rows])),
                "recovered_share": len(recoveries) / len(rows),
                "mean_recovery_day": float(np.mean(recoveries)) if recoveries else float("nan"),
            }
        return out


def run_intervention_replicas(
    scenario: Scenario,
    interventions: Sequence[Intervention],
    n_replicas: int,
    n_days: int,
    *,
    n_customers: int = 100_000,
    jobs: int | None = 1,
    executor: str | None = None,
    batch: int | None = None,
    dynamics: CustomerDynamics = CustomerDynamics(),
    paying_fraction: float = 0.12,
    chunk_bytes: int = 32 << 20,
) -> ReplicaStudy:
    """Fan ``len(interventions) x n_replicas`` ledger runs over the pool.

    ``jobs``/``executor``/``batch`` follow the day-pipeline conventions
    (``jobs=None``/``0`` = all cores; executor ``None`` defers to the
    process-wide :func:`~repro.core.workerpool.execution_policy`). The
    fan is a pure execution strategy: results — including every ledger
    digest — are identical across inline, thread, and process executors.
    """
    if n_replicas <= 0:
        raise ValueError("n_replicas must be positive")
    if not interventions:
        raise ValueError("need at least one intervention to study")
    n_jobs = resolve_jobs(jobs)
    mode = executor if executor is not None else execution_policy().executor
    tasks = [
        ReplicaTask(
            config=scenario.config,
            intervention=intervention,
            replica=replica,
            n_days=n_days,
            n_customers=n_customers,
            chunk_bytes=chunk_bytes,
            paying_fraction=paying_fraction,
            dynamics=dynamics,
        )
        for intervention in interventions
        for replica in range(n_replicas)
    ]
    registry = metrics()
    results: list[Any]
    if mode == "inline" or n_jobs <= 1 or len(tasks) <= 1:
        register_scenario(scenario)
        start = time.perf_counter()
        results = [_run_replica_task(task) for task in tasks]
        record_inline_pool(registry, len(tasks), time.perf_counter() - start)
    else:
        pool = get_pool(scenario, n_jobs, mode)
        results = [r for r, _ in pool.map_with_deltas(_run_replica_task, tasks, batch=batch)]
    study = ReplicaStudy(
        n_replicas=n_replicas,
        n_days=n_days,
        n_customers=n_customers,
        results=list(results),
    )
    if registry.enabled:
        registry.inc("market.replica_tasks", len(tasks))
    return study
