"""Logging conventions for the package and its command-line tools.

Library modules log through ``logging.getLogger(__name__)`` and never
configure handlers, so embedding applications keep full control and the
effective default stays at the root WARNING level. The CLIs
(``repro-experiments``, ``repro-tracegen``, ``repro-obs``) call
:func:`configure_cli_logging` once per invocation to route the ``repro``
logger hierarchy to stderr at the requested level — reconfiguring on
every call (handlers are replaced, not stacked) so repeated in-process
invocations, as in the test suite, never duplicate output or hold a
stale stream.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["LOG_LEVELS", "configure_cli_logging"]

#: ``--log-level`` choices accepted by the CLIs.
LOG_LEVELS: tuple[str, ...] = ("debug", "info", "warning", "error")


def configure_cli_logging(level: str = "info") -> logging.Logger:
    """Point the ``repro`` logger hierarchy at stderr for one CLI run.

    Messages go to the *current* ``sys.stderr`` bare (no level/name
    prefix): status lines are user-facing CLI output, kept off stdout so
    result tables and reports stay pipeable.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r} (choose from {LOG_LEVELS})")
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.propagate = False
    return logger
