"""Rolling-window service telemetry: rates, sliding quantiles, SLO burn.

Cumulative counters answer "how much since boot"; a long-running
observatory also needs "how is it doing *right now*". A
:class:`RollingWindow` keeps a ring buffer of per-second slots (request
count, error count, latency sum, a bounded latency sample reservoir) and
answers snapshot queries over any trailing window that fits in its
horizon — per-second rate, error rate, sliding p50/p99 latency, and SLO
burn rate (error rate over the error budget of an availability
objective; burn > 1 means the budget is being spent faster than it
accrues).

The serve middleware records every exchange into one shared window and
``/v1/health`` surfaces 1m/5m snapshots, so a plain health poll doubles
as an SLO probe. Everything is stdlib, O(horizon) memory, and safe to
call from multiple threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "RollingWindow",
    "WindowSnapshot",
    "DEFAULT_OBJECTIVE",
]

#: Default availability objective for SLO burn: 99.9% of requests succeed.
DEFAULT_OBJECTIVE = 0.999


@dataclass(frozen=True)
class WindowSnapshot:
    """Point-in-time summary of one trailing window."""

    window_s: int
    requests: int
    errors: int
    rps: float
    error_rate: float
    slo_burn: float
    p50_s: float | None
    p99_s: float | None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (latencies in milliseconds for readability)."""
        return {
            "window_s": self.window_s,
            "requests": self.requests,
            "errors": self.errors,
            "rps": round(self.rps, 3),
            "error_rate": round(self.error_rate, 6),
            "slo_burn": round(self.slo_burn, 3),
            "p50_ms": None if self.p50_s is None else round(self.p50_s * 1e3, 3),
            "p99_ms": None if self.p99_s is None else round(self.p99_s * 1e3, 3),
        }


class _Slot:
    """Aggregates for one wall-clock second."""

    __slots__ = ("second", "count", "errors", "total_s", "samples", "overflow")

    def __init__(self, second: int) -> None:
        self.second = second
        self.count = 0
        self.errors = 0
        self.total_s = 0.0
        self.samples: list[float] = []
        self.overflow = 0


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample list."""
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


class RollingWindow:
    """Ring buffer of per-second request slots with snapshot queries.

    ``horizon_s`` bounds the largest queryable window; ``slot_samples``
    caps the latency samples retained per second (excess observations
    still count toward rates, they just stop contributing to the
    quantile reservoir). ``clock`` is injectable for deterministic
    tests and must be monotone non-decreasing.
    """

    def __init__(
        self,
        horizon_s: int = 300,
        slot_samples: int = 128,
        objective: float = DEFAULT_OBJECTIVE,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        if slot_samples <= 0:
            raise ValueError(f"slot_samples must be positive, got {slot_samples}")
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        self.horizon_s = horizon_s
        self.slot_samples = slot_samples
        self.objective = objective
        self._clock = clock
        self._slots: list[_Slot] = [_Slot(-1) for _ in range(horizon_s)]
        self._created = clock()
        self._lock = threading.Lock()

    def record(self, latency_s: float, error: bool = False) -> None:
        """Record one finished request into the current second's slot."""
        second = int(self._clock())
        with self._lock:
            slot = self._slots[second % self.horizon_s]
            if slot.second != second:
                # The ring wrapped past this slot's old second: recycle it.
                slot.__init__(second)
            slot.count += 1
            if error:
                slot.errors += 1
            slot.total_s += latency_s
            if len(slot.samples) < self.slot_samples:
                slot.samples.append(latency_s)
            else:
                slot.overflow += 1

    def snapshot(self, window_s: int = 60) -> WindowSnapshot:
        """Summarize the trailing ``window_s`` seconds (<= the horizon)."""
        if not 0 < window_s <= self.horizon_s:
            raise ValueError(
                f"window_s must be in (0, {self.horizon_s}], got {window_s}"
            )
        with self._lock:
            now = self._clock()
            current = int(now)
            requests = errors = 0
            samples: list[float] = []
            for second in range(current - window_s + 1, current + 1):
                slot = self._slots[second % self.horizon_s]
                if slot.second != second:
                    continue  # stale slot from a previous ring revolution
                requests += slot.count
                errors += slot.errors
                samples.extend(slot.samples)
            elapsed = max(now - self._created, 1e-9)
        denominator = min(float(window_s), elapsed) or 1e-9
        error_rate = errors / requests if requests else 0.0
        samples.sort()
        return WindowSnapshot(
            window_s=window_s,
            requests=requests,
            errors=errors,
            rps=requests / denominator,
            error_rate=error_rate,
            slo_burn=error_rate / (1.0 - self.objective),
            p50_s=_quantile(samples, 0.50) if samples else None,
            p99_s=_quantile(samples, 0.99) if samples else None,
        )
