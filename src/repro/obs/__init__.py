"""Observability: metrics registry, span timers, profile rendering.

Lightweight and dependency-free. Library code records unconditionally
into the active registry (:func:`metrics`), which is a disabled no-op
unless a run installs an enabled one (``repro-experiments
--metrics-out`` / ``--profile``, or :func:`use_metrics` in the API).
Worker processes record into their own registries, which ship back with
task results and fold into the parent via
:meth:`MetricsRegistry.merge` — the same reduction shape as
``StreamingAnalyzer.merge()``, so ``jobs=1`` and ``jobs=N`` runs agree
on every deterministic counter.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    SpanStats,
    metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.profile import (
    cache_hit_rate,
    export_metrics,
    pool_utilization,
    render_profile,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "SpanStats",
    "metrics",
    "set_metrics",
    "use_metrics",
    "cache_hit_rate",
    "export_metrics",
    "pool_utilization",
    "render_profile",
]
