"""Observability: metrics registry, span timers, tracing, provenance.

Lightweight and dependency-free. Library code records unconditionally
into the active registry (:func:`metrics`), which is a disabled no-op
unless a run installs an enabled one (``repro-experiments
--metrics-out`` / ``--profile``, or :func:`use_metrics` in the API).
Worker processes record into their own registries, which ship back with
task results and fold into the parent via
:meth:`MetricsRegistry.merge` — the same reduction shape as
``StreamingAnalyzer.merge()``, so ``jobs=1`` and ``jobs=N`` runs agree
on every deterministic counter.

On top of the registry sit three run-comparison layers (PR 3):

* :mod:`repro.obs.trace` — per-span event buffers exported as Chrome
  trace-event JSON (``repro-experiments --trace-out``);
* :mod:`repro.obs.runledger` — an append-only JSONL provenance ledger,
  one ``repro.obs.run/1`` record per runner invocation (``--ledger``);
* :mod:`repro.obs.cli` — the ``repro-obs`` tool that diffs two runs and
  classifies drift as logic change vs perf regression.

The live telemetry plane (PR 8) adds two more:

* :mod:`repro.obs.expo` — Prometheus text exposition (v0.0.4) rendering
  + strict parsing/validation, served at ``/v1/metrics`` and consumed by
  the ``repro-obs top`` dashboard;
* :mod:`repro.obs.window` — ring-buffer rolling windows (per-second
  rate, sliding p50/p99, error rate/SLO burn) surfaced in
  ``/v1/health``.

Request-scoped tracing lives in :mod:`repro.obs.trace`: the serving
plane binds a request id per exchange (:func:`request_scope`), the
worker pool forwards it across executor boundaries, and every trace
event stamps it into its args — so one id connects an access-log line
to its pool-worker spans in the Perfetto export.
"""

from repro.obs.expo import (
    EXPO_CONTENT_TYPE,
    histogram_quantile,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
    validate_exposition,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    FINE_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    SpanStats,
    metrics,
    set_metrics,
    set_thread_metrics,
    use_metrics,
)
from repro.obs.profile import (
    EXPORT_SCHEMA,
    cache_hit_rate,
    export_metrics,
    load_export,
    pool_utilization,
    registry_from_dict,
    render_profile,
)
from repro.obs.runledger import (
    DETERMINISTIC_PREFIXES,
    EXCLUDED_PREFIXES,
    RUN_SCHEMA,
    append_run_record,
    artifact_digest,
    build_run_record,
    counter_digest,
    deterministic_counters,
    read_ledger,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceRecorder,
    chrome_trace_events,
    current_request_id,
    request_scope,
    reset_request_id,
    set_request_id,
    write_chrome_trace,
)
from repro.obs.window import RollingWindow, WindowSnapshot

__all__ = [
    "DEFAULT_BUCKETS",
    "DETERMINISTIC_PREFIXES",
    "EXCLUDED_PREFIXES",
    "EXPO_CONTENT_TYPE",
    "EXPORT_SCHEMA",
    "FINE_LATENCY_BUCKETS",
    "RUN_SCHEMA",
    "TRACE_SCHEMA",
    "Histogram",
    "MetricsRegistry",
    "RollingWindow",
    "SpanStats",
    "TraceRecorder",
    "WindowSnapshot",
    "append_run_record",
    "artifact_digest",
    "build_run_record",
    "cache_hit_rate",
    "chrome_trace_events",
    "counter_digest",
    "current_request_id",
    "deterministic_counters",
    "export_metrics",
    "histogram_quantile",
    "load_export",
    "metrics",
    "parse_exposition",
    "pool_utilization",
    "read_ledger",
    "registry_from_dict",
    "render_exposition",
    "render_profile",
    "request_scope",
    "reset_request_id",
    "sanitize_metric_name",
    "set_metrics",
    "set_request_id",
    "set_thread_metrics",
    "use_metrics",
    "validate_exposition",
    "write_chrome_trace",
]
