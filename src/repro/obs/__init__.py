"""Observability: metrics registry, span timers, tracing, provenance.

Lightweight and dependency-free. Library code records unconditionally
into the active registry (:func:`metrics`), which is a disabled no-op
unless a run installs an enabled one (``repro-experiments
--metrics-out`` / ``--profile``, or :func:`use_metrics` in the API).
Worker processes record into their own registries, which ship back with
task results and fold into the parent via
:meth:`MetricsRegistry.merge` — the same reduction shape as
``StreamingAnalyzer.merge()``, so ``jobs=1`` and ``jobs=N`` runs agree
on every deterministic counter.

On top of the registry sit three run-comparison layers (PR 3):

* :mod:`repro.obs.trace` — per-span event buffers exported as Chrome
  trace-event JSON (``repro-experiments --trace-out``);
* :mod:`repro.obs.runledger` — an append-only JSONL provenance ledger,
  one ``repro.obs.run/1`` record per runner invocation (``--ledger``);
* :mod:`repro.obs.cli` — the ``repro-obs`` tool that diffs two runs and
  classifies drift as logic change vs perf regression.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    SpanStats,
    metrics,
    set_metrics,
    set_thread_metrics,
    use_metrics,
)
from repro.obs.profile import (
    EXPORT_SCHEMA,
    cache_hit_rate,
    export_metrics,
    load_export,
    pool_utilization,
    registry_from_dict,
    render_profile,
)
from repro.obs.runledger import (
    RUN_SCHEMA,
    append_run_record,
    artifact_digest,
    build_run_record,
    counter_digest,
    deterministic_counters,
    read_ledger,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceRecorder,
    chrome_trace_events,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "EXPORT_SCHEMA",
    "RUN_SCHEMA",
    "TRACE_SCHEMA",
    "Histogram",
    "MetricsRegistry",
    "SpanStats",
    "TraceRecorder",
    "append_run_record",
    "artifact_digest",
    "build_run_record",
    "cache_hit_rate",
    "chrome_trace_events",
    "counter_digest",
    "deterministic_counters",
    "export_metrics",
    "load_export",
    "metrics",
    "pool_utilization",
    "read_ledger",
    "registry_from_dict",
    "render_profile",
    "set_metrics",
    "set_thread_metrics",
    "use_metrics",
    "write_chrome_trace",
]
