"""Prometheus text exposition (v0.0.4) rendering, parsing, and validation.

The serving plane's live telemetry endpoint (``GET /v1/metrics``) renders
the active :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus
text exposition format so any off-the-shelf scraper — or the bundled
``repro-obs top`` dashboard — can consume it:

* counters become ``<name>_total`` samples with ``# HELP``/``# TYPE``
  lines;
* gauges are emitted verbatim;
* fixed-bucket histograms become the cumulative
  ``_bucket{le="..."}``/``_sum``/``_count`` triplet (the registry stores
  per-bucket counts, so rendering re-accumulates them);
* span call-tree nodes export as two labeled counter families
  (``repro_span_calls_total{stage=...}`` / ``repro_span_seconds_total``),
  which keeps the per-stage profile scrapeable without inventing one
  metric family per span path.

Metric names are sanitized mechanically (``.`` and every other invalid
character become ``_``); a sanitization collision between two distinct
source names raises instead of silently merging families.

:func:`parse_exposition` is the strict inverse — every line must parse
and every sample must belong to a declared family — and
:func:`validate_exposition` adds the histogram conformance rules
(buckets cumulative and monotone, ``+Inf`` bucket equal to ``_count``,
``_sum`` present). The CI serve-smoke step and the conformance tests run
real ``/v1/metrics`` output through it.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "EXPO_CONTENT_TYPE",
    "MetricFamily",
    "Sample",
    "sanitize_metric_name",
    "render_exposition",
    "parse_exposition",
    "validate_exposition",
    "histogram_quantile",
]

#: Content type of the v0.0.4 text exposition format.
EXPO_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Characters allowed in an exposition metric name, after the first.
_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: One ``label="value"`` pair; values use ``\\``, ``\"`` and ``\n`` escapes.
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: A sample line: ``name[{labels}] value [timestamp]``.
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)(?:\s+(-?\d+))?$"
)


def sanitize_metric_name(name: str) -> str:
    """A registry metric name as a valid exposition metric name.

    Dots (the registry's family separator) and every other character
    outside ``[a-zA-Z0-9_:]`` become underscores; a leading digit gets an
    underscore prefix. The mapping is mechanical so it can be reproduced
    by any consumer that only knows the registry name.
    """
    if not name:
        raise ValueError("cannot sanitize an empty metric name")
    out = _INVALID_NAME_CHARS.sub("_", name)
    if out[0].isdigit():
        out = "_" + out
    return out


def _format_value(value: float) -> str:
    """A sample value in exposition syntax (``+Inf``/``-Inf``/``NaN`` aware)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _help_line(family: str, text: str) -> str:
    safe = text.replace("\\", "\\\\").replace("\n", "\\n")
    return f"# HELP {family} {safe}"


@dataclass(frozen=True)
class Sample:
    """One exposition sample: metric name, label set, value."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    def label(self, key: str) -> str | None:
        """The value of label ``key``, or ``None`` when absent."""
        for name, value in self.labels:
            if name == key:
                return value
        return None


@dataclass
class MetricFamily:
    """One ``# TYPE``-declared family and the samples that belong to it."""

    name: str
    type: str
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def value(self, suffix: str = "", **labels: str) -> float | None:
        """The first sample value matching ``name+suffix`` and ``labels``."""
        target = self.name + suffix
        for sample in self.samples:
            if sample.name != target:
                continue
            if all(sample.label(k) == v for k, v in labels.items()):
                return sample.value
        return None


def render_exposition(
    registry: MetricsRegistry,
    extra_gauges: Mapping[str, float] | None = None,
) -> bytes:
    """The registry's contents in Prometheus text exposition format.

    ``extra_gauges`` ride along as additional gauge families — the serve
    layer injects point-in-time values (rolling-window rates, active
    connections) that live outside the registry. Raises ``ValueError``
    if two distinct source names sanitize to the same family name.
    """
    lines: list[str] = []
    families: dict[str, str] = {}

    def claim(family: str, source: str) -> None:
        previous = families.get(family)
        if previous is not None and previous != source:
            raise ValueError(
                f"metric name collision after sanitization: {previous!r} and "
                f"{source!r} both map to exposition family {family!r}"
            )
        families[family] = source

    for name in sorted(registry.counters):
        family = sanitize_metric_name(name) + "_total"
        claim(family, name)
        lines.append(_help_line(family, f"Counter {name} from the repro metrics registry."))
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_format_value(registry.counters[name])}")

    gauges: dict[str, float] = dict(registry.gauges)
    for name, value in (extra_gauges or {}).items():
        gauges[name] = float(value)
    for name in sorted(gauges):
        family = sanitize_metric_name(name)
        claim(family, name)
        lines.append(_help_line(family, f"Gauge {name} from the repro metrics registry."))
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(gauges[name])}")

    for name in sorted(registry.histograms):
        histogram = registry.histograms[name]
        family = sanitize_metric_name(name)
        claim(family, name)
        lines.append(_help_line(family, f"Histogram {name} from the repro metrics registry."))
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for bound, count in zip(histogram.buckets, histogram.counts):
            cumulative += count
            le = "+Inf" if math.isinf(bound) else _format_value(bound)
            lines.append(f'{family}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{family}_sum {_format_value(histogram.total)}")
        lines.append(f"{family}_count {histogram.count}")

    if registry.spans:
        for family, unit in (
            ("repro_span_calls_total", "calls"),
            ("repro_span_seconds_total", "seconds"),
        ):
            claim(family, family)
            lines.append(
                _help_line(family, f"Span call-tree {unit} per stage path.")
            )
            lines.append(f"# TYPE {family} counter")
            for path, node in sorted(registry.spans.items()):
                stage = _escape_label_value("/".join(path))
                value = node.calls if unit == "calls" else node.total_s
                lines.append(f'{family}{{stage="{stage}"}} {_format_value(value)}')

    if not lines:
        return b""
    return ("\n".join(lines) + "\n").encode("utf-8")


def _parse_labels(raw: str, lineno: int) -> tuple[tuple[str, str], ...]:
    body = raw[1:-1].strip()
    if not body:
        return ()
    labels: list[tuple[str, str]] = []
    pos = 0
    while pos < len(body):
        match = _LABEL_RE.match(body, pos)
        if match is None:
            raise ValueError(f"line {lineno}: malformed label set {raw!r}")
        labels.append((match.group(1), _unescape_label_value(match.group(2))))
        pos = match.end()
        if pos < len(body):
            if body[pos] != ",":
                raise ValueError(f"line {lineno}: malformed label set {raw!r}")
            pos += 1
            while pos < len(body) and body[pos] == " ":
                pos += 1
    return tuple(labels)


def _parse_sample_value(raw: str, lineno: int) -> float:
    lowered = raw.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"line {lineno}: unparseable sample value {raw!r}") from None


#: Sample-name suffixes a histogram family owns besides its bare name.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_exposition(text: str) -> dict[str, MetricFamily]:
    """Parse exposition text into its metric families, strictly.

    Every non-comment line must be a valid sample, every sample must
    belong to a ``# TYPE``-declared family (histogram samples attach via
    their ``_bucket``/``_sum``/``_count`` suffixes), and a family must
    not be declared twice. Violations raise :class:`ValueError` naming
    the line.
    """
    families: dict[str, MetricFamily] = {}
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name = parts[2]
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
                if name in typed:
                    raise ValueError(f"line {lineno}: family {name!r} declared twice")
                typed.add(name)
                if name in families:
                    families[name].type = kind  # HELP line preceded TYPE
                else:
                    families[name] = MetricFamily(name=name, type=kind)
            elif len(parts) >= 3 and parts[1] == "HELP":
                name = parts[2]
                help_text = parts[3] if len(parts) > 3 else ""
                if name in families:
                    families[name].help = help_text
                else:
                    families[name] = MetricFamily(name=name, type="untyped", help=help_text)
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample line {line!r}")
        name, raw_labels, raw_value = match.group(1), match.group(2), match.group(3)
        labels = _parse_labels(raw_labels, lineno) if raw_labels else ()
        value = _parse_sample_value(raw_value, lineno)
        family = families.get(name)
        if family is None:
            for suffix in _HISTOGRAM_SUFFIXES:
                if name.endswith(suffix):
                    base = families.get(name[: -len(suffix)])
                    if base is not None and base.type == "histogram":
                        family = base
                        break
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE declaration"
            )
        family.samples.append(Sample(name=name, labels=labels, value=value))
    return families


def _validate_histogram(family: MetricFamily) -> None:
    buckets: list[tuple[float, float]] = []
    total_sum: float | None = None
    count: float | None = None
    for sample in family.samples:
        if sample.name == family.name + "_bucket":
            le = sample.label("le")
            if le is None:
                raise ValueError(f"{family.name}: bucket sample without an le label")
            buckets.append((_parse_sample_value(le, 0), sample.value))
        elif sample.name == family.name + "_sum":
            total_sum = sample.value
        elif sample.name == family.name + "_count":
            count = sample.value
    if not buckets:
        raise ValueError(f"{family.name}: histogram has no buckets")
    if total_sum is None:
        raise ValueError(f"{family.name}: histogram is missing its _sum sample")
    if count is None:
        raise ValueError(f"{family.name}: histogram is missing its _count sample")
    bounds = [le for le, _ in buckets]
    if bounds != sorted(bounds):
        raise ValueError(f"{family.name}: bucket le bounds are not ascending")
    counts = [c for _, c in buckets]
    if counts != sorted(counts):
        raise ValueError(f"{family.name}: bucket counts are not cumulative/monotone")
    if not math.isinf(bounds[-1]):
        raise ValueError(f"{family.name}: histogram is missing its +Inf bucket")
    if counts[-1] != count:
        raise ValueError(
            f"{family.name}: +Inf bucket ({counts[-1]:g}) disagrees with "
            f"_count ({count:g})"
        )


def validate_exposition(text: str) -> dict[str, MetricFamily]:
    """Parse and conformance-check exposition text.

    On top of :func:`parse_exposition`'s strict line grammar this
    enforces the histogram rules: every histogram family must carry
    ascending ``le`` bounds with cumulative, monotone bucket counts, a
    ``+Inf`` bucket agreeing with ``_count``, and a ``_sum`` sample.
    Returns the parsed families for further inspection.
    """
    families = parse_exposition(text)
    for family in families.values():
        if family.type == "histogram":
            _validate_histogram(family)
    return families


def histogram_quantile(
    buckets: Sequence[tuple[float, float]], q: float
) -> float | None:
    """Estimate quantile ``q`` from cumulative ``(le, count)`` buckets.

    Standard Prometheus-style linear interpolation inside the bucket the
    rank falls into (the lowest bucket interpolates from zero, the
    ``+Inf`` bucket answers with the highest finite bound). Returns
    ``None`` when the histogram is empty. ``buckets`` must be cumulative
    and sorted by bound, as rendered/parsed by this module.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not buckets:
        return None
    total = buckets[-1][1]
    if total <= 0:
        return None
    rank = q * total
    previous_bound = 0.0
    previous_count = 0.0
    for bound, count in buckets:
        if count >= rank:
            if math.isinf(bound):
                return previous_bound
            if count == previous_count:
                return bound
            fraction = (rank - previous_count) / (count - previous_count)
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = (0.0 if math.isinf(bound) else bound), count
    return previous_bound
