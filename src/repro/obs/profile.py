"""Render a recorded registry as a profile table and export it as JSON.

The profile table is the runner's per-experiment view of where time
went: one row per span call-tree node (indented by depth), plus summary
lines derived from the cache and pool counters. The JSON export is the
stable schema behind ``repro-experiments --metrics-out``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import Histogram, MetricsRegistry, SpanStats

__all__ = [
    "EXPORT_SCHEMA",
    "cache_hit_rate",
    "disk_cache_hit_rate",
    "matrix_hit_rate",
    "pool_utilization",
    "render_profile",
    "export_metrics",
    "load_export",
    "registry_from_dict",
]

#: Schema tag of the ``--metrics-out`` file format.
EXPORT_SCHEMA = "repro.obs.export/1"


def cache_hit_rate(registry: MetricsRegistry) -> float | None:
    """Day-cache hit rate over the recorded run, or ``None`` if unused."""
    hits = registry.counter("cache.hits")
    misses = registry.counter("cache.misses")
    total = hits + misses
    if total == 0:
        return None
    return hits / total


def disk_cache_hit_rate(registry: MetricsRegistry) -> float | None:
    """Disk-tier hit rate over the recorded run, or ``None`` if unused.

    Only meaningful when a ``--cache-dir`` is attached; a disk lookup
    happens on every in-memory miss, so this is the fraction of memory
    misses the durable tier absorbed.
    """
    hits = registry.counter("cache.disk_hits")
    misses = registry.counter("cache.disk_misses")
    total = hits + misses
    if total == 0:
        return None
    return hits / total


def matrix_hit_rate(registry: MetricsRegistry) -> float | None:
    """Visibility-matrix fast-path fraction, or ``None`` if unused.

    Flows whose ASNs resolve inside the precomputed matrix count as
    hits; out-of-registry ASNs fall back to the per-pair oracle. A low
    rate flags scenarios paying the lazy-lookup cost the matrix was
    meant to remove.
    """
    hits = registry.counter("visibility.matrix_hits")
    fallbacks = registry.counter("visibility.fallback_lookups")
    total = hits + fallbacks
    if total == 0:
        return None
    return hits / total


def pool_utilization(registry: MetricsRegistry) -> float | None:
    """Worker-pool busy fraction: task busy time over pool capacity.

    Capacity is accumulated per pool run as ``workers x wall`` seconds,
    busy time as the sum of worker task wall times, so the ratio is the
    average fraction of pool slots doing work. ``None`` if no pool ran.
    """
    capacity = registry.counter("pool.capacity_s")
    if capacity == 0:
        return None
    return registry.counter("pool.busy_s") / capacity


def _format_row(cells: list[str], widths: list[int]) -> str:
    return "  ".join(c.ljust(w) for c, w in zip(cells, widths))


def render_profile(registry: MetricsRegistry, title: str | None = None) -> str:
    """Aligned per-stage profile table plus cache/pool summary lines.

    Rows are span call-tree nodes in path order, indented by nesting
    depth, with calls, total and mean wall-clock milliseconds.
    """
    headers = ["stage", "calls", "total ms", "mean ms"]
    rows: list[list[str]] = []
    for path, node in sorted(registry.spans.items()):
        indent = "  " * (len(path) - 1)
        total_ms = node.total_s * 1e3
        mean_ms = total_ms / node.calls if node.calls else 0.0
        rows.append(
            [f"{indent}{path[-1]}", str(node.calls), f"{total_ms:.1f}", f"{mean_ms:.2f}"]
        )
    if not rows:
        rows.append(["(no spans recorded)", "-", "-", "-"])
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(_format_row(headers, widths))
    lines.append(_format_row(["-" * w for w in widths], widths))
    lines.extend(_format_row(row, widths) for row in rows)

    summary: list[str] = []
    hit_rate = cache_hit_rate(registry)
    if hit_rate is not None:
        summary.append(
            f"day-cache hit rate: {hit_rate * 100:.1f}% "
            f"({registry.counter('cache.hits'):.0f}/"
            f"{registry.counter('cache.hits') + registry.counter('cache.misses'):.0f})"
        )
    disk_rate = disk_cache_hit_rate(registry)
    if disk_rate is not None:
        corrupt = registry.counter("cache.disk_corrupt")
        corrupt_note = f", {corrupt:.0f} corrupt" if corrupt else ""
        summary.append(
            f"disk-cache hit rate: {disk_rate * 100:.1f}% "
            f"({registry.counter('cache.disk_hits'):.0f}/"
            f"{registry.counter('cache.disk_hits') + registry.counter('cache.disk_misses'):.0f}"
            f"{corrupt_note})"
        )
    shm_bytes = registry.counter("shm.bytes")
    pipe_bytes = registry.counter("pool.pipe_bytes")
    if shm_bytes or pipe_bytes:
        summary.append(
            f"result transport: {shm_bytes / 1e6:.1f} MB shm "
            f"({registry.counter('shm.blocks'):.0f} blocks) / "
            f"{pipe_bytes / 1e6:.1f} MB pipe"
        )
    visibility_rate = matrix_hit_rate(registry)
    if visibility_rate is not None:
        summary.append(
            f"visibility matrix hits: {visibility_rate * 100:.1f}% "
            f"({registry.counter('visibility.matrix_hits'):.0f} fast / "
            f"{registry.counter('visibility.fallback_lookups'):.0f} fallback)"
        )
    utilization = pool_utilization(registry)
    if utilization is not None:
        summary.append(
            f"pool utilization: {utilization * 100:.1f}% "
            f"({registry.gauges.get('pool.workers', 0):.0f} workers, "
            f"{registry.counter('pool.tasks'):.0f} tasks)"
        )
    spawns = registry.counter("pool.spawns")
    reuses = registry.counter("pool.reuses")
    if spawns or reuses:
        respawns = registry.counter("pool.respawns")
        respawn_note = f", {respawns:.0f} respawns" if respawns else ""
        summary.append(
            f"pool reuse: {spawns:.0f} spawn(s) / {reuses:.0f} reuse(s)"
            f"{respawn_note}"
        )
    batches = registry.counter("pool.batches")
    if batches:
        shard_tasks = registry.counter("pool.shard_tasks")
        shard_note = f", {shard_tasks:.0f} shard tasks" if shard_tasks else ""
        summary.append(
            f"pool batching: {registry.counter('pool.tasks'):.0f} tasks in "
            f"{batches:.0f} dispatch(es) "
            f"(batch size {registry.gauges.get('pool.batch_size', 0):.0f}"
            f"{shard_note})"
        )
    requests = registry.counter("serve.requests")
    if requests:
        tiers = "/".join(
            f"{registry.counter(f'serve.cache_tier.{tier}'):.0f}"
            for tier in ("mem", "disk", "compute")
        )
        flights = registry.counter("serve.singleflight_hits")
        summary.append(
            f"serve: {requests:.0f} request(s), tiers mem/disk/compute {tiers}, "
            f"{flights:.0f} coalesced"
        )
    if summary:
        lines.append("  |  ".join(summary))
    return "\n".join(lines)


def export_metrics(
    per_experiment: dict[str, MetricsRegistry],
    total: MetricsRegistry,
    path: str | Path,
    run_info: dict[str, Any] | None = None,
) -> Path:
    """Write the run's metrics to ``path`` as stable-schema JSON.

    The file carries one registry dump per experiment plus the merged
    run total and the run parameters, under a versioned ``schema`` key
    so downstream tooling can detect format changes.
    """
    payload = {
        "schema": EXPORT_SCHEMA,
        "run": dict(run_info or {}),
        "experiments": {
            experiment_id: registry.to_dict()
            for experiment_id, registry in sorted(per_experiment.items())
        },
        "total": total.to_dict(),
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def load_export(path: str | Path) -> dict[str, Any]:
    """Read and schema-validate a ``--metrics-out`` export file.

    Rejects files whose ``schema`` field is missing or not
    :data:`EXPORT_SCHEMA`, naming the file and the version found, so
    tooling (``repro-obs``) fails with a diagnosis instead of a
    ``KeyError`` deep in a diff.
    """
    source = Path(path)
    try:
        payload = json.loads(source.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{source}: not valid JSON: {exc}") from None
    schema = payload.get("schema") if isinstance(payload, dict) else None
    if schema != EXPORT_SCHEMA:
        raise ValueError(
            f"{source}: unsupported metrics-export schema {schema!r} "
            f"(expected {EXPORT_SCHEMA!r}); refresh the file with "
            f"repro-experiments --metrics-out"
        )
    missing = {"run", "experiments", "total"} - set(payload)
    if missing:
        raise ValueError(
            f"{source}: metrics export is missing sections: {', '.join(sorted(missing))}"
        )
    return payload


def registry_from_dict(payload: dict[str, Any]) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from ``MetricsRegistry.to_dict``.

    The inverse of the export serialization, so ``repro-obs show`` can
    re-render profile tables offline from a ``--metrics-out`` file.
    """
    schema = payload.get("schema")
    if schema != "repro.obs.metrics/1":
        raise ValueError(
            f"unsupported registry schema {schema!r} (expected 'repro.obs.metrics/1')"
        )
    registry = MetricsRegistry()
    registry.counters = {k: float(v) for k, v in payload.get("counters", {}).items()}
    registry.gauges = {k: float(v) for k, v in payload.get("gauges", {}).items()}
    for name, data in payload.get("histograms", {}).items():
        registry.histograms[name] = Histogram(
            buckets=tuple(float("inf") if b == "inf" else float(b) for b in data["buckets"]),
            counts=[int(n) for n in data["counts"]],
            count=int(data["count"]),
            total=float(data["total"]),
        )
    for row in payload.get("spans", []):
        path_key = tuple(row["stage"].split("/"))
        registry.spans[path_key] = SpanStats(
            calls=int(row["calls"]), total_s=float(row["total_s"])
        )
    return registry
