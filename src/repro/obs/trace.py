"""Event tracing: bounded per-process event buffers and Chrome trace export.

A :class:`TraceRecorder` attached to a :class:`~repro.obs.metrics.MetricsRegistry`
turns every completed ``span()`` into one *complete* trace event — name,
wall-clock offset, duration, pid/tid, and optional args such as the
scenario day or experiment id. Recorders are picklable and mergeable with
the same reduction shape as ``MetricsRegistry.merge``, so worker
processes ship their event buffers back with pool results and the parent
folds them into one run-wide timeline.

:func:`write_chrome_trace` exports that timeline as Chrome trace-event
JSON (the ``traceEvents`` array format), loadable in Perfetto or
``chrome://tracing``: one track per process, so a ``--jobs N`` run of the
17 experiments is visually inspectable per worker.

Timestamps are ``time.perf_counter()`` microseconds. On Linux that clock
is ``CLOCK_MONOTONIC``, which shares its epoch across processes, so
parent and worker events interleave correctly; the export re-bases all
timestamps to the earliest event.

**Request-scoped tracing.** The serving plane assigns every HTTP request
an id and installs it in the :data:`current_request_id` context variable
(:func:`request_scope`). :meth:`TraceRecorder.record` stamps the current
id into every event's args, and the worker pool forwards the id across
the process/thread-pool boundary, so a pool-worker span stitches back to
the HTTP request that caused it: filtering the Perfetto export on
``args.request_id`` shows one request's full serve → pool timeline.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "TRACE_SCHEMA",
    "TraceRecorder",
    "chrome_trace_events",
    "write_chrome_trace",
    "current_request_id",
    "set_request_id",
    "reset_request_id",
    "request_scope",
]

#: The id of the request the current task/thread is working for, or
#: ``None`` outside any request. Context variables propagate through
#: ``asyncio`` task creation and ``asyncio.to_thread``, so serve-side
#: spans inherit the id for free; pool tasks forward it explicitly.
_REQUEST_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_request_id", default=None
)


def current_request_id() -> str | None:
    """The request id bound to the current context, if any."""
    return _REQUEST_ID.get()


def set_request_id(request_id: str | None) -> contextvars.Token:
    """Bind ``request_id`` to the current context; returns a reset token."""
    return _REQUEST_ID.set(request_id)


def reset_request_id(token: contextvars.Token) -> None:
    """Undo a :func:`set_request_id` using its token."""
    _REQUEST_ID.reset(token)


@contextmanager
def request_scope(request_id: str | None) -> Iterator[str | None]:
    """Scope ``request_id`` as the current request for a ``with`` block."""
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)

#: Version tag embedded in the exported trace file (under ``otherData``).
TRACE_SCHEMA = "repro.obs.trace/1"

#: Default event-buffer bound. A full 17-experiment small-preset run emits
#: a few thousand span events; the bound only exists so a pathological
#: hot-loop span cannot grow the buffer without limit.
DEFAULT_MAX_EVENTS = 200_000


class TraceRecorder:
    """Bounded buffer of completed span events for one process.

    Events are stored as ``(name, ts_us, dur_us, pid, tid, args)`` tuples
    (``args`` is ``None`` or a small dict). Once ``max_events`` is
    reached further events are counted in :attr:`dropped` instead of
    stored, so tracing can never exhaust memory.
    """

    __slots__ = ("max_events", "events", "dropped")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.max_events = max_events
        self.events: list[tuple[str, float, float, int, int, dict[str, Any] | None]] = []
        self.dropped = 0

    def record(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record one completed span (``start_s`` in perf_counter seconds).

        When a request id is bound in the current context (see
        :func:`request_scope`) it is stamped into the event args as
        ``request_id``, without overriding an explicit value.
        """
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        request_id = _REQUEST_ID.get()
        if request_id is not None:
            args = dict(args) if args else {}
            args.setdefault("request_id", request_id)
        self.events.append(
            (
                name,
                start_s * 1e6,
                duration_s * 1e6,
                os.getpid(),
                threading.get_native_id(),
                args,
            )
        )

    def merge(self, other: "TraceRecorder") -> "TraceRecorder":
        """Fold another recorder's buffer into this one (commutative up to
        event order, which the export re-sorts by timestamp anyway)."""
        room = self.max_events - len(self.events)
        if room >= len(other.events):
            self.events.extend(other.events)
        else:
            self.events.extend(other.events[:room])
            self.dropped += len(other.events) - room
        self.dropped += other.dropped
        return self

    def pids(self) -> set[int]:
        """Distinct process ids that contributed events."""
        return {event[3] for event in self.events}

    def __len__(self) -> int:
        return len(self.events)

    def __getstate__(self) -> dict[str, Any]:
        return {
            "max_events": self.max_events,
            "events": self.events,
            "dropped": self.dropped,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.max_events = state["max_events"]
        self.events = state["events"]
        self.dropped = state["dropped"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecorder({len(self.events)} events, {self.dropped} dropped)"


def chrome_trace_events(
    recorder: TraceRecorder, parent_pid: int | None = None
) -> list[dict[str, Any]]:
    """The recorder's buffer as Chrome trace-event dicts.

    Events are complete (``"ph": "X"``) events sorted by timestamp and
    re-based so the earliest starts at 0; process-name metadata events
    label the parent process vs pool workers.
    """
    ordered = sorted(recorder.events, key=lambda event: event[1])
    t0 = ordered[0][1] if ordered else 0.0
    out: list[dict[str, Any]] = []
    if parent_pid is None:
        parent_pid = os.getpid()
    for pid in sorted({event[3] for event in ordered}):
        label = "repro-experiments" if pid == parent_pid else f"worker-{pid}"
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": label},
            }
        )
    for name, ts, dur, pid, tid, args in ordered:
        event: dict[str, Any] = {
            "name": name,
            "cat": "repro",
            "ph": "X",
            "ts": round(ts - t0, 3),
            "dur": round(dur, 3),
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        out.append(event)
    return out


def write_chrome_trace(
    recorder: TraceRecorder,
    path: str | Path,
    parent_pid: int | None = None,
    run_info: dict[str, Any] | None = None,
) -> Path:
    """Write the recorder as a Chrome trace-event JSON file.

    The object form of the format is used (``traceEvents`` +
    ``displayTimeUnit``) so run metadata and the dropped-event count can
    ride along under ``otherData``.
    """
    payload = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(recorder, parent_pid=parent_pid),
        "otherData": {
            "schema": TRACE_SCHEMA,
            "dropped_events": recorder.dropped,
            **(run_info or {}),
        },
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out
