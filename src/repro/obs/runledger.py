"""Run-provenance ledger: one appended JSONL record per runner invocation.

The takedown study compares measurement windows over time; this module
gives the reproduction the same discipline about *its own* runs. Every
``repro-experiments --ledger PATH`` invocation appends one
``repro.obs.run/1`` record capturing what produced the artifacts:

* identity — scenario config ``content_hash``, seed, preset, package
  version, platform;
* strategy — jobs, cache, experiment list;
* outcome — total and per-experiment wall time, the deterministic
  ``scenario.*``/``streaming.*``/``pipeline.*`` counters and their
  SHA-256 digest (bit-identical for any ``--jobs``/``--cache``
  combination, so two records with different digests differ in *logic*,
  not execution strategy), and SHA-256 digests of the written artifacts.

``repro-obs diff`` consumes these records (or raw metrics exports) to
classify run-to-run drift as logic change vs perf regression.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "RUN_SCHEMA",
    "DETERMINISTIC_PREFIXES",
    "EXCLUDED_PREFIXES",
    "deterministic_counters",
    "counter_digest",
    "artifact_digest",
    "build_run_record",
    "append_run_record",
    "read_ledger",
]

#: Schema tag of one ledger record.
RUN_SCHEMA = "repro.obs.run/1"

#: Counter families that measure *logical* work and must not depend on the
#: execution strategy (see :mod:`repro.obs.metrics` naming conventions).
#: ``econ.`` counts simulated market events (customer-days, signups,
#: churns, migrations, replicas) — identical for every ledger chunk size
#: and replica executor, so it belongs in the drift digest.
DETERMINISTIC_PREFIXES: tuple[str, ...] = (
    "scenario.",
    "streaming.",
    "pipeline.",
    "econ.",
)

#: Counter families that measure *physical* execution (strategy, load,
#: transport) and are therefore excluded from the drift digest. Every
#: recorded metric name must live under exactly one of these two prefix
#: lists — enforced by ``tests/test_obs_metric_hygiene.py`` so new
#: instrumentation cannot silently pollute the digest.
EXCLUDED_PREFIXES: tuple[str, ...] = (
    "cache.",
    "pool.",
    "serve.",
    "shm.",
    "visibility.",
    "parallel.",
    "topology.",
    "matrix.",
    # Market-plane execution strategy: ledger chunk fan-out and replica
    # dispatch counts vary with chunk_bytes / jobs, never with results.
    "market.",
)


def deterministic_counters(counters: Mapping[str, float]) -> dict[str, float]:
    """The strategy-independent subset of ``counters``, sorted by name."""
    return {
        name: counters[name]
        for name in sorted(counters)
        if name.startswith(DETERMINISTIC_PREFIXES)
    }


def counter_digest(counters: Mapping[str, float]) -> str:
    """SHA-256 over the canonical JSON of the deterministic counters.

    Canonical means sorted keys and no whitespace, so the digest is
    bit-identical whenever the deterministic counter values are — the
    run-ledger's one-line answer to "same logic?".
    """
    canonical = json.dumps(
        deterministic_counters(counters), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def artifact_digest(path: str | Path) -> str:
    """SHA-256 of a written artifact file (hex)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def build_run_record(
    *,
    config_hash: str,
    seed: int,
    preset: str,
    jobs: int,
    cache: bool,
    experiments: list[str],
    counters: Mapping[str, float],
    wall_s: float,
    experiment_wall_s: Mapping[str, float] | None = None,
    artifacts: Mapping[str, str | Path] | None = None,
    version: str | None = None,
) -> dict[str, Any]:
    """Assemble one ``repro.obs.run/1`` record (pure data, JSON-ready)."""
    if version is None:
        from repro import __version__ as version
    return {
        "schema": RUN_SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config_hash": config_hash,
        "seed": seed,
        "preset": preset,
        "jobs": jobs,
        "cache": cache,
        "experiments": list(experiments),
        "version": version,
        "platform": {
            "python": platform.python_version(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
        "wall_s": round(float(wall_s), 4),
        "experiment_wall_s": {
            name: round(float(value), 4)
            for name, value in sorted((experiment_wall_s or {}).items())
        },
        "counters": deterministic_counters(counters),
        "counter_digest": counter_digest(counters),
        "artifacts": {
            name: {"path": str(path), "sha256": artifact_digest(path)}
            for name, path in sorted((artifacts or {}).items())
        },
    }


def append_run_record(path: str | Path, record: Mapping[str, Any]) -> Path:
    """Append one record to the JSONL ledger at ``path`` (created if new)."""
    if record.get("schema") != RUN_SCHEMA:
        raise ValueError(
            f"refusing to append a record with schema "
            f"{record.get('schema')!r} (expected {RUN_SCHEMA!r})"
        )
    out = Path(path)
    with open(out, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(dict(record), sort_keys=True) + "\n")
    return out


def read_ledger(path: str | Path) -> list[dict[str, Any]]:
    """All records of a JSONL ledger, oldest first, schema-validated.

    Raises :class:`ValueError` naming the file, line, and found schema
    when a line is not a ``repro.obs.run/1`` record, so a truncated or
    foreign file fails loudly instead of producing a silent bad diff.
    """
    records: list[dict[str, Any]] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
        schema = record.get("schema") if isinstance(record, dict) else None
        if schema != RUN_SCHEMA:
            raise ValueError(
                f"{path}:{lineno}: unsupported run-ledger schema {schema!r} "
                f"(expected {RUN_SCHEMA!r})"
            )
        records.append(record)
    if not records:
        raise ValueError(f"{path}: ledger contains no records")
    return records
