"""Metrics primitives: counters, gauges, histograms, and span timers.

:class:`MetricsRegistry` is the single sink every instrumented code path
records into. It is dependency-free, picklable, and designed around two
constraints of the day-parallel pipeline (:mod:`repro.core.parallel`):

* **mergeable** — metrics recorded inside pool workers ship back with
  task results and fold into the parent registry via :meth:`MetricsRegistry.merge`,
  the same reduction shape as ``StreamingAnalyzer.merge()``. Counter
  merge is addition, gauge merge is max, histogram merge is per-bucket
  addition, span merge adds calls and wall time — all commutative and
  associative, so any partition of the work merges to the one-pass
  result for deterministic counters;
* **free when off** — a disabled registry turns every record call into a
  single attribute check and :meth:`MetricsRegistry.span` into a shared
  no-op context manager, so always-on instrumentation costs nearly
  nothing unless a run opts in (``--metrics-out`` / ``--profile``).

Naming conventions (relied on by tests and the profile report):

* deterministic work counters live under the ``scenario.``,
  ``streaming.`` and ``pipeline.`` families and must be identical for
  ``jobs=1`` and ``jobs=N`` runs of the same work, cached or not (the
  day cache stores each day's ``scenario.*`` deltas and replays them on
  hits, so these counters measure logical rather than physical work);
* timing counters end in ``_s`` (seconds) and execution-strategy
  metrics live under the ``cache.`` / ``pool.`` / ``serve.`` / ``shm.``
  / ``visibility.`` / ``parallel.`` families — all of these are
  strategy- or load-dependent and excluded from determinism comparisons
  (the authoritative prefix lists are
  :data:`repro.obs.runledger.DETERMINISTIC_PREFIXES` and
  :data:`repro.obs.runledger.EXCLUDED_PREFIXES`; the hygiene test in
  ``tests/test_obs_metric_hygiene.py`` enforces that every recorded
  name belongs to exactly one of them).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.trace import TraceRecorder

__all__ = [
    "DEFAULT_BUCKETS",
    "FINE_LATENCY_BUCKETS",
    "Histogram",
    "SpanStats",
    "MetricsRegistry",
    "metrics",
    "set_metrics",
    "set_thread_metrics",
    "use_metrics",
]

#: Default fixed histogram buckets (upper bounds, in seconds when timing).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    float("inf"),
)

#: Latency buckets with sub-millisecond resolution prepended. Warm serve
#: responses sit well under 1 ms, so :data:`DEFAULT_BUCKETS` collapses
#: them all into its lowest bucket and p50/p99 become unreadable; the
#: serve latency histogram uses these instead.
FINE_LATENCY_BUCKETS: tuple[float, ...] = (0.0001, 0.00025, 0.0005) + DEFAULT_BUCKETS


@dataclass
class Histogram:
    """Fixed-bucket histogram: cumulative-free counts plus sum/count.

    ``buckets`` are upper bounds; an observation lands in the first
    bucket whose bound is >= the value (the last bound should be
    ``inf`` so nothing is dropped).
    """

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0

    def __post_init__(self) -> None:
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        if not self.counts:
            self.counts = [0] * len(self.buckets)
        elif len(self.counts) != len(self.buckets):
            raise ValueError("counts length must match buckets length")

    def observe(self, value: float) -> None:
        """Record one observation."""
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:  # above every bound: clamp into the last bucket
            self.counts[-1] += 1
        self.count += 1
        self.total += value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram with identical buckets into this one."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-stable representation (``inf`` encoded as a string)."""
        return {
            "buckets": ["inf" if b == float("inf") else b for b in self.buckets],
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


@dataclass
class SpanStats:
    """Accumulated timing of one node in the span call tree."""

    calls: int = 0
    total_s: float = 0.0

    def merge(self, other: "SpanStats") -> "SpanStats":
        """Fold another node's calls and wall time into this one."""
        self.calls += other.calls
        self.total_s += other.total_s
        return self


class _NullSpan:
    """Shared no-op context manager returned by disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: pushes its name on the registry stack while active."""

    __slots__ = ("_registry", "_name", "_path", "_start", "_trace_args")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        trace_args: dict[str, Any] | None = None,
    ) -> None:
        self._registry = registry
        self._name = name
        self._trace_args = trace_args

    def __enter__(self) -> "_Span":
        stack = self._registry._span_stack
        stack.append(self._name)
        self._path = tuple(stack)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        elapsed = time.perf_counter() - self._start
        registry = self._registry
        registry._span_stack.pop()
        node = registry.spans.get(self._path)
        if node is None:
            node = registry.spans[self._path] = SpanStats()
        node.calls += 1
        node.total_s += elapsed
        if registry.trace is not None:
            registry.trace.record(self._name, self._start, elapsed, self._trace_args)


class MetricsRegistry:
    """Process-local metrics sink with counters, gauges, histograms, spans.

    All record methods are no-ops when ``enabled`` is False. Registries
    pickle cleanly (the transient span stack is dropped), which is how
    worker processes ship their metrics back to the parent for
    :meth:`merge`.

    Attaching a :class:`~repro.obs.trace.TraceRecorder` as ``trace``
    additionally turns every completed span into one trace event
    (name, wall-clock offset, duration, pid/tid, span args); recorders
    ship back from workers and merge exactly like the metrics.
    """

    def __init__(self, enabled: bool = True, trace: TraceRecorder | None = None) -> None:
        self.enabled = enabled
        self.trace = trace
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.spans: dict[tuple[str, ...], SpanStats] = {}
        self._span_stack: list[str] = []

    # -- recording ----------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``; merged registries keep the maximum."""
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        """Record ``value`` into fixed-bucket histogram ``name``."""
        if not self.enabled:
            return
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(buckets=buckets)
        histogram.observe(value)

    def span(self, name: str, trace_args: dict[str, Any] | None = None):
        """Context-manager timer; nested spans form a call-tree profile.

        ``trace_args`` ride along on the trace event when a recorder is
        attached (e.g. the scenario day or experiment id); they never
        affect the aggregated span statistics.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, trace_args)

    # -- merge protocol -----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (commutative, associative).

        Counters and span calls/time add, gauges take the max, histogram
        buckets add. Merging ignores either side's ``enabled`` flag: the
        data already exists.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            if current is None or value > current:
                self.gauges[name] = value
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram(
                    buckets=histogram.buckets,
                    counts=list(histogram.counts),
                    count=histogram.count,
                    total=histogram.total,
                )
            else:
                mine.merge(histogram)
        for path, node in other.spans.items():
            mine_node = self.spans.get(path)
            if mine_node is None:
                self.spans[path] = SpanStats(calls=node.calls, total_s=node.total_s)
            else:
                mine_node.merge(node)
        if other.trace is not None and (other.trace.events or other.trace.dropped):
            if self.trace is None:
                self.trace = TraceRecorder(max_events=other.trace.max_events)
            self.trace.merge(other.trace)
        return self

    # -- inspection / export ------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def clear(self) -> None:
        """Drop all recorded data (the enabled flag is unchanged)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()
        self._span_stack.clear()
        if self.trace is not None:
            self.trace.events.clear()
            self.trace.dropped = 0

    def to_dict(self) -> dict[str, Any]:
        """Stable, JSON-serializable schema of everything recorded.

        Keys are sorted and span paths joined with ``/`` so two equal
        registries serialize identically (the basis of the merge-law
        property tests and the ``--metrics-out`` file format).
        """
        return {
            "schema": "repro.obs.metrics/1",
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
            "spans": [
                {
                    "stage": "/".join(path),
                    "depth": len(path) - 1,
                    "calls": node.calls,
                    "total_s": node.total_s,
                }
                for path, node in sorted(self.spans.items())
            ],
        }

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["_span_stack"] = []  # transient; never ship open spans
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(enabled={self.enabled}, "
            f"{len(self.counters)} counters, {len(self.spans)} spans)"
        )


#: The active registry. Disabled by default so library code can record
#: unconditionally; runs opt in by installing an enabled registry.
_ACTIVE = MetricsRegistry(enabled=False)

#: Per-thread registry override, installed by the thread-pool executor so
#: concurrent day tasks record into isolated registries (the process
#: global is shared by all threads and would interleave their counters).
_THREAD_LOCAL = threading.local()


def metrics() -> MetricsRegistry:
    """The active registry: the thread's override, else the process one.

    The override only exists inside thread-pool worker tasks (see
    :func:`set_thread_metrics`); every other caller gets the process-wide
    registry, disabled by default.
    """
    override = getattr(_THREAD_LOCAL, "registry", None)
    return _ACTIVE if override is None else override


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active sink; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def set_thread_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install a registry for the *calling thread only*; returns the previous.

    Pass ``None`` to clear the override. Thread-pool day tasks wrap each
    item in install/restore so their ``scenario.*`` deltas ship back
    per item, exactly like process workers do with :func:`set_metrics`
    (which is process-global and single-threaded in a pool worker).
    """
    previous = getattr(_THREAD_LOCAL, "registry", None)
    _THREAD_LOCAL.registry = registry
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the active sink for a ``with`` block."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
