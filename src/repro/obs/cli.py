"""``repro-obs``: offline inspection, drift diffing, and live dashboard.

Three subcommands over the observability artifacts and endpoints:

* ``repro-obs show EXPORT`` — re-render the per-experiment and run-total
  profile tables from a ``--metrics-out`` JSON export, offline;
* ``repro-obs top URL`` — poll a serving observatory's ``/v1/metrics``
  exposition and render a live terminal dashboard (RPS, cache-tier hit
  rates, latency quantiles, pool utilization, rate-limit drops);
* ``repro-obs diff A B`` — compare two runs (metrics exports or run-ledger
  JSONL files, freely mixed) and classify the drift:

  - deterministic ``scenario.*``/``streaming.*``/``pipeline.*`` counters
    differ → **logic change**, exit code 2;
  - counters identical but wall time moved beyond ``--time-threshold``
    (relative, default 25%) → **perf regression**, exit code 3;
  - otherwise clean, exit code 0.

  ``--logic-only`` skips the timing comparison — required when the two
  runs come from different machines (e.g. a committed CI baseline),
  where absolute wall time is meaningless.

Exit code 1 reports unreadable/invalid input files.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.expo import MetricFamily, histogram_quantile, parse_exposition
from repro.obs.profile import EXPORT_SCHEMA, load_export, registry_from_dict, render_profile
from repro.obs.runledger import (
    RUN_SCHEMA,
    counter_digest,
    deterministic_counters,
    read_ledger,
)

__all__ = ["main", "load_run_snapshot", "render_top", "RunSnapshot"]

# Explicit name: __name__ is "__main__" under ``python -m``, which would
# fall outside the "repro" hierarchy configure_cli_logging sets up.
_log = logging.getLogger("repro.obs.cli")

#: ``repro-obs diff`` exit codes, by classification.
EXIT_CLEAN = 0
EXIT_ERROR = 1
EXIT_LOGIC_DRIFT = 2
EXIT_PERF_REGRESSION = 3


@dataclass
class RunSnapshot:
    """One run, normalized for diffing from either artifact format."""

    label: str
    kind: str  # "export" | "ledger"
    counters: dict[str, float]
    wall_s: float | None = None
    experiment_wall_s: dict[str, float] = field(default_factory=dict)

    @property
    def digest(self) -> str:
        return counter_digest(self.counters)


def load_run_snapshot(path: str | Path, index: int = -1) -> RunSnapshot:
    """Load a metrics export or run-ledger file as a :class:`RunSnapshot`.

    The format is detected from the file's ``schema`` field; for JSONL
    ledgers, ``index`` selects the record (default: the newest).
    """
    source = Path(path)
    try:
        payload = json.loads(source.read_text())
    except json.JSONDecodeError:
        payload = None  # multi-line JSONL ledger; handled below
    except OSError as exc:
        raise ValueError(f"cannot read {source}: {exc}") from None

    if isinstance(payload, dict) and payload.get("schema") == EXPORT_SCHEMA:
        export = load_export(source)
        run = export.get("run", {})
        wall = run.get("wall_s")
        return RunSnapshot(
            label=str(source),
            kind="export",
            counters=deterministic_counters(export["total"].get("counters", {})),
            wall_s=float(wall) if wall is not None else None,
        )
    if payload is None or (isinstance(payload, dict) and payload.get("schema") == RUN_SCHEMA):
        records = read_ledger(source)
        try:
            record = records[index]
        except IndexError:
            raise ValueError(
                f"{source}: ledger has {len(records)} record(s); index {index} "
                f"is out of range"
            ) from None
        return RunSnapshot(
            label=f"{source}[{index if index >= 0 else len(records) + index}]",
            kind="ledger",
            counters=deterministic_counters(record.get("counters", {})),
            wall_s=record.get("wall_s"),
            experiment_wall_s=dict(record.get("experiment_wall_s", {})),
        )
    schema = payload.get("schema") if isinstance(payload, dict) else None
    raise ValueError(
        f"{source}: unrecognized schema {schema!r} (expected {EXPORT_SCHEMA!r} "
        f"or {RUN_SCHEMA!r})"
    )


def _diff_counters(a: RunSnapshot, b: RunSnapshot) -> list[str]:
    """Human-readable lines for every deterministic counter mismatch."""
    lines = []
    for name in sorted(set(a.counters) | set(b.counters)):
        left, right = a.counters.get(name), b.counters.get(name)
        if left != right:
            fmt = lambda v: "(absent)" if v is None else f"{v:g}"
            lines.append(f"  {name}: {fmt(left)} -> {fmt(right)}")
    return lines


def _diff(args: argparse.Namespace) -> int:
    a = load_run_snapshot(args.a, index=args.index_a)
    b = load_run_snapshot(args.b, index=args.index_b)

    if a.digest != b.digest:
        print(f"LOGIC DRIFT between {a.label} and {b.label}")
        print(f"  counter digest {a.digest[:16]}... -> {b.digest[:16]}...")
        for line in _diff_counters(a, b):
            print(line)
        print(
            "deterministic counters are strategy-independent: this difference "
            "comes from a code or config change, not from --jobs/--cache/timing."
        )
        return EXIT_LOGIC_DRIFT

    print(f"deterministic counters identical ({len(a.counters)} counters, "
          f"digest {a.digest[:16]}...)")

    if args.logic_only:
        print("timing comparison skipped (--logic-only)")
        return EXIT_CLEAN
    if a.wall_s is None or b.wall_s is None:
        missing = a.label if a.wall_s is None else b.label
        print(f"timing comparison skipped: no wall_s recorded in {missing}")
        return EXIT_CLEAN
    if a.wall_s <= 0:
        print(f"timing comparison skipped: non-positive baseline wall time in {a.label}")
        return EXIT_CLEAN

    relative = (b.wall_s - a.wall_s) / a.wall_s
    print(f"wall time {a.wall_s:.2f}s -> {b.wall_s:.2f}s ({relative:+.1%}, "
          f"threshold ±{args.time_threshold:.0%})")
    shared = set(a.experiment_wall_s) & set(b.experiment_wall_s)
    for name in sorted(shared):
        left, right = a.experiment_wall_s[name], b.experiment_wall_s[name]
        delta = (right - left) / left if left > 0 else float("inf")
        print(f"  {name}: {left:.2f}s -> {right:.2f}s ({delta:+.1%})")
    if abs(relative) > args.time_threshold:
        direction = "PERF REGRESSION" if relative > 0 else "PERF SHIFT (faster)"
        print(f"{direction}: same logic, wall time moved {relative:+.1%} "
              f"(beyond ±{args.time_threshold:.0%})")
        return EXIT_PERF_REGRESSION
    print("clean: same logic, timing within threshold")
    return EXIT_CLEAN


def _show(args: argparse.Namespace) -> int:
    export = load_export(args.export)
    run = export.get("run", {})
    if run:
        pairs = ", ".join(f"{k}={run[k]}" for k in sorted(run))
        print(f"run: {pairs}")
        print()
    for experiment_id, payload in sorted(export.get("experiments", {}).items()):
        print(render_profile(registry_from_dict(payload), title=f"--- {experiment_id} profile ---"))
        print()
    print(render_profile(registry_from_dict(export["total"]), title="=== run profile (all experiments) ==="))
    return EXIT_CLEAN


# -- live dashboard (`repro-obs top`) ------------------------------------------

#: ANSI: home the cursor and clear the screen (the classic `top` refresh).
_ANSI_CLEAR = "\x1b[H\x1b[2J"
_BOLD = "\x1b[1m"
_RESET = "\x1b[0m"


@dataclass
class _TopSample:
    """One scrape of the exposition endpoint, timestamped locally."""

    at: float
    families: dict[str, MetricFamily]

    def scalar(self, family: str, default: float = 0.0) -> float:
        fam = self.families.get(family)
        if fam is None:
            return default
        value = fam.value()
        return default if value is None else value

    def latency_buckets(self) -> list[tuple[float, float]]:
        """Cumulative ``(le, count)`` buckets of the serve latency histogram."""
        fam = self.families.get("serve_latency_s")
        if fam is None or fam.type != "histogram":
            return []
        buckets = [
            (float("inf") if s.label("le") in ("+Inf", "inf") else float(s.label("le")), s.value)
            for s in fam.samples
            if s.name == "serve_latency_s_bucket" and s.label("le") is not None
        ]
        return sorted(buckets, key=lambda pair: pair[0])


def _fetch_sample(url: str, timeout: float) -> _TopSample:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        text = response.read().decode("utf-8")
    return _TopSample(at=time.monotonic(), families=parse_exposition(text))


def _delta_buckets(
    curr: list[tuple[float, float]], prev: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Cumulative buckets of only the interval between two scrapes."""
    if not prev or len(prev) != len(curr):
        return curr
    return [(le, count - old) for (le, count), (_, old) in zip(curr, prev)]


def _fmt_ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.2f}ms"


def _fmt_rate(numerator: float, denominator: float) -> str:
    return "-" if denominator <= 0 else f"{numerator / denominator:.1%}"


def render_top(prev: _TopSample | None, curr: _TopSample, url: str) -> str:
    """One dashboard frame from the current (and previous) scrape.

    Pure text in, text out — the poll loop owns the terminal control —
    so tests can assert on frames without a live screen.
    """
    dt = (curr.at - prev.at) if prev is not None else 0.0
    requests = curr.scalar("serve_requests_total")
    delta_requests = requests - (prev.scalar("serve_requests_total") if prev else 0.0)
    if prev is not None and dt > 0:
        rps = delta_requests / dt
    else:
        rps = curr.scalar("serve_window_rps_1m")

    buckets = curr.latency_buckets()
    window = _delta_buckets(buckets, prev.latency_buckets() if prev else [])
    if not window or window[-1][1] <= 0:
        window = buckets  # quiet interval: fall back to since-boot shape
    p50 = histogram_quantile(window, 0.50)
    p99 = histogram_quantile(window, 0.99)

    tiers = {
        tier: curr.scalar(f"serve_cache_tier_{tier}_total")
        for tier in ("mem", "disk", "compute")
    }
    total_tiers = sum(tiers.values())
    hits = curr.scalar("serve_singleflight_hits_total")
    leaders = curr.scalar("serve_singleflight_leaders_total")
    busy = curr.scalar("pool_busy_s_total")
    capacity = curr.scalar("pool_capacity_s_total")

    lines = [
        f"{_BOLD}repro observatory{_RESET}  {url}",
        f"uptime {curr.scalar('serve_uptime_s'):.0f}s"
        f"  active connections {curr.scalar('serve_active_connections'):.0f}"
        f"  interval {dt:.1f}s",
        "",
        f"{_BOLD}traffic{_RESET}"
        f"  requests {requests:.0f} (+{delta_requests:.0f})"
        f"  rps {rps:.1f}"
        f"  errors {curr.scalar('serve_errors_total'):.0f}"
        f"  rate-limited {curr.scalar('serve_rate_limited_total'):.0f}"
        f"  sse events {curr.scalar('serve_sse_events_total'):.0f}",
        f"{_BOLD}latency{_RESET}  p50 {_fmt_ms(p50)}  p99 {_fmt_ms(p99)}",
        f"{_BOLD}cache tiers{_RESET}"
        f"  mem {_fmt_rate(tiers['mem'], total_tiers)}"
        f"  disk {_fmt_rate(tiers['disk'], total_tiers)}"
        f"  compute {_fmt_rate(tiers['compute'], total_tiers)}"
        f"  ({total_tiers:.0f} resolved)",
        f"{_BOLD}dedup{_RESET}"
        f"  singleflight hits {hits:.0f} / leaders {leaders:.0f}"
        f"  coalesced {_fmt_rate(hits, hits + leaders)}",
        f"{_BOLD}pool{_RESET}"
        f"  workers {curr.scalar('pool_workers'):.0f}"
        f"  utilization {_fmt_rate(busy, capacity)}"
        f"  busy {busy:.2f}s / capacity {capacity:.2f}s",
    ]
    slo_burn = curr.scalar("serve_window_slo_burn_1m", default=-1.0)
    if slo_burn >= 0:
        lines.append(
            f"{_BOLD}slo{_RESET}"
            f"  1m burn {slo_burn:.2f}"
            f"  error rate {curr.scalar('serve_window_error_rate_1m'):.4f}"
        )
    return "\n".join(lines)


def _top(args: argparse.Namespace) -> int:
    url = args.url.rstrip("/")
    if not url.endswith("/v1/metrics"):
        url = f"{url}/v1/metrics"
    prev: _TopSample | None = None
    iteration = 0
    try:
        while True:
            try:
                curr = _fetch_sample(url, timeout=args.timeout)
            except (urllib.error.URLError, OSError, ValueError) as exc:
                _log.error("cannot scrape %s: %s", url, exc)
                return EXIT_ERROR
            frame = render_top(prev, curr, url)
            if not args.no_clear:
                sys.stdout.write(_ANSI_CLEAR)
            print(frame, flush=True)
            prev = curr
            iteration += 1
            if args.iterations and iteration >= args.iterations:
                return EXIT_CLEAN
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return EXIT_CLEAN


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect and diff recorded runs (metrics exports / run ledgers).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser(
        "diff",
        help="classify drift between two runs (exit 0 clean / 2 logic / 3 perf)",
    )
    diff.add_argument("a", help="baseline: metrics export JSON or run-ledger JSONL")
    diff.add_argument("b", help="candidate: metrics export JSON or run-ledger JSONL")
    diff.add_argument(
        "--time-threshold",
        type=float,
        default=0.25,
        help="relative wall-time change tolerated before flagging a perf "
        "regression (default 0.25 = 25%%)",
    )
    diff.add_argument(
        "--logic-only",
        action="store_true",
        help="compare deterministic counters only (use across machines, "
        "e.g. against a committed CI baseline)",
    )
    diff.add_argument(
        "--index-a", type=int, default=-1,
        help="ledger record index for A (default -1 = newest)",
    )
    diff.add_argument(
        "--index-b", type=int, default=-1,
        help="ledger record index for B (default -1 = newest)",
    )
    diff.set_defaults(func=_diff)

    show = sub.add_parser(
        "show", help="re-render the profile tables of a --metrics-out export"
    )
    show.add_argument("export", help="metrics export JSON (repro.obs.export/1)")
    show.set_defaults(func=_show)

    top = sub.add_parser(
        "top", help="live terminal dashboard over a server's /v1/metrics"
    )
    top.add_argument(
        "url",
        help="server base URL (e.g. http://127.0.0.1:8321) or the full "
        "/v1/metrics endpoint",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between scrapes (default 2)",
    )
    top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N frames (default 0 = run until interrupted)",
    )
    top.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-scrape HTTP timeout (default 5)",
    )
    top.add_argument(
        "--no-clear", dest="no_clear", action="store_true",
        help="append frames instead of clearing the screen (logs, tests)",
    )
    top.set_defaults(func=_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the classification exit code."""
    args = _parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        _log.error("%s", exc)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
