"""Amplification honeypots (AmpPot-style).

The paper's related work leans on amplification honeypots: AmpPot
(Kraemer et al., RAID 2015) monitors attacks by answering amplification
probes slowly, and Krupp et al. (RAID 2017) attribute attacks to booters
from which honeypots each attack hits. This package simulates such a
deployment inside the reflector pool: honeypot addresses get adopted
into booters' working sets like any other reflector, observe the spoofed
trigger streams, and report attack sightings — enabling coverage and
attribution studies against simulation ground truth.
"""

from repro.honeypot.amppot import (
    HoneypotDeployment,
    HoneypotObservation,
    coverage_curve,
)

__all__ = ["HoneypotDeployment", "HoneypotObservation", "coverage_curve"]
