"""AmpPot-style honeypot deployment and attack observation.

A deployment converts a random subset of the reflector pool into
honeypots. Booters discover reflectors by scanning the pool, so honeypot
addresses end up in working sets with probability proportional to the
deployment size — and every attack whose reflector set contains a
honeypot is *observed*: the honeypot receives the spoofed triggers, i.e.
it learns the victim (the spoofed source), the start time, the vector,
and the per-honeypot request rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.booter.attack import AttackEvent
from repro.booter.reflectors import ReflectorPool
from repro.protocols.amplification import vector_by_name
from repro.stats.rng import SeedSequenceTree

__all__ = ["HoneypotObservation", "HoneypotDeployment", "coverage_curve"]


@dataclass(frozen=True)
class HoneypotObservation:
    """One attack as seen by the deployment."""

    victim_ip: int
    vector: str
    start_time: float
    duration_s: float
    honeypots_hit: int
    observed_request_pps: float

    def __post_init__(self) -> None:
        if self.honeypots_hit <= 0:
            raise ValueError("an observation implies at least one honeypot hit")


class HoneypotDeployment:
    """A set of honeypot addresses inside a reflector pool."""

    def __init__(
        self,
        pool: ReflectorPool,
        n_honeypots: int,
        seeds: SeedSequenceTree,
    ) -> None:
        if not 0 < n_honeypots <= len(pool):
            raise ValueError(
                f"n_honeypots must be in [1, {len(pool)}], got {n_honeypots}"
            )
        self.pool = pool
        rng = seeds.child("honeypots", pool.protocol).rng()
        idx = np.sort(rng.choice(len(pool), size=n_honeypots, replace=False))
        self.indices = idx
        self.ips = pool.ips[idx]
        self._ip_set = np.sort(self.ips)

    @property
    def n_honeypots(self) -> int:
        return int(self.ips.size)

    def observes(self, event: AttackEvent) -> bool:
        """Whether any honeypot sits in the attack's reflector set."""
        return bool(
            np.intersect1d(
                np.unique(event.reflector_ips), self._ip_set, assume_unique=True
            ).size
        )

    def observe(self, event: AttackEvent) -> HoneypotObservation | None:
        """The deployment's view of ``event`` (None if no honeypot hit).

        The observed request rate is the trigger rate directed at the hit
        honeypots (their share of the event's reflector weights), which
        is what a real AmpPot logs.
        """
        observed_ips = np.intersect1d(
            np.unique(event.reflector_ips), self._ip_set, assume_unique=True
        )
        if observed_ips.size == 0:
            return None
        vector = vector_by_name(event.vector)
        hit_mask = np.isin(event.reflector_ips, observed_ips)
        weight_share = float(event.reflector_weights[hit_mask].sum())
        request_pps = (
            event.total_pps / vector.response_packets_per_request
        ) * weight_share
        return HoneypotObservation(
            victim_ip=event.victim_ip,
            vector=event.vector,
            start_time=event.start_time,
            duration_s=event.duration_s,
            honeypots_hit=int(observed_ips.size),
            observed_request_pps=request_pps,
        )

    def observe_all(self, events: list[AttackEvent]) -> list[HoneypotObservation]:
        """Observations for every observed event, in event order."""
        out = []
        for event in events:
            obs = self.observe(event)
            if obs is not None:
                out.append(obs)
        return out

    def coverage(self, events: list[AttackEvent]) -> float:
        """Fraction of ``events`` the deployment observes."""
        if not events:
            raise ValueError("need at least one event")
        return sum(self.observes(e) for e in events) / len(events)

    def expected_coverage(self, working_set_size: int) -> float:
        """Analytic coverage for attacks using ``working_set_size``
        reflectors drawn uniformly from the pool:
        ``1 - C(P-H, s) / C(P, s)`` (hypergeometric miss probability)."""
        if working_set_size <= 0:
            raise ValueError("working_set_size must be positive")
        pool_size = len(self.pool)
        h = self.n_honeypots
        if working_set_size > pool_size - h:
            return 1.0
        # Product form of the hypergeometric zero-hit probability.
        miss = 1.0
        for i in range(working_set_size):
            miss *= (pool_size - h - i) / (pool_size - i)
        return 1.0 - miss


def coverage_curve(
    pool: ReflectorPool,
    events: list[AttackEvent],
    deployment_sizes: list[int],
    seeds: SeedSequenceTree,
) -> dict[int, float]:
    """Measured coverage per deployment size over the same event stream."""
    if not deployment_sizes:
        raise ValueError("need at least one deployment size")
    return {
        size: HoneypotDeployment(pool, size, seeds.child("curve", size)).coverage(events)
        for size in deployment_sizes
    }
