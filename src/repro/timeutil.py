"""Calendar helpers tying simulation day indices to real dates.

The paper anchors everything to calendar dates (the takedown on
2018-12-19, capture windows per vantage point, monthly Alexa medians).
Simulations run on integer day indices; these helpers convert between the
two against explicit epochs.
"""

from __future__ import annotations

import datetime as _dt

__all__ = [
    "TRAFFIC_EPOCH",
    "DOMAIN_EPOCH",
    "TAKEDOWN_DATE",
    "parse_date",
    "day_index",
    "date_of",
    "month_key",
    "iter_months",
]

#: First day of the takedown traffic study (Section 5.2's 122-day series).
TRAFFIC_EPOCH = _dt.date(2018, 9, 30)

#: First month of the Alexa/domain observatory (Figure 3 starts 2016-08).
DOMAIN_EPOCH = _dt.date(2016, 8, 1)

#: The FBI seizure of the 15 booter domains.
TAKEDOWN_DATE = _dt.date(2018, 12, 19)


def parse_date(text: str) -> _dt.date:
    """Parse ``YYYY-MM-DD``."""
    return _dt.date.fromisoformat(text)


def day_index(date: _dt.date, epoch: _dt.date = TRAFFIC_EPOCH) -> int:
    """Days elapsed from ``epoch`` to ``date`` (negative if before)."""
    return (date - epoch).days


def date_of(day: int, epoch: _dt.date = TRAFFIC_EPOCH) -> _dt.date:
    """The calendar date of simulation day ``day``."""
    return epoch + _dt.timedelta(days=day)


def month_key(date: _dt.date) -> str:
    """``YYYY-MM`` bucket of a date."""
    return f"{date.year:04d}-{date.month:02d}"


def iter_months(start: _dt.date, end: _dt.date) -> list[str]:
    """All ``YYYY-MM`` keys from ``start``'s month through ``end``'s month."""
    if end < start:
        raise ValueError("end month precedes start month")
    months = []
    year, month = start.year, start.month
    while (year, month) <= (end.year, end.month):
        months.append(f"{year:04d}-{month:02d}")
        month += 1
        if month == 13:
            month = 1
            year += 1
    return months
