"""Attack events and their expansion into flow records.

An :class:`AttackEvent` is the *intent* of one booter attack: victim,
vector, rate, reflector set, weights. Two synthesizers expand an event
into traffic:

* :func:`synthesize_attack_flows` — the amplified reflector -> victim
  response flood (what hits the victim and what Figures 1, 2 and 5
  measure);
* :func:`synthesize_trigger_flows` — the spoofed victim -> reflector
  request stream that triggers the amplification (part of what Figure 4's
  "packets to reflectors" time series measure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.builder import FlowTableBuilder
from repro.flows.records import FlowTable
from repro.protocols.amplification import UDP, vector_by_name

__all__ = ["AttackEvent", "synthesize_attack_flows", "synthesize_trigger_flows"]


@dataclass(frozen=True)
class AttackEvent:
    """One booter attack, fully specified."""

    booter: str
    vector: str
    plan: str
    victim_ip: int
    victim_asn: int
    start_time: float
    duration_s: float
    total_pps: float
    reflector_ips: np.ndarray
    reflector_asns: np.ndarray
    reflector_weights: np.ndarray

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.total_pps <= 0:
            raise ValueError("packet rate must be positive")
        n = self.reflector_ips.size
        if self.reflector_asns.size != n or self.reflector_weights.size != n:
            raise ValueError("reflector arrays must align")
        if n == 0:
            raise ValueError("an attack needs at least one reflector")
        if not np.isclose(self.reflector_weights.sum(), 1.0, atol=1e-6):
            raise ValueError("reflector weights must sum to 1")

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration_s

    @property
    def n_reflectors(self) -> int:
        return int(self.reflector_ips.size)

    def expected_gbps(self) -> float:
        """Analytic victim-side traffic rate."""
        vector = vector_by_name(self.vector)
        return self.total_pps * vector.mean_response_size * 8 / 1e9


def _active_bins(
    event: AttackEvent, bin_seconds: float
) -> tuple[np.ndarray, np.ndarray]:
    """(bin start times, seconds of attack activity within each bin)."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    first = np.floor(event.start_time / bin_seconds) * bin_seconds
    starts = np.arange(first, event.end_time, bin_seconds)
    overlap = np.minimum(starts + bin_seconds, event.end_time) - np.maximum(
        starts, event.start_time
    )
    active = overlap > 0
    return starts[active], overlap[active]


def synthesize_attack_flows(
    event: AttackEvent,
    rng: np.random.Generator,
    bin_seconds: float = 60.0,
    rate_jitter: float = 0.1,
    bin_jitter: float = 0.0,
    out: FlowTableBuilder | None = None,
) -> FlowTable:
    """Expand ``event`` into reflector -> victim response flows.

    One flow is emitted per (reflector, time bin). Packet counts follow the
    event's per-reflector weights with multiplicative lognormal jitter of
    ``rate_jitter`` sigma per (reflector, bin); ``bin_jitter`` adds a
    lognormal factor *shared by all reflectors within a bin*, modelling
    attack-wide rate swings (booter backends do not hold perfectly steady
    rates — the per-second wiggle of Figure 1). Packet sizes use the
    vector's response-size distribution.

    With ``out`` set, the flows are appended to that builder instead of
    materializing a per-event table (the day pipeline's fast path) and an
    empty table is returned; the RNG consumption is identical either way.
    """
    if not 0.0 <= rate_jitter < 1.0:
        raise ValueError("rate_jitter must be in [0, 1)")
    if not 0.0 <= bin_jitter < 1.0:
        raise ValueError("bin_jitter must be in [0, 1)")
    vector = vector_by_name(event.vector)
    bin_starts, active_secs = _active_bins(event, bin_seconds)
    n_bins = bin_starts.size
    n_refl = event.n_reflectors

    base = np.outer(active_secs * event.total_pps, event.reflector_weights)
    if bin_jitter > 0:
        base = base * rng.lognormal(0.0, bin_jitter, size=(n_bins, 1))
    if rate_jitter > 0:
        base = base * rng.lognormal(0.0, rate_jitter, size=base.shape)
    packets = np.maximum(np.round(base), 0).astype(np.int64)
    mask = packets > 0
    if not mask.any():
        return FlowTable.empty()

    bin_idx, refl_idx = np.nonzero(mask)
    flow_packets = packets[bin_idx, refl_idx]
    # Mean response size with slight per-flow variation from the size dist.
    sizes = vector.sample_response_sizes(rng, flow_packets.size)
    flow_bytes = np.round(flow_packets * sizes).astype(np.int64)
    n_flows = flow_packets.size

    columns = {
        "time": bin_starts[bin_idx],
        "src_ip": event.reflector_ips[refl_idx],
        "dst_ip": np.full(n_flows, event.victim_ip, dtype=np.uint32),
        "proto": np.full(n_flows, UDP, dtype=np.uint8),
        "src_port": np.full(n_flows, vector.port, dtype=np.uint16),
        "dst_port": rng.integers(1024, 65535, n_flows).astype(np.uint16),
        "packets": flow_packets,
        "bytes": flow_bytes,
        "src_asn": event.reflector_asns[refl_idx],
        "dst_asn": np.full(n_flows, event.victim_asn, dtype=np.int64),
    }
    if out is not None:
        out.add_block(columns)
        return FlowTable.empty()
    return FlowTable(columns)


def synthesize_trigger_flows(
    event: AttackEvent,
    rng: np.random.Generator,
    bin_seconds: float = 60.0,
    origin_asn: int = -1,
    out: FlowTableBuilder | None = None,
) -> FlowTable:
    """Expand ``event`` into spoofed victim -> reflector trigger flows.

    The booter backend sends ``total_pps / PAF`` spoofed requests per
    second, spread over the reflectors proportionally to their weights
    (reflectors asked to carry more traffic receive more triggers).
    Source addresses are the spoofed victim — resolving ``src_ip``
    attributes the packets to the victim's network, which is why the paper
    cannot attribute trigger traffic. ``src_asn`` however carries the
    *true* routing origin (``origin_asn``, the booter backend's AS):
    vantage-point visibility is a property of where packets physically
    travel, not of the forged header. With ``out`` set, flows append to
    that builder (see :func:`synthesize_attack_flows`).
    """
    vector = vector_by_name(event.vector)
    request_pps = event.total_pps / vector.response_packets_per_request
    bin_starts, active_secs = _active_bins(event, bin_seconds)

    base = np.outer(active_secs * request_pps, event.reflector_weights)
    packets = rng.poisson(base)
    mask = packets > 0
    if not mask.any():
        return FlowTable.empty()

    bin_idx, refl_idx = np.nonzero(mask)
    flow_packets = packets[bin_idx, refl_idx].astype(np.int64)
    flow_bytes = np.round(flow_packets * vector.request_size).astype(np.int64)
    n_flows = flow_packets.size

    columns = {
        "time": bin_starts[bin_idx],
        "src_ip": np.full(n_flows, event.victim_ip, dtype=np.uint32),
        "dst_ip": event.reflector_ips[refl_idx],
        "proto": np.full(n_flows, UDP, dtype=np.uint8),
        "src_port": rng.integers(1024, 65535, n_flows).astype(np.uint16),
        "dst_port": np.full(n_flows, vector.port, dtype=np.uint16),
        "packets": flow_packets,
        "bytes": flow_bytes,
        "src_asn": np.full(n_flows, origin_asn, dtype=np.int64),
        "dst_asn": event.reflector_asns[refl_idx],
    }
    if out is not None:
        out.add_block(columns)
        return FlowTable.empty()
    return FlowTable(columns)
