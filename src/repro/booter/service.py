"""Booter services and their attack plans.

A :class:`BooterService` ties together a catalogue entry (Table 1), the
service's reflector-set processes per protocol, its plans (non-VIP/VIP),
its share of market demand, and its *backend activity*: the scanning and
verification traffic a booter's infrastructure continuously directs at
reflector ports to keep its amplifier lists fresh. Backend activity is
what vanishes instantly when the FBI seizes the service; attack demand
merely migrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.booter.attack import AttackEvent
from repro.booter.catalog import BooterCatalogEntry
from repro.booter.reflectors import ReflectorSetProcess
from repro.protocols.amplification import vector_by_name
from repro.stats.rng import SeedSequenceTree

__all__ = ["ServicePlan", "BooterService"]


@dataclass(frozen=True)
class ServicePlan:
    """One purchasable tier of a booter.

    Attributes:
        name: plan label ("non-vip" / "vip").
        price_usd: price of the plan.
        total_packet_rate_pps: total attack packet rate the backend drives
            across the (shared) reflector set. The paper measured 2.2M pps
            for booter B's non-VIP tier vs 5.3M pps for VIP — same
            reflectors, higher rate.
        max_duration_s: maximum attack duration the plan allows.
    """

    name: str
    price_usd: float
    total_packet_rate_pps: float
    max_duration_s: float = 300.0

    def __post_init__(self) -> None:
        if self.price_usd < 0:
            raise ValueError("price cannot be negative")
        if self.total_packet_rate_pps <= 0:
            raise ValueError("packet rate must be positive")
        if self.max_duration_s <= 0:
            raise ValueError("max duration must be positive")


@dataclass
class BooterService:
    """One DDoS-as-a-service operation.

    Attributes:
        catalog: the Table 1 entry (name, seized flag, protocols, prices).
        plans: plan name -> :class:`ServicePlan`.
        reflector_sets: protocol name -> reflector-set process.
        popularity: relative market share of attack demand.
        backend_asn: AS hosting the booter's backend (scan origin).
        backend_ip: a representative backend address.
        scan_pps_per_protocol: packets/second of list-maintenance scanning
            the backend sends to each offered protocol's port while alive.
    """

    catalog: BooterCatalogEntry
    plans: dict[str, ServicePlan]
    reflector_sets: dict[str, ReflectorSetProcess]
    popularity: float
    backend_asn: int
    backend_ip: int
    scan_pps_per_protocol: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.popularity < 0:
            raise ValueError("popularity cannot be negative")
        if not self.plans:
            raise ValueError("a booter needs at least one plan")
        for protocol in self.reflector_sets:
            if not self.catalog.offers(protocol):
                raise ValueError(
                    f"booter {self.catalog.name} has reflectors for unoffered {protocol!r}"
                )
        for protocol in self.scan_pps_per_protocol:
            if not self.catalog.offers(protocol):
                raise ValueError(
                    f"booter {self.catalog.name} scans unoffered {protocol!r}"
                )

    @property
    def name(self) -> str:
        return self.catalog.name

    def plan(self, plan_name: str) -> ServicePlan:
        try:
            return self.plans[plan_name]
        except KeyError:
            raise KeyError(
                f"booter {self.name} has no plan {plan_name!r} "
                f"(has: {sorted(self.plans)})"
            ) from None

    def launch_attack(
        self,
        victim_ip: int,
        victim_asn: int,
        vector_name: str,
        start_time: float,
        duration_s: float,
        plan_name: str,
        day: int,
        seeds: SeedSequenceTree,
        rate_multiplier: float = 1.0,
    ) -> AttackEvent:
        """Create an :class:`AttackEvent` against ``victim_ip``.

        ``day`` indexes the reflector-set process (which working set is in
        use); ``seeds`` scopes the per-attack randomness (reflector load
        weights) so identical launch parameters give identical events.
        ``rate_multiplier`` scales the plan's packet rate — weaker vectors
        (DNS, SSDP) cannot be driven at NTP rates, which is why the paper
        finds NTP attacks the most potent booter product.
        """
        if rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        vector = vector_by_name(vector_name)
        if not self.catalog.offers(vector_name):
            raise ValueError(f"booter {self.name} does not offer {vector_name!r}")
        plan = self.plan(plan_name)
        duration_s = min(duration_s, plan.max_duration_s)
        process = self.reflector_sets[vector_name]
        reflector_ips = process.ips_for_day(day)
        reflector_asns = process.asns_for_day(day)
        # Reflectors contribute very unevenly (Fig. 1b: one AS carried
        # 45.55% of the peering traffic of a VIP NTP attack). Lognormal
        # weights reproduce that skew.
        rng = seeds.child("attack-weights", self.name, vector_name, int(start_time)).rng()
        raw = rng.lognormal(mean=0.0, sigma=1.2, size=reflector_ips.size)
        weights = raw / raw.sum()
        return AttackEvent(
            booter=self.name,
            vector=vector_name,
            plan=plan_name,
            victim_ip=int(victim_ip),
            victim_asn=int(victim_asn),
            start_time=float(start_time),
            duration_s=float(duration_s),
            total_pps=plan.total_packet_rate_pps * rate_multiplier,
            reflector_ips=reflector_ips,
            reflector_asns=reflector_asns,
            reflector_weights=weights,
        )

    def expected_attack_gbps(self, vector_name: str, plan_name: str) -> float:
        """Analytic victim-side rate of an attack: pps x mean response size."""
        vector = vector_by_name(vector_name)
        plan = self.plan(plan_name)
        return plan.total_packet_rate_pps * vector.mean_response_size * 8 / 1e9
