"""The FBI takedown scenario.

On 2018-12-19 the FBI seized the domains of 15 booter websites. This
module models what that seizure does — and does not do — to the market:

* **Backend activity stops.** A seized service's infrastructure stops
  scanning and verifying reflectors immediately (the domain seizure came
  with charges against operators; backends went dark). This is the
  component behind Figure 4's significant drops in traffic *to*
  reflectors.
* **Demand migrates.** Customers of seized services buy from surviving
  booters within days; a small fraction of demand is lost for good. The
  number of attacks and the victim-side traffic therefore barely move —
  Figure 5's null result.
* **Re-emergence.** Booter A had registered a spare domain in June 2018
  and was back online days after the seizure (its Alexa re-entry on
  December 22 is three days after the takedown); its demand recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.booter.market import BooterMarket

__all__ = ["TakedownScenario"]


@dataclass(frozen=True)
class TakedownScenario:
    """Behavioural parameters of the seizure and its aftermath.

    Attributes:
        takedown_day: day index (in scenario time) of the seizure.
        migration_halflife_days: half-life of displaced demand reappearing
            at surviving booters.
        permanent_demand_loss: fraction of the seized booters' demand that
            never returns (deterred customers).
        revived_booters: service name -> days after takedown at which the
            service resumes under a new domain (booter A: 3 days).
        revival_popularity_fraction: share of its old demand a revived
            booter wins back.
    """

    takedown_day: int
    migration_halflife_days: float = 1.0
    permanent_demand_loss: float = 0.02
    revived_booters: dict[str, int] = field(default_factory=lambda: {"A": 3})
    revival_popularity_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.migration_halflife_days <= 0:
            raise ValueError("migration halflife must be positive")
        if not 0.0 <= self.permanent_demand_loss <= 1.0:
            raise ValueError("permanent_demand_loss must be in [0, 1]")
        if not 0.0 <= self.revival_popularity_fraction <= 1.0:
            raise ValueError("revival_popularity_fraction must be in [0, 1]")
        for name, delay in self.revived_booters.items():
            if delay < 0:
                raise ValueError(f"revival delay for {name} cannot be negative")

    # -- backend activity ----------------------------------------------------

    def backend_activity(self, market: BooterMarket, day: int) -> dict[str, float]:
        """Scan-activity multiplier per service on ``day``.

        Seized services stop scanning at the takedown and stay dark; a
        revived service resumes scanning when its new domain goes live.
        """
        activity: dict[str, float] = {}
        for name, service in market.services.items():
            if not service.catalog.seized or day < self.takedown_day:
                activity[name] = 1.0
                continue
            revival_delay = self.revived_booters.get(name)
            if revival_delay is not None and day >= self.takedown_day + revival_delay:
                activity[name] = self.revival_popularity_fraction
            else:
                activity[name] = 0.0
        return activity

    # -- demand --------------------------------------------------------------

    def demand_weights(self, market: BooterMarket, day: int) -> dict[str, float]:
        """Demand share per service on ``day`` (unnormalized).

        Before the takedown these are the intrinsic popularities. After,
        seized services' demand migrates exponentially to survivors
        (proportionally to their popularity), minus the permanent loss;
        revived services claw back their configured fraction.
        """
        base = {name: s.popularity for name, s in market.services.items()}
        if day < self.takedown_day:
            return base
        days_since = day - self.takedown_day
        migrated_frac = 1.0 - 2.0 ** (-days_since / self.migration_halflife_days)

        weights: dict[str, float] = {}
        displaced = 0.0
        survivors_total = 0.0
        for name, service in market.services.items():
            if service.catalog.seized:
                revival_delay = self.revived_booters.get(name)
                if revival_delay is not None and days_since >= revival_delay:
                    weights[name] = base[name] * self.revival_popularity_fraction
                    displaced += base[name] * (1.0 - self.revival_popularity_fraction)
                else:
                    weights[name] = 0.0
                    displaced += base[name]
            else:
                weights[name] = base[name]
                survivors_total += base[name]
        if survivors_total > 0:
            redistributed = displaced * migrated_frac * (1.0 - self.permanent_demand_loss)
            for name, service in market.services.items():
                if not service.catalog.seized:
                    weights[name] += redistributed * base[name] / survivors_total
        return weights

    def demand_scale(self, market: BooterMarket, day: int) -> float:
        """Total demand on ``day`` relative to the pre-takedown level."""
        weights = self.demand_weights(market, day)
        base_total = sum(s.popularity for s in market.services.values())
        return sum(weights.values()) / base_total if base_total else 0.0
