"""The booter catalogue of Table 1.

Table 1 of the paper lists the four booters purchased for the self-attack
study: whether the FBI later seized them, the months they were used, the
amplification protocols they offered, and the prices of the non-VIP and
VIP packages. Booter names are anonymized as A-D in the paper and here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BooterCatalogEntry", "BOOTER_CATALOG", "catalog_table_rows"]


@dataclass(frozen=True)
class BooterCatalogEntry:
    """One row of Table 1."""

    name: str
    seized: bool
    measurement_months: tuple[str, ...]
    protocols: tuple[str, ...]
    price_non_vip_usd: float
    price_vip_usd: float
    vip_purchased: bool = False
    advertised_vip_gbps: tuple[float, float] | None = None
    advertised_non_vip_gbps: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("booter name required")
        if self.price_non_vip_usd < 0 or self.price_vip_usd < 0:
            raise ValueError("prices cannot be negative")
        if not self.protocols:
            raise ValueError("a booter offers at least one protocol")

    def offers(self, protocol: str) -> bool:
        return protocol in self.protocols


BOOTER_CATALOG: dict[str, BooterCatalogEntry] = {
    "A": BooterCatalogEntry(
        name="A",
        seized=True,
        measurement_months=("2018-04", "2018-08"),
        protocols=("ntp", "dns", "cldap", "memcached"),
        price_non_vip_usd=8.00,
        price_vip_usd=250.00,
    ),
    "B": BooterCatalogEntry(
        name="B",
        seized=True,
        measurement_months=("2018-06", "2018-07", "2018-08", "2018-09"),
        protocols=("ntp", "dns", "cldap", "memcached"),
        price_non_vip_usd=19.83,
        price_vip_usd=178.84,
        vip_purchased=True,
        # Booter B's VIP tier promised 80-100 Gbps vs 8-12 Gbps non-VIP.
        advertised_vip_gbps=(80.0, 100.0),
        advertised_non_vip_gbps=(8.0, 12.0),
    ),
    "C": BooterCatalogEntry(
        name="C",
        seized=False,
        measurement_months=("2018-04", "2018-05"),
        protocols=("ntp", "dns"),
        price_non_vip_usd=14.00,
        price_vip_usd=89.00,
    ),
    "D": BooterCatalogEntry(
        name="D",
        seized=False,
        measurement_months=("2018-05",),
        protocols=("ntp", "dns"),
        price_non_vip_usd=19.99,
        price_vip_usd=149.99,
    ),
}


def catalog_table_rows() -> list[dict[str, str]]:
    """Render Table 1 as a list of printable row dicts."""
    rows = []
    for entry in BOOTER_CATALOG.values():
        rows.append(
            {
                "booter": entry.name,
                "seized": "yes" if entry.seized else "no",
                "months": ", ".join(entry.measurement_months),
                "ntp": "x" if entry.offers("ntp") else "",
                "dns": "x" if entry.offers("dns") else "",
                "cldap": "x" if entry.offers("cldap") else "",
                "memcached": "x" if entry.offers("memcached") else "",
                "non_vip_usd": f"${entry.price_non_vip_usd:.2f}",
                "vip_usd": f"${entry.price_vip_usd:.2f}",
            }
        )
    return rows
