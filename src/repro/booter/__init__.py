"""The booter (DDoS-as-a-service) ecosystem simulator.

This package stands in for the parts of the paper's study that required
buying real attacks and watching real criminals: reflector pools and their
churn, booter services with VIP/non-VIP plans, the attack traffic they
generate, a market of booters with Poisson attack arrivals against a
heavy-tailed victim population, and the FBI takedown scenario with demand
migration and booter A's re-emergence.
"""

from repro.booter.attack import (
    AttackEvent,
    synthesize_attack_flows,
    synthesize_trigger_flows,
)
from repro.booter.catalog import (
    BOOTER_CATALOG,
    BooterCatalogEntry,
    catalog_table_rows,
)
from repro.booter.market import BooterMarket, MarketConfig
from repro.booter.reflectors import ReflectorChurnConfig, ReflectorPool, ReflectorSetProcess
from repro.booter.service import BooterService, ServicePlan
from repro.booter.takedown import TakedownScenario

__all__ = [
    "AttackEvent",
    "BOOTER_CATALOG",
    "BooterCatalogEntry",
    "BooterMarket",
    "BooterService",
    "MarketConfig",
    "ReflectorChurnConfig",
    "ReflectorPool",
    "ReflectorSetProcess",
    "ServicePlan",
    "TakedownScenario",
    "catalog_table_rows",
    "synthesize_attack_flows",
    "synthesize_trigger_flows",
]
