"""Reflector pools and per-booter reflector-set dynamics.

Section 3.2 of the paper derives several facts about how booters manage
their amplifier lists, all of which this module reproduces as a stochastic
process:

* booters use a *small* working set (hundreds) out of a huge global pool
  (millions of NTP servers on shodan);
* working sets are stable within a day (same-day attacks overlap heavily);
* sets churn moderately over weeks (~30% over two weeks for booter B);
* a booter occasionally *replaces* its whole set overnight;
* sets overlap *between* booters occasionally (shared list sources);
* VIP and non-VIP tiers of the same booter use the *same* set — VIP just
  drives each reflector at a higher packet rate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.netmodel.asn import ASRegistry, ASRole
from repro.netmodel.addressing import random_ips_in_prefix
from repro.stats.rng import SeedSequenceTree

__all__ = ["ReflectorPool", "ReflectorChurnConfig", "ReflectorSetProcess"]


class ReflectorPool:
    """The global population of abusable reflectors for one protocol.

    Reflectors are (ip, asn) pairs spread over the topology's ASes. A
    placement bias lets protocols differ the way the paper observed: NTP
    amplifiers are widespread across many networks, while memcached
    amplifiers concentrate in few (hosting) networks.
    """

    def __init__(
        self,
        protocol: str,
        ips: np.ndarray,
        asns: np.ndarray,
    ) -> None:
        ips = np.asarray(ips, dtype=np.uint32)
        asns = np.asarray(asns, dtype=np.int64)
        if ips.size != asns.size:
            raise ValueError("ips and asns must align")
        if ips.size == 0:
            raise ValueError("a reflector pool cannot be empty")
        if np.unique(ips).size != ips.size:
            raise ValueError("reflector IPs must be unique")
        self.protocol = protocol
        self.ips = ips
        self.asns = asns

    def __len__(self) -> int:
        return int(self.ips.size)

    @staticmethod
    def generate(
        protocol: str,
        size: int,
        registry: ASRegistry,
        seeds: SeedSequenceTree,
        concentration: float = 1.0,
        member_weight_multiplier: float = 1.0,
    ) -> "ReflectorPool":
        """Scatter ``size`` reflectors across the registry's stub/tier-2 space.

        ``concentration`` controls placement skew: 1.0 spreads reflectors
        roughly uniformly over eligible ASes (NTP-like), larger values
        concentrate them on few ASes (memcached-like). Implemented as
        Dirichlet(1/concentration) AS weights. ``member_weight_multiplier``
        biases placement towards IXP-member ASes (memcached amplifiers
        cluster in hosting networks, which peer at IXPs — the reason the
        paper's VIP memcached attack arrived 88.59% via peering).
        """
        if size <= 0:
            raise ValueError("pool size must be positive")
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        if member_weight_multiplier <= 0:
            raise ValueError("member_weight_multiplier must be positive")
        rng = seeds.child("reflector-pool", protocol).rng()
        hosts = [
            a for a in registry if a.role in (ASRole.STUB, ASRole.TIER2) and a.prefixes
        ]
        if not hosts:
            raise ValueError("registry has no eligible reflector-hosting ASes")
        weights = rng.dirichlet(np.full(len(hosts), 1.0 / concentration))
        if member_weight_multiplier != 1.0:
            member_mask = np.array([a.ixp_member for a in hosts])
            weights = np.where(member_mask, weights * member_weight_multiplier, weights)
            weights = weights / weights.sum()
        counts = rng.multinomial(size, weights)
        ips: list[np.ndarray] = []
        asns: list[np.ndarray] = []
        for asys, count in zip(hosts, counts):
            if count == 0:
                continue
            prefix = asys.prefixes[0]
            count = min(int(count), prefix.size)
            ips.append(random_ips_in_prefix(prefix, rng, count, unique=True))
            asns.append(np.full(count, asys.asn, dtype=np.int64))
        all_ips = np.concatenate(ips)
        all_asns = np.concatenate(asns)
        # Cross-AS collisions cannot happen (prefixes are disjoint).
        return ReflectorPool(protocol, all_ips, all_asns)

    def unique_asns(self) -> np.ndarray:
        return np.unique(self.asns)


@dataclass(frozen=True)
class ReflectorChurnConfig:
    """Parameters of a booter's reflector-set evolution.

    Attributes:
        set_size: working-set size (reflectors used per attack era).
        daily_churn: fraction of the set replaced per day (paper: ~30%
            over two weeks ≈ 0.025/day for booter B).
        replacement_prob: per-day probability of discarding the entire set
            and drawing a fresh one (the sudden switch of booter B between
            2018-06-12 and 2018-06-13).
    """

    set_size: int = 300
    daily_churn: float = 0.025
    replacement_prob: float = 0.01

    def __post_init__(self) -> None:
        if self.set_size <= 0:
            raise ValueError("set_size must be positive")
        if not 0.0 <= self.daily_churn <= 1.0:
            raise ValueError("daily_churn must be in [0, 1]")
        if not 0.0 <= self.replacement_prob <= 1.0:
            raise ValueError("replacement_prob must be in [0, 1]")


class ReflectorSetProcess:
    """Deterministic day-indexed evolution of one booter's reflector set.

    The state on day ``d`` is a sorted array of indices into the pool.
    Day 0 draws the initial set; each subsequent day replaces a binomial
    number of members (``daily_churn``) or, with ``replacement_prob``, the
    entire set. Days are materialized lazily and cached, so queries for
    arbitrary days are cheap after the first pass.

    Two booters share reflectors only by chance — but because both draw
    from the same finite pool (optionally from a shared "list source"
    subset via ``draw_pool_fraction``), occasional overlap arises exactly
    as in Figure 1(c), marker (4).
    """

    def __init__(
        self,
        pool: ReflectorPool,
        config: ReflectorChurnConfig,
        seeds: SeedSequenceTree,
        draw_pool_fraction: float = 1.0,
        source_seeds: SeedSequenceTree | None = None,
    ) -> None:
        """``source_seeds`` scopes the *list source* (the drawable subset):
        two booters constructed with the same ``source_seeds`` buy from the
        same reflector-list seller and therefore overlap occasionally,
        while their day-to-day churn (scoped by ``seeds``) stays
        independent."""
        if not 0.0 < draw_pool_fraction <= 1.0:
            raise ValueError("draw_pool_fraction must be in (0, 1]")
        if config.set_size > len(pool) * draw_pool_fraction:
            raise ValueError(
                f"set_size {config.set_size} exceeds the drawable pool "
                f"({len(pool)} * {draw_pool_fraction})"
            )
        self.pool = pool
        self.config = config
        self._seeds = seeds
        self._rng = seeds.child("reflector-set").rng()
        n_drawable = int(len(pool) * draw_pool_fraction)
        # The booter's list source: a fixed subset of the global pool.
        source = source_seeds if source_seeds is not None else seeds
        self._drawable = np.sort(
            source.child("drawable").rng().choice(len(pool), size=n_drawable, replace=False)
        )
        self._days: list[np.ndarray] = []
        # Materialization consumes self._rng sequentially, day by day.
        # Concurrent day tasks (the thread executor) must extend the
        # sequence one holder at a time or the draws interleave and the
        # day sets stop being reproducible.
        self._lock = threading.Lock()

    def _draw_fresh_set(self, rng: np.random.Generator) -> np.ndarray:
        picks = rng.choice(self._drawable, size=self.config.set_size, replace=False)
        return np.sort(picks)

    def set_for_day(self, day: int) -> np.ndarray:
        """Sorted pool indices in use on ``day`` (day 0 = process epoch)."""
        if day < 0:
            raise ValueError("day must be non-negative")
        if len(self._days) > day:
            # Already materialized: append-only, so a lock-free read of a
            # settled prefix entry is safe.
            return self._days[day]
        with self._lock:
            while len(self._days) <= day:
                if not self._days:
                    self._days.append(self._draw_fresh_set(self._rng))
                    continue
                prev = self._days[-1]
                if self._rng.random() < self.config.replacement_prob:
                    self._days.append(self._draw_fresh_set(self._rng))
                    continue
                n_churn = self._rng.binomial(self.config.set_size, self.config.daily_churn)
                if n_churn == 0:
                    self._days.append(prev)
                    continue
                keep = self._rng.choice(
                    self.config.set_size, size=self.config.set_size - n_churn, replace=False
                )
                kept = prev[np.sort(keep)]
                candidates = np.setdiff1d(self._drawable, kept, assume_unique=True)
                fresh = self._rng.choice(candidates, size=n_churn, replace=False)
                self._days.append(np.sort(np.concatenate([kept, fresh])))
            return self._days[day]

    def ips_for_day(self, day: int) -> np.ndarray:
        return self.pool.ips[self.set_for_day(day)]

    def asns_for_day(self, day: int) -> np.ndarray:
        return self.pool.asns[self.set_for_day(day)]


def overlap_fraction(set_a: np.ndarray, set_b: np.ndarray) -> float:
    """|A ∩ B| / |A ∪ B| for two index arrays (Jaccard)."""
    a = np.unique(set_a)
    b = np.unique(set_b)
    if a.size == 0 and b.size == 0:
        return 1.0
    inter = np.intersect1d(a, b, assume_unique=True).size
    union = a.size + b.size - inter
    return inter / union
