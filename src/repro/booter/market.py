"""The booter market: services, demand, victims, and backend scanning.

The market model generates the "wild" DDoS activity seen at the vantage
points: a population of booter services (the four from Table 1 plus
synthetic peers standing in for the wider market), Poisson attack
arrivals routed to services by popularity, a heavy-tailed victim
population (some targets are hit over and over), and the list-maintenance
scanning each live backend directs at reflector ports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.booter.attack import AttackEvent
from repro.booter.catalog import BOOTER_CATALOG, BooterCatalogEntry
from repro.booter.reflectors import (
    ReflectorChurnConfig,
    ReflectorPool,
    ReflectorSetProcess,
)
from repro.booter.service import BooterService, ServicePlan
from repro.flows.builder import FlowTableBuilder
from repro.flows.records import FlowTable
from repro.netmodel.asn import ASRegistry, ASRole
from repro.netmodel.addressing import random_ips_in_prefix
from repro.protocols.amplification import UDP, vector_by_name
from repro.stats.rng import SeedSequenceTree

__all__ = ["MarketConfig", "BooterMarket", "VictimPopulation"]

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class MarketConfig:
    """Shape of the booter market and its attack demand.

    The default rates target simulation scale, not the paper's absolute
    numbers: experiments multiply ``daily_attacks`` by their own scale
    factor. Distributional parameters (vector mix, durations, rate
    spreads) are calibrated to the paper's reported characteristics.
    """

    n_synthetic_booters: int = 20
    seized_synthetic: int = 13  # + booters A and B = the 15 seized services
    popularity_zipf_exponent: float = 1.1
    daily_attacks: float = 120.0
    n_victims: int = 1500
    victim_zipf_exponent: float = 1.2
    vector_mix: tuple[tuple[str, float], ...] = (
        ("ntp", 0.67),
        ("dns", 0.15),
        ("cldap", 0.10),
        ("memcached", 0.05),
        ("ssdp", 0.03),
    )
    plan_mix: tuple[tuple[str, float], ...] = (("non-vip", 0.92), ("vip", 0.08))
    duration_median_s: float = 300.0
    duration_sigma: float = 0.8
    max_duration_s: float = 3600.0
    # Non-VIP packet rates: lognormal with ~1.4 Gbps mean NTP equivalent.
    non_vip_pps_median: float = 520_000.0
    non_vip_pps_sigma: float = 0.55
    vip_pps_multiplier: float = 13.0
    # Rare extremely large events (multi-vector / concerted attacks) that
    # produce the paper's several-hundred-Gbps victim peaks.
    mega_attack_prob: float = 0.004
    mega_pps_multiplier: float = 40.0
    # Day-to-day demand variability (weekday effects, campaigns).
    demand_noise_sigma: float = 0.15
    # Per-vector attack rate multipliers: weak amplifiers cannot be driven
    # at NTP rates (NTP is the most potent and reliable booter vector).
    vector_rate_multipliers: tuple[tuple[str, float], ...] = (
        ("ntp", 1.0),
        ("dns", 0.35),
        ("cldap", 0.5),
        ("memcached", 1.0),
        ("ssdp", 0.25),
    )
    # Backend scanning: *market-wide* packets/second directed at each
    # protocol's port for list refresh and amplification verification.
    # Each live backend contributes proportionally to its popularity —
    # bigger booters run bigger scanning infrastructures.
    scan_pps: tuple[tuple[str, float], ...] = (
        ("ntp", 160_000.0),
        ("dns", 60_000.0),
        ("cldap", 3_000.0),
        ("memcached", 12_000.0),
        ("ssdp", 1_500.0),
    )
    # Protocols whose scanning infrastructure was run only by the big
    # (seized) services: small booters buy memcached amplifier lists
    # instead of scanning for them. Attack capability is unaffected —
    # which is why victim-side memcached traffic survives the takedown
    # while scanning collapses (Figure 4's deepest drop).
    scan_only_seized: tuple[str, ...] = ("memcached",)
    # Scan probes are small version/ping queries (not full monlist
    # requests): they land in the sub-200-byte mode of Figure 2(a).
    scan_probe_size: float = 90.0
    reflector_set_size: int = 300
    reflector_set_size_spread: float = 0.5
    shared_list_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.n_synthetic_booters < 0:
            raise ValueError("n_synthetic_booters cannot be negative")
        if self.seized_synthetic > self.n_synthetic_booters:
            raise ValueError("cannot seize more synthetic booters than exist")
        if self.daily_attacks <= 0:
            raise ValueError("daily_attacks must be positive")
        if self.n_victims <= 0:
            raise ValueError("n_victims must be positive")
        for name, share in self.vector_mix:
            vector_by_name(name)  # validates the name
            if share < 0:
                raise ValueError(f"negative share for {name}")
        if abs(sum(s for _, s in self.vector_mix) - 1.0) > 1e-9:
            raise ValueError("vector_mix shares must sum to 1")
        if abs(sum(s for _, s in self.plan_mix) - 1.0) > 1e-9:
            raise ValueError("plan_mix shares must sum to 1")


class VictimPopulation:
    """Heavy-tailed population of attack targets.

    Victims are addresses spread over all ASes; per-victim popularity is
    Zipf-distributed, so a few targets absorb repeated attacks (the
    paper's Figure 2b outliers) while most are hit once or twice.
    """

    def __init__(self, registry: ASRegistry, config: MarketConfig, seeds: SeedSequenceTree):
        rng = seeds.child("victims").rng()
        eligible = [a for a in registry if a.prefixes and a.role != ASRole.MEASUREMENT]
        if not eligible:
            raise ValueError("registry has no eligible victim ASes")
        weights = rng.dirichlet(np.ones(len(eligible)))
        counts = rng.multinomial(config.n_victims, weights)
        ips: list[np.ndarray] = []
        asns: list[np.ndarray] = []
        for asys, count in zip(eligible, counts):
            if count == 0:
                continue
            prefix = asys.prefixes[0]
            count = min(int(count), prefix.size)
            ips.append(random_ips_in_prefix(prefix, rng, count, unique=True))
            asns.append(np.full(count, asys.asn, dtype=np.int64))
        self.ips = np.concatenate(ips)
        self.asns = np.concatenate(asns)
        ranks = np.arange(1, self.ips.size + 1, dtype=float)
        zipf = ranks ** (-config.victim_zipf_exponent)
        rng.shuffle(zipf)
        self.weights = zipf / zipf.sum()

    def __len__(self) -> int:
        return int(self.ips.size)

    def sample(self, rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` victims (with repetition) -> (ips, asns)."""
        idx = rng.choice(self.ips.size, size=n, p=self.weights)
        return self.ips[idx], self.asns[idx]


class BooterMarket:
    """All booter services plus demand and scanning processes."""

    def __init__(
        self,
        registry: ASRegistry,
        pools: dict[str, ReflectorPool],
        config: MarketConfig,
        seeds: SeedSequenceTree,
    ) -> None:
        self.registry = registry
        self.pools = pools
        self.config = config
        self.seeds = seeds
        self.victims = VictimPopulation(registry, config, seeds.child("population"))
        self.services: dict[str, BooterService] = {}
        self._build_services()
        self._vector_names = [name for name, _ in config.vector_mix]
        self._vector_shares = np.array([s for _, s in config.vector_mix])
        self._plan_names = [name for name, _ in config.plan_mix]
        self._plan_shares = np.array([s for _, s in config.plan_mix])
        self._rate_multipliers = dict(config.vector_rate_multipliers)

    # -- construction -------------------------------------------------------

    def _backend_location(self, rng: np.random.Generator) -> tuple[int, int]:
        """(asn, ip) for a booter backend: hosted in some stub AS."""
        stubs = [a for a in self.registry.by_role(ASRole.STUB) if a.prefixes]
        asys = stubs[int(rng.integers(0, len(stubs)))]
        ip = int(random_ips_in_prefix(asys.prefixes[0], rng, 1)[0])
        return asys.asn, ip

    def _make_service(
        self, entry: BooterCatalogEntry, popularity: float, seeds: SeedSequenceTree
    ) -> BooterService:
        rng = seeds.child("build").rng()
        config = self.config
        set_size = max(
            30,
            int(
                config.reflector_set_size
                * rng.lognormal(0.0, config.reflector_set_size_spread)
            ),
        )
        reflector_sets: dict[str, ReflectorSetProcess] = {}
        for protocol in entry.protocols:
            pool = self.pools.get(protocol)
            if pool is None:
                continue
            churn = ReflectorChurnConfig(
                set_size=min(set_size, max(1, int(len(pool) * config.shared_list_fraction))),
                daily_churn=float(rng.uniform(0.01, 0.06)),
                replacement_prob=float(rng.uniform(0.003, 0.02)),
            )
            reflector_sets[protocol] = ReflectorSetProcess(
                pool,
                churn,
                seeds.child("reflectors", protocol),
                draw_pool_fraction=config.shared_list_fraction,
            )
        non_vip_pps = float(
            rng.lognormal(np.log(config.non_vip_pps_median), config.non_vip_pps_sigma)
        )
        plans = {
            "non-vip": ServicePlan(
                "non-vip", entry.price_non_vip_usd, non_vip_pps, max_duration_s=600.0
            ),
            "vip": ServicePlan(
                "vip",
                entry.price_vip_usd,
                non_vip_pps * config.vip_pps_multiplier,
                max_duration_s=1800.0,
            ),
        }
        backend_asn, backend_ip = self._backend_location(rng)
        seized_only = set(config.scan_only_seized)
        scan_rates = {
            protocol: market_pps * popularity
            for protocol, market_pps in config.scan_pps
            if entry.offers(protocol)
            and protocol in self.pools
            and (entry.seized or protocol not in seized_only)
        }
        return BooterService(
            catalog=entry,
            plans=plans,
            reflector_sets=reflector_sets,
            popularity=popularity,
            backend_asn=backend_asn,
            backend_ip=backend_ip,
            scan_pps_per_protocol=scan_rates,
        )

    def _build_services(self) -> None:
        config = self.config
        entries: list[BooterCatalogEntry] = list(BOOTER_CATALOG.values())
        for i in range(config.n_synthetic_booters):
            seized = i < config.seized_synthetic
            entries.append(
                BooterCatalogEntry(
                    name=f"S{i:02d}",
                    seized=seized,
                    measurement_months=(),
                    protocols=("ntp", "dns", "cldap", "memcached", "ssdp"),
                    price_non_vip_usd=15.0,
                    price_vip_usd=150.0,
                )
            )
        ranks = np.arange(1, len(entries) + 1, dtype=float)
        popularity = ranks ** (-config.popularity_zipf_exponent)
        # Seized services were the market leaders (the FBI picked popular
        # ones): give seized entries the head of the Zipf curve.
        entries.sort(key=lambda e: not e.seized)
        popularity /= popularity.sum()
        for entry, pop in zip(entries, popularity):
            self.services[entry.name] = self._make_service(
                entry, float(pop), self.seeds.child("service", entry.name)
            )

    # -- demand --------------------------------------------------------------

    def seized_services(self) -> list[BooterService]:
        return [s for s in self.services.values() if s.catalog.seized]

    def service_names(self) -> list[str]:
        return sorted(self.services)

    def popularity_vector(self, names: list[str] | None = None) -> np.ndarray:
        """Normalized popularity weights aligned with ``names``.

        The shared demand/signup weighting used by the customer models
        (:mod:`repro.economics`): raises a clear :class:`ValueError`
        when every service's popularity is zero instead of letting a
        ``0/0`` propagate NaN weights into downstream draws.
        """
        if names is None:
            names = self.service_names()
        weights = np.array([self.services[n].popularity for n in names], dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise ValueError(
                "every service popularity is zero — cannot form demand weights"
            )
        return weights / total

    def attacks_for_day(
        self,
        day: int,
        demand_weights: dict[str, float] | None = None,
        demand_scale: float = 1.0,
    ) -> list[AttackEvent]:
        """Generate the day's attack events.

        ``demand_weights`` overrides each service's share of demand (used
        by the takedown scenario); ``demand_scale`` scales total demand.
        Determinism: the same (seed, day, weights, scale) always produces
        the same events.
        """
        if demand_scale < 0:
            raise ValueError("demand_scale cannot be negative")
        rng = self.seeds.child("demand", day).rng()
        names = self.service_names()
        if demand_weights is None:
            weights = np.array([self.services[n].popularity for n in names])
        else:
            weights = np.array([demand_weights.get(n, 0.0) for n in names])
        total_weight = weights.sum()
        if total_weight <= 0:
            return []
        weights = weights / total_weight

        day_level = rng.lognormal(0.0, self.config.demand_noise_sigma)
        n_attacks = rng.poisson(self.config.daily_attacks * demand_scale * day_level)
        if n_attacks == 0:
            return []
        victim_ips, victim_asns = self.victims.sample(rng, n_attacks)
        service_idx = rng.choice(len(names), size=n_attacks, p=weights)
        start_times = np.sort(rng.uniform(0, SECONDS_PER_DAY, n_attacks)) + day * SECONDS_PER_DAY
        durations = np.clip(
            rng.lognormal(np.log(self.config.duration_median_s), self.config.duration_sigma, n_attacks),
            30.0,
            self.config.max_duration_s,
        )

        events: list[AttackEvent] = []
        for i in range(n_attacks):
            service = self.services[names[service_idx[i]]]
            offered = [v for v in self._vector_names if v in service.reflector_sets]
            if not offered:
                continue
            shares = np.array(
                [self._vector_shares[self._vector_names.index(v)] for v in offered]
            )
            vector = offered[int(rng.choice(len(offered), p=shares / shares.sum()))]
            plan = self._plan_names[int(rng.choice(len(self._plan_names), p=self._plan_shares))]
            event = service.launch_attack(
                victim_ip=int(victim_ips[i]),
                victim_asn=int(victim_asns[i]),
                vector_name=vector,
                start_time=float(start_times[i]),
                duration_s=float(durations[i]),
                plan_name=plan,
                day=day,
                seeds=self.seeds.child("launch", day, i),
                rate_multiplier=self._rate_multipliers.get(vector, 1.0),
            )
            if rng.random() < self.config.mega_attack_prob:
                boosted = self.config.mega_pps_multiplier * event.total_pps
                event = AttackEvent(
                    booter=event.booter,
                    vector=event.vector,
                    plan="mega",
                    victim_ip=event.victim_ip,
                    victim_asn=event.victim_asn,
                    start_time=event.start_time,
                    duration_s=event.duration_s,
                    total_pps=boosted,
                    reflector_ips=event.reflector_ips,
                    reflector_asns=event.reflector_asns,
                    reflector_weights=event.reflector_weights,
                )
            events.append(event)
        return events

    # -- backend scanning --------------------------------------------------------

    def scan_flows_for_day(
        self,
        day: int,
        activity: dict[str, float] | None = None,
        bin_seconds: float = 3600.0,
    ) -> FlowTable:
        """List-maintenance scan traffic of all live backends for ``day``.

        ``activity`` maps service name -> multiplier in [0, 1] (0 after
        seizure). Scans hit a random sample of the global pool — the whole
        point of scanning is discovering reflectors beyond the current
        working set.
        """
        rng = self.seeds.child("scans", day).rng()
        builder = FlowTableBuilder()
        n_bins = int(SECONDS_PER_DAY / bin_seconds)
        for name in self.service_names():
            service = self.services[name]
            mult = 1.0 if activity is None else activity.get(name, 1.0)
            if mult <= 0:
                continue
            for protocol, pps in service.scan_pps_per_protocol.items():
                pool = self.pools[protocol]
                vector = vector_by_name(protocol)
                probe_size = self.config.scan_probe_size
                daily_jitter = rng.lognormal(0.0, 0.1)
                packets_per_bin = pps * mult * daily_jitter * bin_seconds
                # Aggregate each bin's scanning into flows towards a sample
                # of targets (flow records, not per-probe packets).
                n_targets = min(50, len(pool))
                target_idx = rng.choice(len(pool), size=(n_bins, n_targets))
                per_flow = rng.multinomial(
                    int(packets_per_bin), np.full(n_targets, 1.0 / n_targets), size=n_bins
                )
                bins_idx, tgt_idx = np.nonzero(per_flow)
                if bins_idx.size == 0:
                    continue
                flow_packets = per_flow[bins_idx, tgt_idx].astype(np.int64)
                chosen = target_idx[bins_idx, tgt_idx]
                n_flows = flow_packets.size
                builder.add_block(
                    {
                        "time": day * SECONDS_PER_DAY + bins_idx * bin_seconds,
                        "src_ip": np.full(n_flows, service.backend_ip, dtype=np.uint32),
                        "dst_ip": pool.ips[chosen],
                        "proto": np.full(n_flows, UDP, dtype=np.uint8),
                        "src_port": rng.integers(1024, 65535, n_flows).astype(np.uint16),
                        "dst_port": np.full(n_flows, vector.port, dtype=np.uint16),
                        "packets": flow_packets,
                        "bytes": np.round(flow_packets * probe_size).astype(np.int64),
                        "src_asn": np.full(n_flows, service.backend_asn, dtype=np.int64),
                        "dst_asn": pool.asns[chosen],
                    }
                )
        return builder.build()
