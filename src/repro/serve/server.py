"""The observatory HTTP server and its ``repro-serve`` CLI.

:class:`ObservatoryServer` wires the pieces together over
``asyncio.start_server``: each connection runs a keep-alive loop of
:func:`~repro.serve.http.read_request` → rate-limit check → router
dispatch → response write. Handler work that touches the pipeline runs
in worker threads behind a bounded semaphore, coalesced per key by the
single-flight table, so the event loop never blocks and N identical
concurrent misses cost one compute.

Failure containment is the point of the loop structure: a crashed
handler answers 500 and the connection (and accept loop) live on; a
protocol violation answers with its specific status and only drops the
connection when resynchronization is impossible; a stalled client is
timed out with 408 so slow-loris connections cannot pin resources.

Every exchange is instrumented through :mod:`repro.obs`:
``serve.requests``, ``serve.responses.<status>``, ``serve.errors``,
``serve.slow_clients``, and the ``serve.latency_s`` histogram
(sub-millisecond buckets — warm responses live there), next to the
``serve.cache_tier.*`` and ``serve.singleflight_*`` counters the lower
layers record. Each request additionally gets a request id (honoring an
inbound ``X-Request-Id``) that is echoed in the response headers,
written to the JSONL access log (``--access-log``), and bound to the
request's context so every trace event it causes — down to pool-worker
spans — carries it (see :mod:`repro.obs.trace`).
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import logging
import os
import re
import threading
import time
from pathlib import Path
from typing import Any

from repro.core.diskcache import DEFAULT_MAX_BYTES, DiskDayCache
from repro.core.parallel import day_cache
from repro.core.workerpool import EXECUTORS, set_execution_policy, shutdown_pool
from repro.experiments.base import ExperimentConfig
from repro.logutil import LOG_LEVELS, configure_cli_logging
from repro.obs import MetricsRegistry, TraceRecorder, metrics, set_metrics, write_chrome_trace
from repro.obs.metrics import FINE_LATENCY_BUCKETS
from repro.obs.trace import reset_request_id, set_request_id
from repro.obs.window import RollingWindow
from repro.serve.http import (
    HttpError,
    HttpLimits,
    Request,
    Response,
    SlowClient,
    read_request,
    write_response,
)
from repro.serve.ratelimit import RateLimiter
from repro.serve.routes import Router, ServeContext, ServerState, StreamingResponse, build_router
from repro.serve.service import ObservatoryService, canonical_json

__all__ = ["AccessLog", "ObservatoryServer", "main"]

#: Inbound ``X-Request-Id`` values outside this shape are replaced with a
#: server-generated id (they would corrupt log lines or trace args).
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class AccessLog:
    """Structured JSONL access log: one canonical line per exchange.

    Each line carries the request id, client, method, target, status,
    latency, and response size — the same id the response echoes in
    ``X-Request-Id`` and the trace events carry, so one grep connects an
    access-log line to its Perfetto spans. Lines are flushed per write
    (tail-able) and serialized under a lock.

    With ``max_bytes > 0`` the log rotates by size: when a write would
    push the file past the limit, the current file is atomically renamed
    to ``<path>.1`` (replacing any previous ``.1``) and a fresh file
    opened — one generation of history, bounded disk, no partial lines
    in either file.
    """

    def __init__(self, path: str | Path, max_bytes: int = 0) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes cannot be negative")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.rotations = 0
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = self._fh.tell()
        self._lock = threading.Lock()

    def _rotate_locked(self) -> None:
        self._fh.close()
        os.replace(self.path, self.path.with_name(self.path.name + ".1"))
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            if (
                self.max_bytes
                and self._size
                and self._size + len(line) > self.max_bytes
            ):
                self._rotate_locked()
            self._fh.write(line)
            self._fh.flush()
            self._size += len(line)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

_log = logging.getLogger("repro.serve.server")


def _error_response(
    status: int,
    detail: str,
    *,
    close: bool,
    headers: tuple[tuple[str, str], ...] = (),
) -> Response:
    """A canonical-JSON error body: ``{"error": {"detail", "status"}}``."""
    body = canonical_json({"error": {"status": status, "detail": detail}})
    return Response(status=status, body=body, headers=headers, close=close)


class ObservatoryServer:
    """Asyncio HTTP server over an :class:`ObservatoryService`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after :meth:`start`), which is how the tests and the CI smoke step
    run without reserving anything.
    """

    def __init__(
        self,
        service: ObservatoryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        limits: HttpLimits | None = None,
        rate_limiter: RateLimiter | None = None,
        compute_slots: int = 1,
        router: Router | None = None,
        access_log: AccessLog | None = None,
        state: ServerState | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self.limits = limits or HttpLimits()
        self.rate_limiter = rate_limiter
        self.router = router or build_router()
        if state is None:
            state = ServerState(windows=RollingWindow())
        if access_log is not None:
            state.access_log = access_log
        self.state = state
        semaphore = asyncio.Semaphore(compute_slots) if compute_slots > 0 else None
        self.ctx = ServeContext(service=service, compute_semaphore=semaphore, state=state)
        self._server: asyncio.AbstractServer | None = None
        # Request ids: a short boot-unique prefix plus a counter, e.g.
        # "3f2a1c-000007" — unique per server lifetime and cheap.
        self._rid_prefix = os.urandom(3).hex()
        self._rid_counter = itertools.count(1)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections.

        Pool-backed configs fork their workers here, before the first
        client connection exists — forked workers must never inherit a
        live connection fd (the peer would never see EOF on close).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        warm = getattr(self.service, "warm_pool", None)
        if warm is not None:
            await asyncio.to_thread(warm)
        self._server = await asyncio.start_server(
            self._client_connected,
            self.host,
            self._requested_port,
            # The stream limit bounds readuntil() for the request head, so
            # an endless header stream fails fast as 431 instead of
            # buffering without bound.
            limit=self.limits.max_head_bytes,
        )

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral ``port=0`` bindings)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting and close the listening sockets."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "ObservatoryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- connection handling -------------------------------------------------

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One keep-alive connection: read requests until close or error."""
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else str(peer)
        self.state.active_connections += 1
        try:
            while True:
                keep_going = await self._one_exchange(reader, writer, client)
                if not keep_going:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer went away mid-write; nothing left to tell it
        except Exception:  # pragma: no cover - last-resort containment
            _log.exception("unexpected error on connection from %s", client)
            metrics().inc("serve.errors")
        finally:
            self.state.active_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _one_exchange(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        client: str,
    ) -> bool:
        """Serve one request/response; returns whether to keep the connection."""
        registry = metrics()
        try:
            request = await read_request(reader, self.limits)
        except SlowClient:
            registry.inc("serve.slow_clients")
            await self._respond(
                writer, None, _error_response(408, "request timed out", close=True)
            )
            return False
        except HttpError as exc:
            response = _error_response(exc.status, exc.detail, close=exc.close)
            await self._respond(writer, None, response)
            return not exc.close
        if request is None:
            return False  # clean EOF between requests

        registry.inc("serve.requests")
        request_id = self._request_id(request)
        token = set_request_id(request_id)
        start = time.monotonic()
        start_perf = time.perf_counter()
        try:
            if self.rate_limiter is not None and not self.rate_limiter.allow(client):
                registry.inc("serve.rate_limited")
                response: Response | StreamingResponse = _error_response(
                    429,
                    "per-client rate limit exceeded",
                    close=False,
                    headers=(("Retry-After", "1"),),
                )
            else:
                response = await self._dispatch(request)
            response.headers = response.headers + (("X-Request-Id", request_id),)
            if isinstance(response, StreamingResponse):
                keep = await self._respond_streaming(writer, request, response)
            else:
                if not request.keep_alive:
                    response.close = True
                keep = await self._respond(writer, request, response)
        finally:
            reset_request_id(token)
        latency = time.monotonic() - start
        registry.observe("serve.latency_s", latency, buckets=FINE_LATENCY_BUCKETS)
        if self.state.windows is not None:
            self.state.windows.record(latency, error=response.status >= 500)
        if registry.trace is not None:
            # Recorded after the reset on purpose: the id is already in
            # args explicitly, and the exchange event must carry *this*
            # request's id, not a successor's.
            registry.trace.record(
                "serve.request",
                start_perf,
                time.perf_counter() - start_perf,
                {
                    "request_id": request_id,
                    "method": request.method,
                    "path": request.path,
                    "status": response.status,
                },
            )
        if self.state.access_log is not None:
            body_bytes = len(response.body) if isinstance(response, Response) else None
            self.state.access_log.write(
                {
                    "ts": round(time.time(), 6),
                    "request_id": request_id,
                    "client": client,
                    "method": request.method,
                    "target": request.target,
                    "status": response.status,
                    "latency_ms": round(latency * 1e3, 3),
                    "bytes": body_bytes,
                }
            )
        return keep

    def _request_id(self, request: Request) -> str:
        """This request's id: the client's well-formed one, else fresh."""
        supplied = request.headers.get("x-request-id")
        if supplied is not None and _REQUEST_ID_RE.match(supplied):
            return supplied
        return f"{self._rid_prefix}-{next(self._rid_counter):06d}"

    async def _dispatch(self, request: Request) -> Response | StreamingResponse:
        """Route one request; never lets a handler crash the connection."""
        try:
            return await self.router.dispatch(request, self.ctx)
        except HttpError as exc:
            return _error_response(exc.status, exc.detail, close=exc.close)
        except Exception:
            _log.exception("handler failed: %s %s", request.method, request.target)
            metrics().inc("serve.errors")
            return _error_response(500, "internal server error", close=False)

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        request: Request | None,
        response: Response,
    ) -> bool:
        """Write a buffered response; returns whether to keep the connection."""
        metrics().inc(f"serve.responses.{response.status}")
        if request is not None and request.method == "HEAD" and response.body:
            # HEAD answers with GET's headers (including the length the
            # GET body would have) and no body, per RFC 9110.
            response = Response(
                status=response.status,
                body=b"",
                content_type=response.content_type,
                headers=response.headers
                + (
                    ("Content-Length", str(len(response.body))),
                    ("Content-Type", response.content_type),
                ),
                close=response.close,
            )
        try:
            await write_response(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            return False
        return not response.close

    async def _respond_streaming(
        self,
        writer: asyncio.StreamWriter,
        request: Request,
        response: StreamingResponse,
    ) -> bool:
        """Write a chunk stream (SSE); the connection always closes after.

        Without a Content-Length the end of the body can only be
        signalled by closing the connection, so streaming responses are
        terminal for their connection.
        """
        metrics().inc(f"serve.responses.{response.status}")
        head_lines = [
            f"HTTP/1.1 {response.status} OK",
            f"Content-Type: {response.content_type}",
            "Connection: close",
        ]
        head_lines.extend(f"{name}: {value}" for name, value in response.headers)
        writer.write(("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1"))
        try:
            await writer.drain()
            if request.method == "HEAD":
                return False
            async for chunk in response.chunks:
                writer.write(chunk)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client hung up mid-stream; normal for EventSource
        return False


# -- CLI -----------------------------------------------------------------------


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the booter-takedown observatory over HTTP "
        "(health, per-day aggregates, takedown series, victim stats, "
        "SSE event replay) resolved through the day cache tiers.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8321,
        help="TCP port to bind (0 = pick an ephemeral port and print it)",
    )
    parser.add_argument("--preset", choices=("small", "paper"), default="small")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for day computation (0 = all cores)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="process",
        help="how cache misses compute: warm process pool, thread pool, "
        "or inline (payloads are byte-identical across modes)",
    )
    parser.add_argument("--batch-days", dest="batch_days", type=int, default=0)
    parser.add_argument("--day-shards", dest="day_shards", type=int, default=1)
    parser.add_argument(
        "--cache-dir",
        dest="cache_dir",
        metavar="PATH",
        help="attach the persistent disk cache tier at PATH",
    )
    parser.add_argument(
        "--cache-max-bytes",
        dest="cache_max_bytes",
        type=int,
        default=DEFAULT_MAX_BYTES,
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="R",
        help="per-client token-bucket rate limit, requests/second "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="B",
        help="token-bucket burst size (default: 2x --rate)",
    )
    parser.add_argument(
        "--compute-slots",
        dest="compute_slots",
        type=int,
        default=1,
        metavar="N",
        help="concurrent pipeline computations (0 = unbounded); each one "
        "already parallelizes across --jobs workers internally",
    )
    parser.add_argument(
        "--read-timeout",
        dest="read_timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-read client timeout; stalled requests answer 408",
    )
    parser.add_argument(
        "--access-log",
        dest="access_log",
        metavar="PATH",
        help="append one JSONL record per request (request id, client, "
        "method, target, status, latency)",
    )
    parser.add_argument(
        "--access-log-max-bytes",
        dest="access_log_max_bytes",
        type=int,
        default=0,
        metavar="BYTES",
        help="rotate the access log when it would exceed this size "
        "(atomic rename to <path>.1, one generation kept; 0 = never rotate)",
    )
    parser.add_argument(
        "--trace-out",
        dest="trace_out",
        metavar="PATH",
        help="buffer request/pipeline trace events and write Perfetto-"
        "loadable Chrome trace JSON on shutdown (spans carry the same "
        "request ids as the access log)",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="info"
    )
    return parser


async def _run_server(args: argparse.Namespace, config: ExperimentConfig) -> int:
    service = ObservatoryService(config)
    limiter = RateLimiter(args.rate, args.burst) if args.rate else None
    access_log = (
        AccessLog(args.access_log, max_bytes=args.access_log_max_bytes)
        if args.access_log
        else None
    )
    server = ObservatoryServer(
        service,
        args.host,
        args.port,
        limits=HttpLimits(read_timeout_s=args.read_timeout),
        rate_limiter=limiter,
        compute_slots=args.compute_slots,
        access_log=access_log,
    )
    await server.start()
    # Machine-readable readiness line on stdout: the CI smoke step (and
    # anything else scripting an ephemeral-port server) parses this.
    print(f"SERVE_READY http://{args.host}:{server.port}", flush=True)
    _log.info(
        "observatory serving on http://%s:%d (preset=%s seed=%d executor=%s jobs=%d)",
        args.host,
        server.port,
        config.preset,
        config.seed,
        config.executor,
        config.jobs,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()
        if access_log is not None:
            access_log.close()
            _log.info("access log written to %s", access_log.path)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``repro-serve``."""
    args = _parser().parse_args(argv)
    configure_cli_logging(args.log_level)
    trace = TraceRecorder() if args.trace_out else None
    set_metrics(MetricsRegistry(enabled=True, trace=trace))
    config = ExperimentConfig(
        preset=args.preset,
        seed=args.seed,
        jobs=args.jobs,
        cache=True,
        cache_dir=args.cache_dir,
        executor=args.executor,
        batch_days=args.batch_days,
        day_shards=args.day_shards,
    )
    disk = None
    if args.cache_dir:
        disk = DiskDayCache(args.cache_dir, max_bytes=args.cache_max_bytes)
        day_cache().attach_disk(disk)
        _log.info(
            "disk cache attached at %s (%d entries)", disk.root, len(disk)
        )
    previous_policy = set_execution_policy(
        executor=args.executor,
        batch_days=args.batch_days,
        day_shards=args.day_shards,
    )
    try:
        return asyncio.run(_run_server(args, config))
    except KeyboardInterrupt:
        _log.info("interrupted; shutting down")
        return 0
    finally:
        set_execution_policy(previous_policy)
        shutdown_pool()
        if disk is not None:
            day_cache().attach_disk(None)
        if trace is not None:
            write_chrome_trace(trace, args.trace_out)
            _log.info("trace written to %s", args.trace_out)


if __name__ == "__main__":
    raise SystemExit(main())
