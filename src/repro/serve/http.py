"""Minimal HTTP/1.1 machinery for the observatory server.

The serving environment is offline and dependency-free, so there is no
FastAPI/uvicorn underneath — just ``asyncio.start_server`` streams and
this module: a strict request parser with hard limits, a tiny response
type, and the keep-alive rules the conformance suite pins down
(``tests/test_serve_http.py``).

Parsing is split in two layers so the protocol rules are testable
without an event loop:

* :func:`parse_request_head` is a pure function from raw head bytes to a
  :class:`Request`, raising :class:`HttpError` with the right status for
  every malformation (bad request line, bad verb token, oversized or
  malformed headers, unsupported version);
* :func:`read_request` drives it over an ``asyncio.StreamReader`` with a
  read timeout, returning ``None`` on a clean end-of-stream between
  requests (how keep-alive connections end) and raising
  :class:`SlowClient` when a client stalls mid-request (slow-loris).
"""

from __future__ import annotations

import asyncio
import re
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "STATUS_REASONS",
    "HttpError",
    "HttpLimits",
    "Request",
    "Response",
    "SlowClient",
    "parse_request_head",
    "read_request",
    "write_response",
]

#: Reason phrases for every status the server emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    505: "HTTP Version Not Supported",
}

#: RFC 9110 token characters (method names are tokens).
_TOKEN_RE = re.compile(r"^[!#$%&'*+\-.^_`|~0-9A-Za-z]+$")

#: Methods the server understands at all; anything else that is still a
#: valid token is 501, a non-token is 400.
KNOWN_METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH")


class HttpError(Exception):
    """A protocol-level rejection carrying the HTTP status to send.

    ``close`` marks errors after which the connection state is
    unrecoverable (we cannot know where the next request starts), so the
    server responds and hangs up instead of keeping the stream alive.
    """

    def __init__(self, status: int, detail: str, *, close: bool = True) -> None:
        if status not in STATUS_REASONS:
            raise ValueError(f"unknown status {status}")
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.close = close


class SlowClient(Exception):
    """A client stalled mid-request past the read timeout (slow-loris)."""


@dataclass(frozen=True)
class HttpLimits:
    """Hard limits the parser enforces per request."""

    max_head_bytes: int = 16 * 1024
    max_body_bytes: int = 256 * 1024
    max_header_count: int = 64
    read_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_head_bytes <= 0 or self.max_body_bytes < 0:
            raise ValueError("limits must be positive")
        if self.read_timeout_s <= 0:
            raise ValueError("read_timeout_s must be positive")


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    version: str
    headers: dict[str, str]
    body: bytes = b""
    path: str = ""
    query: dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        """Whether the connection persists after this exchange.

        HTTP/1.1 defaults to keep-alive unless ``Connection: close``;
        HTTP/1.0 defaults to close unless ``Connection: keep-alive``.
        """
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def param(self, name: str, default: str | None = None) -> str | None:
        return self.query.get(name, default)


@dataclass
class Response:
    """One response to write: status, body, and extra headers."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = ()
    close: bool = False


def parse_request_head(head: bytes, limits: HttpLimits = HttpLimits()) -> Request:
    """Parse the request line + headers (everything before the body).

    ``head`` excludes the terminating blank line. Raises
    :class:`HttpError` for every malformation, with the most specific
    status available (400 bad syntax, 431 header overflow, 505 version).
    """
    if len(head) > limits.max_head_bytes:
        raise HttpError(431, f"request head exceeds {limits.max_head_bytes} bytes")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise HttpError(400, "undecodable request head") from None
    lines = text.split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3 or not all(parts):
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if not _TOKEN_RE.match(method):
        raise HttpError(400, f"method is not a valid token: {method!r}")
    if method not in KNOWN_METHODS:
        raise HttpError(501, f"method not implemented: {method!r}")
    if not version.startswith("HTTP/"):
        raise HttpError(400, f"malformed HTTP version: {version!r}")
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(505, f"unsupported HTTP version: {version!r}")
    if target != "*" and not target.startswith("/"):
        raise HttpError(400, f"request target must be origin-form: {target!r}")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if line[0] in " \t":
            # Obsolete line folding: deprecated by RFC 7230 and a request
            # smuggling vector; reject rather than guess.
            raise HttpError(400, "obsolete header line folding")
        name, sep, value = line.partition(":")
        if not sep or not _TOKEN_RE.match(name):
            raise HttpError(400, f"malformed header field: {line!r}")
        key = name.lower()
        if key in headers:
            headers[key] = f"{headers[key]}, {value.strip()}"
        else:
            headers[key] = value.strip()
        if len(headers) > limits.max_header_count:
            raise HttpError(431, f"more than {limits.max_header_count} header fields")

    if "transfer-encoding" in headers:
        # Chunked bodies are out of scope for a read-mostly JSON API —
        # declining is safer than half-implementing the framing.
        raise HttpError(501, "transfer-encoding is not supported")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method,
        target=target,
        version=version,
        headers=headers,
        path=unquote(split.path),
        query=query,
    )


def _content_length(request: Request, limits: HttpLimits) -> int:
    raw = request.headers.get("content-length")
    if raw is None:
        return 0
    try:
        length = int(raw)
    except ValueError:
        raise HttpError(400, f"malformed Content-Length: {raw!r}") from None
    if length < 0:
        raise HttpError(400, f"negative Content-Length: {length}")
    if length > limits.max_body_bytes:
        raise HttpError(413, f"body of {length} bytes exceeds {limits.max_body_bytes}")
    return length


async def read_request(
    reader: asyncio.StreamReader, limits: HttpLimits = HttpLimits()
) -> Request | None:
    """Read and parse one request from the stream.

    Returns ``None`` on a clean EOF before any byte of a new request
    (the normal end of a keep-alive connection). Raises:

    * :class:`SlowClient` when the peer stalls past ``read_timeout_s``
      mid-head or mid-body (slow-loris / truncated body);
    * :class:`HttpError` for protocol violations, including a truncated
      head at EOF (the peer gave up mid-request).
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=limits.read_timeout_s
        )
    except asyncio.TimeoutError:
        raise SlowClient("timed out reading request head") from None
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "connection closed mid-request-head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head exceeds the stream limit") from None
    request = parse_request_head(head[:-4], limits)
    length = _content_length(request, limits)
    if length:
        try:
            request.body = await asyncio.wait_for(
                reader.readexactly(length), timeout=limits.read_timeout_s
            )
        except asyncio.TimeoutError:
            raise SlowClient("timed out reading request body") from None
        except asyncio.IncompleteReadError as exc:
            raise HttpError(
                400,
                f"truncated body: Content-Length {length}, got {len(exc.partial)} bytes",
            ) from None
    return request


def render_response(response: Response, *, version: str = "HTTP/1.1") -> bytes:
    """Serialize head + body (the writer-independent part of a response)."""
    reason = STATUS_REASONS[response.status]
    head_lines = [f"{version} {response.status} {reason}"]
    names = {name.lower() for name, _ in response.headers}
    if "content-type" not in names and response.body:
        head_lines.append(f"Content-Type: {response.content_type}")
    if "content-length" not in names:
        head_lines.append(f"Content-Length: {len(response.body)}")
    head_lines.append(f"Connection: {'close' if response.close else 'keep-alive'}")
    head_lines.extend(f"{name}: {value}" for name, value in response.headers)
    return ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1") + response.body


async def write_response(writer: asyncio.StreamWriter, response: Response) -> None:
    """Write a full response and flush it."""
    writer.write(render_response(response))
    await writer.drain()
