"""Domain layer of the observatory service: cache-tier-resolved payloads.

Every endpoint payload is derived from the same deterministic day
pipeline the experiments use (:mod:`repro.core.parallel` helpers with
caching on), so a request resolves through the tiers in order:

1. in-memory :class:`~repro.core.parallel.DayResultCache` — hit in
   microseconds;
2. the attached :class:`~repro.core.diskcache.DiskDayCache` (when the
   server runs with ``--cache-dir``) — one memmap + checksum pass;
3. warm-pool compute via :mod:`repro.core.workerpool` under the server's
   configured ``--jobs/--executor`` — the expensive path, coalesced by
   the single-flight layer so concurrent misses run it once.

Which tier served each request is counted as
``serve.cache_tier.{mem,disk,compute}`` by watching the cache counters
across the call (a request that generated anything counts as compute, a
request fully absorbed by the durable tier as disk, else mem).

All payload builders are synchronous — the server runs them in worker
threads via ``asyncio.to_thread`` behind a bounded semaphore — and end
in :func:`canonical_json`: sorted keys, no whitespace, ``allow_nan``
off. Determinism of the upstream day pipeline (bit-identical across
``jobs``, executors, and cache temperature) therefore lifts to
byte-identical HTTP payloads, which ``tests/test_serve_routes.py`` pins.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable

import numpy as np

from repro.core.parallel import (
    daily_port_counts,
    day_cache,
    day_events,
    observed_days,
    resolve_jobs,
)
from repro.core.workerpool import get_pool
from repro.core.takedown_analysis import analyze_takedown
from repro.core.victims import victim_report
from repro.experiments.base import ExperimentConfig, build_scenario
from repro.experiments.fig4 import SELECTORS
from repro.obs import metrics
from repro.serve.http import HttpError
from repro.timeutil import TRAFFIC_EPOCH, date_of, day_index, parse_date

__all__ = ["ObservatoryService", "VANTAGES", "VP_SAMPLING", "canonical_json"]

#: Vantage points a request may select (the paper's three).
VANTAGES = ("ixp", "tier1", "tier2")

#: Renormalization per vantage point (mirrors fig2's sampling factors).
VP_SAMPLING = {"ixp": 10_000.0, "tier1": 1_000.0, "tier2": 1_000.0}

#: Hard caps on the work one request may ask for.
MAX_SERIES_DAYS = 366
MAX_TOP_VICTIMS = 1000


def _py(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays to canonical-JSON types."""
    if isinstance(value, dict):
        return {str(k): _py(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_py(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_py(v) for v in value.tolist()]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def canonical_json(payload: Any) -> bytes:
    """Serialize to byte-stable JSON: sorted keys, tight separators.

    ``allow_nan=False`` turns any non-finite float into a loud error
    instead of emitting ``NaN`` (invalid JSON) nondeterministically.
    """
    return json.dumps(
        _py(payload), sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _warm_probe(item: int) -> int:
    """No-op pool task: dispatching one per worker forces every worker
    process to exist (ProcessPoolExecutor forks lazily on submit)."""
    return item


def _dotted(ip: int) -> str:
    ip = int(ip)
    return f"{(ip >> 24) & 255}.{(ip >> 16) & 255}.{(ip >> 8) & 255}.{ip & 255}"


class ObservatoryService:
    """Builds endpoint payloads for one scenario world.

    The scenario is built lazily on the first request that needs it (a
    ``/v1/health`` probe right after boot answers immediately); the
    build is locked so concurrent first requests construct it once.
    """

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.scenario_config = config.scenario_config()
        self._scenario = None
        self._build_lock = threading.Lock()

    # -- world access --------------------------------------------------------

    @property
    def scenario_built(self) -> bool:
        return self._scenario is not None

    @property
    def scenario(self):
        """The built scenario, constructing it on first use (thread-safe)."""
        scenario = self._scenario
        if scenario is None:
            with self._build_lock:
                scenario = self._scenario
                if scenario is None:
                    scenario = self._scenario = build_scenario(self.config)
        return scenario

    def warm_pool(self) -> None:
        """Spawn the worker pool now, before any client socket exists.

        Under the ``fork`` start method a lazily-forked pool worker
        inherits every open file descriptor — including live client
        connections, which then never see EOF when the server closes
        them. The server calls this before it starts accepting, so the
        long-lived workers hold no connection fds. ``inline`` and
        single-job configs have no pool and return immediately.
        """
        n_jobs = resolve_jobs(self.config.jobs)
        if self.config.executor == "inline" or n_jobs <= 1:
            return
        pool = get_pool(self.scenario, n_jobs, self.config.executor)
        pool.map_with_deltas(_warm_probe, list(range(pool.workers)))

    # -- request-facing parsing helpers --------------------------------------

    def parse_day(self, text: str) -> int:
        """A ``YYYY-MM-DD`` request segment as a scenario day index.

        400 for unparseable dates, 404 for dates outside the scenario's
        day range (the resource genuinely does not exist).
        """
        try:
            date = parse_date(text)
        except ValueError:
            raise HttpError(
                400, f"invalid date {text!r} (expected YYYY-MM-DD)", close=False
            ) from None
        day = day_index(date)
        if not 0 <= day < self.scenario_config.n_days:
            first = date_of(0)
            last = date_of(self.scenario_config.n_days - 1)
            raise HttpError(
                404, f"date {text} outside the scenario window {first}..{last}", close=False
            )
        return day

    def parse_vantage(self, value: str | None) -> str:
        vantage = value or "ixp"
        if vantage not in VANTAGES:
            raise HttpError(
                400, f"unknown vantage {vantage!r} (choose from {'/'.join(VANTAGES)})",
                close=False,
            )
        return vantage

    # -- cache-tier accounting ------------------------------------------------

    def _resolve(self, fn: Callable[[], Any]) -> Any:
        """Run a pipeline access and count which cache tier satisfied it.

        Classification watches the shared day-cache counters across the
        call: any day neither memory nor disk could serve makes the
        request ``compute``; all memory misses absorbed by the durable
        tier make it ``disk``; otherwise ``mem``. Concurrent requests
        resolving other keys can skew the attribution of *this* one, but
        totals across requests stay exact.
        """
        cache = day_cache()
        before_misses = cache.misses
        before_disk_hits = cache.disk.hits if cache.disk is not None else 0
        result = fn()
        misses = cache.misses - before_misses
        disk_hits = (cache.disk.hits - before_disk_hits) if cache.disk is not None else 0
        if misses == 0:
            tier = "mem"
        elif disk_hits >= misses:
            tier = "disk"
        else:
            tier = "compute"
        metrics().inc(f"serve.cache_tier.{tier}")
        return result

    def _observed_day(self, day: int, vantage: str):
        scenario = self.scenario
        return self._resolve(
            lambda: observed_days(
                scenario,
                vantage,
                [day],
                jobs=self.config.jobs,
                cache=True,
                executor=self.config.executor,
                batch_days=self.config.batch_days,
            )[0]
        )

    # -- endpoint payloads ----------------------------------------------------

    def health_payload(self) -> dict[str, Any]:
        """Liveness probe: cheap, never builds the scenario."""
        from repro import __version__

        return {
            "status": "ok",
            "version": __version__,
            "scenario_built": self.scenario_built,
            "n_days": self.scenario_config.n_days,
            "first_date": str(TRAFFIC_EPOCH),
            "last_date": str(date_of(self.scenario_config.n_days - 1)),
        }

    def config_payload(self) -> dict[str, Any]:
        """Scenario identity, executor policy, and live cache statistics."""
        cache = day_cache()
        return {
            "scenario": {
                "content_hash": self.scenario_config.content_hash(),
                "preset": self.config.preset,
                "seed": self.config.seed,
                "scale": self.scenario_config.scale,
                "n_days": self.scenario_config.n_days,
                "takedown_day": self.scenario_config.takedown_day,
                "takedown_date": str(date_of(self.scenario_config.takedown_day)),
                "per_event_seeds": self.scenario_config.per_event_seeds,
            },
            "executor": {
                "mode": self.config.executor,
                "jobs": self.config.jobs,
                "batch_days": self.config.batch_days,
                "day_shards": self.config.day_shards,
            },
            "cache": cache.stats(),
            "vantages": list(VANTAGES),
        }

    def day_payload(self, date_text: str, vantage: str | None) -> dict[str, Any]:
        """Per-day observed-attack aggregates for ``/v1/days/{date}``."""
        vantage_name = self.parse_vantage(vantage)
        day = self.parse_day(date_text)
        scenario = self.scenario

        def fetch():
            # One resolve spans both pipeline accesses, so one request is
            # one cache-tier classification (the acceptance test pins
            # serve.cache_tier.compute == 1 for one uncomputed day).
            observed = observed_days(
                scenario,
                vantage_name,
                [day],
                jobs=self.config.jobs,
                cache=True,
                executor=self.config.executor,
                batch_days=self.config.batch_days,
            )[0]
            events = day_events(scenario, day, cache=True)
            return observed, events

        observed, events = self._resolve(fetch)
        ports = {
            name: selector.packets(observed) for name, selector in SELECTORS.items()
        }
        return {
            "date": date_text,
            "day_index": day,
            "vantage": vantage_name,
            "observed": {
                "flows": len(observed),
                "packets": int(observed["packets"].sum()),
                "bytes": int(observed["bytes"].sum()),
                "ports": ports,
            },
            "attacks": {
                "events": len(events),
                "victims": len({int(e.victim_ip) for e in events}),
                "peak_pps": max((float(e.total_pps) for e in events), default=0.0),
                "vectors": sorted({e.vector for e in events}),
            },
        }

    def series_payload(
        self,
        start_text: str,
        end_text: str,
        vantage: str | None,
        selector_csv: str | None,
        window_text: str | None,
    ) -> dict[str, Any]:
        """Takedown time-series for ``/v1/series/takedown``.

        ``start``/``end`` are inclusive dates; ``selectors`` a comma list
        of fig4 selector names (default: all); ``window`` optionally adds
        the paper's before/after significance analysis at that half-width
        when the range covers the takedown day.
        """
        vantage_name = self.parse_vantage(vantage)
        start_day = self.parse_day(start_text)
        end_day = self.parse_day(end_text)
        if end_day < start_day:
            raise HttpError(400, f"end {end_text} precedes start {start_text}", close=False)
        n_days = end_day - start_day + 1
        if n_days > MAX_SERIES_DAYS:
            raise HttpError(
                400, f"range of {n_days} days exceeds the {MAX_SERIES_DAYS}-day cap",
                close=False,
            )
        names = (
            [n.strip() for n in selector_csv.split(",") if n.strip()]
            if selector_csv
            else sorted(SELECTORS)
        )
        unknown = [n for n in names if n not in SELECTORS]
        if unknown:
            raise HttpError(
                400,
                f"unknown selectors {', '.join(unknown)} "
                f"(choose from {', '.join(sorted(SELECTORS))})",
                close=False,
            )
        selectors = [SELECTORS[n] for n in names]
        scenario = self.scenario
        days = list(range(start_day, end_day + 1))
        counts = self._resolve(
            lambda: daily_port_counts(
                scenario,
                vantage_name,
                selectors,
                days,
                jobs=self.config.jobs,
                cache=True,
                executor=self.config.executor,
                batch_days=self.config.batch_days,
            )
        )
        series = {
            name: [int(counts[day][name]) for day in days] for name in names
        }
        takedown_day = self.scenario_config.takedown_day
        payload: dict[str, Any] = {
            "vantage": vantage_name,
            "start": start_text,
            "end": end_text,
            "days": [str(date_of(day)) for day in days],
            "takedown_day": takedown_day,
            "takedown_date": str(date_of(takedown_day)),
            "series": series,
        }
        if window_text is not None:
            payload["analysis"] = self._series_analysis(
                series, days, takedown_day, window_text
            )
        return payload

    def _series_analysis(
        self,
        series: dict[str, list[int]],
        days: list[int],
        takedown_day: int,
        window_text: str,
    ) -> dict[str, Any]:
        try:
            window = int(window_text)
        except ValueError:
            raise HttpError(400, f"invalid window {window_text!r}", close=False) from None
        if window < 2:
            raise HttpError(400, "window must be >= 2 days", close=False)
        if takedown_day not in days:
            raise HttpError(
                400, "analysis window requires the range to cover the takedown day",
                close=False,
            )
        takedown_index = days.index(takedown_day)
        analysis = {}
        for name, values in series.items():
            try:
                report = analyze_takedown(
                    np.asarray(values, dtype=float),
                    takedown_index,
                    windows=(window,),
                    series_name=name,
                )
            except ValueError as exc:
                raise HttpError(400, f"analysis window invalid: {exc}", close=False) from None
            result = report.window(window)
            analysis[name] = {
                "window": window,
                "significant": bool(result.significant),
                "reduction_ratio": float(result.reduction_ratio),
            }
        return analysis

    def victims_payload(
        self, date_text: str, vantage: str | None, top_text: str | None
    ) -> dict[str, Any]:
        """Top-N victimization stats for ``/v1/victims/top``."""
        vantage_name = self.parse_vantage(vantage)
        day = self.parse_day(date_text)
        try:
            top = int(top_text) if top_text is not None else 10
        except ValueError:
            raise HttpError(400, f"invalid top {top_text!r}", close=False) from None
        if not 1 <= top <= MAX_TOP_VICTIMS:
            raise HttpError(
                400, f"top must be in [1, {MAX_TOP_VICTIMS}], got {top}", close=False
            )
        observed = self._observed_day(day, vantage_name)
        report = victim_report(observed, sampling_factor=VP_SAMPLING[vantage_name])
        stats = report.stats
        peak = report.peak_gbps
        # Deterministic ranking: peak Gbps descending, destination IP as
        # the tie-break so equal peaks never reorder run to run.
        order = np.lexsort((stats.destinations, -peak))[:top]
        victims = [
            {
                "ip": _dotted(stats.destinations[i]),
                "peak_gbps": float(peak[i]),
                "unique_sources": int(stats.unique_sources[i]),
                "max_sources_per_min": int(stats.max_sources_per_bin[i]),
            }
            for i in order
        ]
        return {
            "date": date_text,
            "day_index": day,
            "vantage": vantage_name,
            "sampling_factor": VP_SAMPLING[vantage_name],
            "n_destinations": report.n_destinations,
            "victims_above_1gbps": report.victims_above_gbps(1.0),
            "victims": victims,
        }

    def day_events_payload(self, day: int) -> list[dict[str, Any]]:
        """Ground-truth attack events of one day, as SSE-ready dicts."""
        events = self._resolve(
            lambda: day_events(self.scenario, day, cache=True)
        )
        date_text = str(date_of(day))
        return [
            {
                "date": date_text,
                "day_index": day,
                "booter": event.booter,
                "vector": event.vector,
                "victim_ip": _dotted(event.victim_ip),
                "victim_asn": int(event.victim_asn),
                "start_s": float(event.start_time),
                "duration_s": float(event.duration_s),
                "total_pps": float(event.total_pps),
                "reflectors": int(event.reflector_ips.size),
            }
            for event in events
        ]
