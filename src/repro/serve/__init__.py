"""Observatory-as-a-service: an async query/serving plane over the day cache.

The experiment substrate built in PRs 1-6 — the in-memory
:class:`~repro.core.parallel.DayResultCache`, the shared-memory result
transport, the durable :class:`~repro.core.diskcache.DiskDayCache`, and
the warm :mod:`repro.core.workerpool` — is exactly what a long-running
service needs to hand takedown time-series and victim statistics to many
concurrent clients. This package is that service:

* :mod:`repro.serve.http` — a dependency-free HTTP/1.1 request parser
  and response writer (the environment is offline: stdlib only, built on
  ``asyncio.start_server``), with hard limits on header/body sizes and a
  read timeout against slow-loris clients;
* :mod:`repro.serve.singleflight` — async request coalescing: N
  concurrent requests for the same uncomputed resource trigger exactly
  one pipeline run and share its bytes;
* :mod:`repro.serve.ratelimit` — per-client token buckets behind 429s;
* :mod:`repro.serve.service` — the domain layer resolving every request
  through the cache tiers (memory -> disk -> warm-pool compute) and
  producing canonical (byte-stable) JSON payloads;
* :mod:`repro.serve.routes` — the endpoint table: ``/v1/health``,
  ``/v1/config``, ``/v1/days/{date}``, ``/v1/series/takedown``,
  ``/v1/victims/top``, and the ``/v1/events/stream`` SSE feed;
* :mod:`repro.serve.sse` — Server-Sent Events framing for the live
  attack-map-style event replay;
* :mod:`repro.serve.server` — the ``repro-serve`` console entry point
  tying it together (``--host/--port/--cache-dir/--jobs/--executor``).

Everything the service returns is derived from the same deterministic
day pipeline the experiments use, so responses are byte-identical across
executors, cold vs warm caches, and server restarts.
"""

from repro.serve.http import (
    HttpError,
    HttpLimits,
    Request,
    Response,
    parse_request_head,
)
from repro.serve.ratelimit import RateLimiter, TokenBucket
from repro.serve.routes import build_router
from repro.serve.server import ObservatoryServer
from repro.serve.service import ObservatoryService, canonical_json
from repro.serve.singleflight import SingleFlight

__all__ = [
    "HttpError",
    "HttpLimits",
    "ObservatoryServer",
    "ObservatoryService",
    "RateLimiter",
    "Request",
    "Response",
    "SingleFlight",
    "TokenBucket",
    "build_router",
    "canonical_json",
    "parse_request_head",
]
