"""Endpoint table of the observatory server.

Routes map ``(method, /path/{param}/pattern)`` to async handlers.
Handlers receive the parsed :class:`~repro.serve.http.Request`, the
matched path params, and the :class:`ServeContext` — the server's
service, single-flight table, and bounded compute semaphore. Compute
endpoints all funnel through :func:`cached_payload_bytes`:

    single-flight (coalesce concurrent identical requests)
      -> compute semaphore (bound pipeline concurrency)
        -> worker thread (the blocking cache/pipeline access)

so N concurrent requests for the same uncomputed resource cost one
pipeline run and the pool is never oversubscribed by unrelated
requests.
"""

from __future__ import annotations

import asyncio
import datetime
import json
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Awaitable, Callable

from repro.obs import metrics
from repro.obs.expo import EXPO_CONTENT_TYPE, render_exposition
from repro.obs.window import RollingWindow
from repro.serve import sse
from repro.serve.http import HttpError, Request, Response
from repro.serve.service import ObservatoryService, canonical_json
from repro.serve.singleflight import SingleFlight
from repro.timeutil import date_of

__all__ = [
    "Router",
    "ServeContext",
    "ServerState",
    "StreamingResponse",
    "build_router",
    "cached_payload_bytes",
]

#: Cap on SSE replay volume per request (events, then the stream ends).
MAX_STREAM_EVENTS = 10_000

#: Seconds of stream silence before an SSE comment heartbeat is sent so
#: idle ``/v1/events/stream`` clients (waiting on a slow day compute)
#: don't trip proxy/read timeouts. Tests shrink this via monkeypatch.
SSE_HEARTBEAT_S = 15.0


@dataclass
class ServerState:
    """Live operational state of one server instance.

    Written by the server's exchange loop, read by the health/metrics
    handlers. ``windows`` feeds the rolling-window SLO snapshots in
    ``/v1/health``; ``access_log`` is the structured JSONL writer (or
    ``None`` when ``--access-log`` is off).
    """

    started_at_wall: float = field(default_factory=time.time)
    started_at_mono: float = field(default_factory=time.monotonic)
    windows: RollingWindow | None = None
    access_log: Any = None
    active_connections: int = 0

    def uptime_s(self) -> float:
        return time.monotonic() - self.started_at_mono

    def started_at_iso(self) -> str:
        started = datetime.datetime.fromtimestamp(
            self.started_at_wall, tz=datetime.timezone.utc
        )
        return started.isoformat(timespec="seconds").replace("+00:00", "Z")


@dataclass
class ServeContext:
    """Shared per-server state handlers resolve requests against."""

    service: ObservatoryService
    flights: SingleFlight = field(default_factory=SingleFlight)
    compute_semaphore: asyncio.Semaphore | None = None
    state: ServerState | None = None

    async def compute(self, fn: Callable[[], Any]) -> Any:
        """Run blocking pipeline work in a thread, bounded by the semaphore."""
        if self.compute_semaphore is None:
            return await asyncio.to_thread(fn)
        async with self.compute_semaphore:
            return await asyncio.to_thread(fn)


@dataclass
class StreamingResponse:
    """A chunked (SSE) response: head now, body chunks as they come."""

    chunks: AsyncIterator[bytes]
    status: int = 200
    content_type: str = "text/event-stream"
    headers: tuple[tuple[str, str], ...] = (("Cache-Control", "no-store"),)


Handler = Callable[[Request, dict[str, str], ServeContext], Awaitable[Response | StreamingResponse]]


async def cached_payload_bytes(
    ctx: ServeContext, key: tuple, fn: Callable[[], Any]
) -> bytes:
    """Canonical JSON bytes of ``fn()``, deduplicated across waiters.

    The single-flight result is the serialized payload, so every
    coalesced waiter writes bit-identical bytes to its client.
    """

    async def factory() -> bytes:
        payload = await ctx.compute(fn)
        return canonical_json(payload)

    return await ctx.flights.run(key, factory)


class Router:
    """Literal-and-``{param}`` path matcher with method dispatch."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` on ``pattern``.

        Pattern segments are literals or ``{name}`` captures, e.g.
        ``/v1/days/{date}``.
        """
        if not pattern.startswith("/"):
            raise ValueError(f"pattern must start with '/': {pattern!r}")
        self._routes.append((method.upper(), tuple(pattern.strip("/").split("/")), handler))

    @staticmethod
    def _match(segments: tuple[str, ...], path: str) -> dict[str, str] | None:
        parts = path.strip("/").split("/") if path.strip("/") else []
        if len(parts) != len(segments):
            return None
        params: dict[str, str] = {}
        for segment, part in zip(segments, parts):
            if segment.startswith("{") and segment.endswith("}"):
                if not part:
                    return None
                params[segment[1:-1]] = part
            elif segment != part:
                return None
        return params

    async def dispatch(
        self, request: Request, ctx: ServeContext
    ) -> Response | StreamingResponse:
        """Route a request: 404 unknown path, 405 known path wrong method.

        ``HEAD`` is served through the matching ``GET`` handler with the
        body stripped by the server, per RFC 9110.
        """
        method = "GET" if request.method == "HEAD" else request.method
        allowed: list[str] = []
        for route_method, segments, handler in self._routes:
            params = self._match(segments, request.path)
            if params is None:
                continue
            if route_method == method:
                return await handler(request, params, ctx)
            allowed.append(route_method)
        if allowed:
            raise HttpError(
                405,
                f"{request.method} not allowed on {request.path} "
                f"(allowed: {', '.join(sorted(set(allowed)))})",
                close=False,
            )
        raise HttpError(404, f"no such resource: {request.path}", close=False)


# -- handlers ------------------------------------------------------------------


async def handle_health(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/health`` — liveness, never builds the scenario.

    With server state attached the probe doubles as an SLO check:
    uptime, start time, package version, active connections, and 1m/5m
    rolling-window snapshots (RPS, p50/p99 latency, error rate, SLO
    burn).
    """
    payload = ctx.service.health_payload()
    state = ctx.state
    if state is not None:
        payload["uptime_seconds"] = round(state.uptime_s(), 3)
        payload["started_at"] = state.started_at_iso()
        payload["active_connections"] = state.active_connections
        if state.windows is not None:
            payload["slo"] = {
                "1m": state.windows.snapshot(60).to_dict(),
                "5m": state.windows.snapshot(300).to_dict(),
            }
    return Response(body=canonical_json(payload))


def _window_gauges(state: ServerState) -> dict[str, float]:
    """Point-in-time serve gauges that live outside the registry."""
    gauges: dict[str, float] = {
        "serve.active_connections": float(state.active_connections),
        "serve.uptime_s": state.uptime_s(),
    }
    if state.windows is not None:
        for window_s, label in ((60, "1m"), (300, "5m")):
            snap = state.windows.snapshot(window_s)
            gauges[f"serve.window.rps.{label}"] = snap.rps
            gauges[f"serve.window.error_rate.{label}"] = snap.error_rate
            gauges[f"serve.window.slo_burn.{label}"] = snap.slo_burn
            if snap.p50_s is not None:
                gauges[f"serve.window.p50_s.{label}"] = snap.p50_s
            if snap.p99_s is not None:
                gauges[f"serve.window.p99_s.{label}"] = snap.p99_s
    return gauges


async def handle_metrics(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/metrics`` — the live registry in Prometheus exposition.

    Renders whatever the active registry has accumulated (``serve.*``,
    ``cache.*``, ``pool.*``, plus the deterministic pipeline families),
    with rolling-window rates and connection counts riding along as
    extra gauges. A disabled registry renders its (empty) contents
    rather than erroring, so the endpoint is always scrape-safe.
    """
    registry = metrics()
    extra = _window_gauges(ctx.state) if ctx.state is not None else None
    body = render_exposition(registry, extra_gauges=extra)
    return Response(body=body, content_type=EXPO_CONTENT_TYPE)


async def handle_config(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/config`` — scenario hash, executor policy, cache stats."""
    return Response(body=canonical_json(ctx.service.config_payload()))


async def handle_day(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/days/{date}`` — per-day observed + attack aggregates."""
    service = ctx.service
    vantage = request.param("vantage")
    key = ("day", params["date"], vantage or "ixp")
    body = await cached_payload_bytes(
        ctx, key, lambda: service.day_payload(params["date"], vantage)
    )
    return Response(body=body)


async def handle_series(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/series/takedown`` — daily selector series over a range."""
    service = ctx.service
    config = service.scenario_config
    default_start = str(date_of(max(0, config.takedown_day - 10)))
    default_end = str(
        date_of(min(config.n_days - 1, config.takedown_day + 10))
    )
    start = request.param("start", default_start)
    end = request.param("end", default_end)
    selectors = request.param("selectors")
    window = request.param("window")
    vantage = request.param("vantage")
    key = ("series", start, end, vantage or "ixp", selectors, window)
    body = await cached_payload_bytes(
        ctx,
        key,
        lambda: service.series_payload(start, end, vantage, selectors, window),
    )
    return Response(body=body)


async def handle_victims(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/victims/top`` — top-N victims by renormalized peak Gbps."""
    service = ctx.service
    config = service.scenario_config
    date = request.param("date", str(date_of(config.takedown_day - 1)))
    vantage = request.param("vantage")
    top = request.param("top")
    key = ("victims", date, vantage or "ixp", top or "10")
    body = await cached_payload_bytes(
        ctx, key, lambda: service.victims_payload(date, vantage, top)
    )
    return Response(body=body)


async def handle_events_stream(
    request: Request, params: dict[str, str], ctx: ServeContext
) -> StreamingResponse:
    """``GET /v1/events/stream`` — SSE replay of a day range's attacks."""
    service = ctx.service
    config = service.scenario_config
    start = request.param("start", str(date_of(config.takedown_day - 1)))
    end = request.param("end", str(date_of(config.takedown_day)))
    # Parse up front so malformed ranges 400 before the stream commits a
    # 200 status line.
    start_day = service.parse_day(start)
    end_day = service.parse_day(end)
    if end_day < start_day:
        raise HttpError(400, f"end {end} precedes start {start}", close=False)
    try:
        limit = int(request.param("limit", str(MAX_STREAM_EVENTS)))
    except ValueError:
        raise HttpError(400, "invalid limit", close=False) from None
    limit = max(1, min(limit, MAX_STREAM_EVENTS))

    async def chunks() -> AsyncIterator[bytes]:
        yield sse.RETRY_PREAMBLE
        sent = 0
        for day in range(start_day, end_day + 1):
            key = ("events", day)
            # A cold day can take seconds to compute; keep the idle
            # stream alive with comment heartbeats so proxies and client
            # read timeouts don't drop the connection meanwhile.
            task = asyncio.ensure_future(
                cached_payload_bytes(
                    ctx, key, lambda day=day: service.day_events_payload(day)
                )
            )
            try:
                while True:
                    done, _ = await asyncio.wait({task}, timeout=SSE_HEARTBEAT_S)
                    if done:
                        raw = task.result()
                        break
                    yield sse.format_comment("heartbeat")
                    metrics().inc("serve.sse_heartbeats")
            finally:
                task.cancel()
            events = json.loads(raw)
            yield sse.format_comment(f"day {date_of(day)} ({len(events)} events)")
            for i, event in enumerate(events):
                yield sse.format_event(event, event="attack", event_id=f"{day}-{i}")
                sent += 1
                metrics().inc("serve.sse_events")
                if sent >= limit:
                    break
            if sent >= limit:
                break
        yield sse.format_event({"events_sent": sent}, event="end")

    return StreamingResponse(chunks=chunks())


def build_router() -> Router:
    """The default endpoint table."""
    router = Router()
    router.add("GET", "/v1/health", handle_health)
    router.add("GET", "/v1/metrics", handle_metrics)
    router.add("GET", "/v1/config", handle_config)
    router.add("GET", "/v1/days/{date}", handle_day)
    router.add("GET", "/v1/series/takedown", handle_series)
    router.add("GET", "/v1/victims/top", handle_victims)
    router.add("GET", "/v1/events/stream", handle_events_stream)
    return router
