"""Endpoint table of the observatory server.

Routes map ``(method, /path/{param}/pattern)`` to async handlers.
Handlers receive the parsed :class:`~repro.serve.http.Request`, the
matched path params, and the :class:`ServeContext` — the server's
service, single-flight table, and bounded compute semaphore. Compute
endpoints all funnel through :func:`cached_payload_bytes`:

    single-flight (coalesce concurrent identical requests)
      -> compute semaphore (bound pipeline concurrency)
        -> worker thread (the blocking cache/pipeline access)

so N concurrent requests for the same uncomputed resource cost one
pipeline run and the pool is never oversubscribed by unrelated
requests.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Awaitable, Callable

from repro.obs import metrics
from repro.serve import sse
from repro.serve.http import HttpError, Request, Response
from repro.serve.service import ObservatoryService, canonical_json
from repro.serve.singleflight import SingleFlight
from repro.timeutil import date_of

__all__ = [
    "Router",
    "ServeContext",
    "StreamingResponse",
    "build_router",
    "cached_payload_bytes",
]

#: Cap on SSE replay volume per request (events, then the stream ends).
MAX_STREAM_EVENTS = 10_000


@dataclass
class ServeContext:
    """Shared per-server state handlers resolve requests against."""

    service: ObservatoryService
    flights: SingleFlight = field(default_factory=SingleFlight)
    compute_semaphore: asyncio.Semaphore | None = None

    async def compute(self, fn: Callable[[], Any]) -> Any:
        """Run blocking pipeline work in a thread, bounded by the semaphore."""
        if self.compute_semaphore is None:
            return await asyncio.to_thread(fn)
        async with self.compute_semaphore:
            return await asyncio.to_thread(fn)


@dataclass
class StreamingResponse:
    """A chunked (SSE) response: head now, body chunks as they come."""

    chunks: AsyncIterator[bytes]
    status: int = 200
    content_type: str = "text/event-stream"
    headers: tuple[tuple[str, str], ...] = (("Cache-Control", "no-store"),)


Handler = Callable[[Request, dict[str, str], ServeContext], Awaitable[Response | StreamingResponse]]


async def cached_payload_bytes(
    ctx: ServeContext, key: tuple, fn: Callable[[], Any]
) -> bytes:
    """Canonical JSON bytes of ``fn()``, deduplicated across waiters.

    The single-flight result is the serialized payload, so every
    coalesced waiter writes bit-identical bytes to its client.
    """

    async def factory() -> bytes:
        payload = await ctx.compute(fn)
        return canonical_json(payload)

    return await ctx.flights.run(key, factory)


class Router:
    """Literal-and-``{param}`` path matcher with method dispatch."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` on ``pattern``.

        Pattern segments are literals or ``{name}`` captures, e.g.
        ``/v1/days/{date}``.
        """
        if not pattern.startswith("/"):
            raise ValueError(f"pattern must start with '/': {pattern!r}")
        self._routes.append((method.upper(), tuple(pattern.strip("/").split("/")), handler))

    @staticmethod
    def _match(segments: tuple[str, ...], path: str) -> dict[str, str] | None:
        parts = path.strip("/").split("/") if path.strip("/") else []
        if len(parts) != len(segments):
            return None
        params: dict[str, str] = {}
        for segment, part in zip(segments, parts):
            if segment.startswith("{") and segment.endswith("}"):
                if not part:
                    return None
                params[segment[1:-1]] = part
            elif segment != part:
                return None
        return params

    async def dispatch(
        self, request: Request, ctx: ServeContext
    ) -> Response | StreamingResponse:
        """Route a request: 404 unknown path, 405 known path wrong method.

        ``HEAD`` is served through the matching ``GET`` handler with the
        body stripped by the server, per RFC 9110.
        """
        method = "GET" if request.method == "HEAD" else request.method
        allowed: list[str] = []
        for route_method, segments, handler in self._routes:
            params = self._match(segments, request.path)
            if params is None:
                continue
            if route_method == method:
                return await handler(request, params, ctx)
            allowed.append(route_method)
        if allowed:
            raise HttpError(
                405,
                f"{request.method} not allowed on {request.path} "
                f"(allowed: {', '.join(sorted(set(allowed)))})",
                close=False,
            )
        raise HttpError(404, f"no such resource: {request.path}", close=False)


# -- handlers ------------------------------------------------------------------


async def handle_health(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/health`` — liveness, never builds the scenario."""
    return Response(body=canonical_json(ctx.service.health_payload()))


async def handle_config(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/config`` — scenario hash, executor policy, cache stats."""
    return Response(body=canonical_json(ctx.service.config_payload()))


async def handle_day(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/days/{date}`` — per-day observed + attack aggregates."""
    service = ctx.service
    vantage = request.param("vantage")
    key = ("day", params["date"], vantage or "ixp")
    body = await cached_payload_bytes(
        ctx, key, lambda: service.day_payload(params["date"], vantage)
    )
    return Response(body=body)


async def handle_series(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/series/takedown`` — daily selector series over a range."""
    service = ctx.service
    config = service.scenario_config
    default_start = str(date_of(max(0, config.takedown_day - 10)))
    default_end = str(
        date_of(min(config.n_days - 1, config.takedown_day + 10))
    )
    start = request.param("start", default_start)
    end = request.param("end", default_end)
    selectors = request.param("selectors")
    window = request.param("window")
    vantage = request.param("vantage")
    key = ("series", start, end, vantage or "ixp", selectors, window)
    body = await cached_payload_bytes(
        ctx,
        key,
        lambda: service.series_payload(start, end, vantage, selectors, window),
    )
    return Response(body=body)


async def handle_victims(request: Request, params: dict[str, str], ctx: ServeContext) -> Response:
    """``GET /v1/victims/top`` — top-N victims by renormalized peak Gbps."""
    service = ctx.service
    config = service.scenario_config
    date = request.param("date", str(date_of(config.takedown_day - 1)))
    vantage = request.param("vantage")
    top = request.param("top")
    key = ("victims", date, vantage or "ixp", top or "10")
    body = await cached_payload_bytes(
        ctx, key, lambda: service.victims_payload(date, vantage, top)
    )
    return Response(body=body)


async def handle_events_stream(
    request: Request, params: dict[str, str], ctx: ServeContext
) -> StreamingResponse:
    """``GET /v1/events/stream`` — SSE replay of a day range's attacks."""
    service = ctx.service
    config = service.scenario_config
    start = request.param("start", str(date_of(config.takedown_day - 1)))
    end = request.param("end", str(date_of(config.takedown_day)))
    # Parse up front so malformed ranges 400 before the stream commits a
    # 200 status line.
    start_day = service.parse_day(start)
    end_day = service.parse_day(end)
    if end_day < start_day:
        raise HttpError(400, f"end {end} precedes start {start}", close=False)
    try:
        limit = int(request.param("limit", str(MAX_STREAM_EVENTS)))
    except ValueError:
        raise HttpError(400, "invalid limit", close=False) from None
    limit = max(1, min(limit, MAX_STREAM_EVENTS))

    async def chunks() -> AsyncIterator[bytes]:
        yield sse.RETRY_PREAMBLE
        sent = 0
        for day in range(start_day, end_day + 1):
            key = ("events", day)
            raw = await cached_payload_bytes(
                ctx, key, lambda day=day: service.day_events_payload(day)
            )
            events = json.loads(raw)
            yield sse.format_comment(f"day {date_of(day)} ({len(events)} events)")
            for i, event in enumerate(events):
                yield sse.format_event(event, event="attack", event_id=f"{day}-{i}")
                sent += 1
                metrics().inc("serve.sse_events")
                if sent >= limit:
                    break
            if sent >= limit:
                break
        yield sse.format_event({"events_sent": sent}, event="end")

    return StreamingResponse(chunks=chunks())


def build_router() -> Router:
    """The default endpoint table."""
    router = Router()
    router.add("GET", "/v1/health", handle_health)
    router.add("GET", "/v1/config", handle_config)
    router.add("GET", "/v1/days/{date}", handle_day)
    router.add("GET", "/v1/series/takedown", handle_series)
    router.add("GET", "/v1/victims/top", handle_victims)
    router.add("GET", "/v1/events/stream", handle_events_stream)
    return router
