"""Server-Sent Events framing for the live attack-event replay feed.

``/v1/events/stream`` replays a day range's ground-truth attack events
as a ``text/event-stream`` — the transport an attack-map-style client
consumes with a plain ``EventSource``. Framing follows the WHATWG
EventSource rules: one ``event:``/``id:``/``data:`` block per event,
terminated by a blank line; payload lines are JSON, so multi-line
splitting never arises, but :func:`format_event` still splits on
newlines defensively (a bare newline inside a ``data:`` value would
desynchronize the stream).
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["format_event", "format_comment", "RETRY_PREAMBLE"]

#: Stream preamble: tells clients to wait 5 s before reconnecting.
RETRY_PREAMBLE = b"retry: 5000\n\n"


def format_comment(text: str) -> bytes:
    """A ``: comment`` frame (keep-alive / day-boundary marker)."""
    safe = text.replace("\n", " ").replace("\r", " ")
    return f": {safe}\n\n".encode("utf-8")


def format_event(
    data: Any, event: str | None = None, event_id: str | None = None
) -> bytes:
    """One SSE frame with JSON-encoded ``data``.

    ``data`` is serialized compactly (sorted keys, so frames are
    byte-stable like every other payload the server emits).
    """
    lines: list[str] = []
    if event is not None:
        lines.append(f"event: {event}")
    if event_id is not None:
        lines.append(f"id: {event_id}")
    encoded = json.dumps(data, sort_keys=True, separators=(",", ":"), allow_nan=False)
    for chunk in encoded.split("\n"):
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")
