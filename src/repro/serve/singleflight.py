"""Async request coalescing: one compute per key, shared by all waiters.

A thousand clients asking for the same uncomputed day must trigger one
pipeline run, not a thousand. :class:`SingleFlight` keys in-flight
computations: the first caller for a key becomes the *leader* and runs
the factory; every caller that arrives while the leader is still running
becomes a *follower* and awaits the same future. Followers are counted
as ``serve.singleflight_hits`` — the dedup ratio the load-test benchmark
reports is hits over total calls.

The flight table only coalesces *concurrent* callers: the key is removed
the moment the leader finishes, so results are never cached here —
caching across time is the day cache's job, coalescing across waiters is
this module's.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from repro.obs import metrics

__all__ = ["SingleFlight"]


class SingleFlight:
    """Deduplicate concurrent async computations by key.

    All methods must be called from one event loop (the server's); the
    flight table is loop-confined state and needs no lock.
    """

    def __init__(self) -> None:
        self._inflight: dict[Any, asyncio.Future] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(self, key: Any, factory: Callable[[], Awaitable[Any]]) -> Any:
        """The result of ``factory()`` for ``key``, shared while in flight.

        The leader's exception propagates to every waiter of that
        flight; the next caller after the flight resolves starts a fresh
        one. A follower being cancelled never cancels the leader's
        computation (the shared future is shielded).
        """
        registry = metrics()
        existing = self._inflight.get(key)
        if existing is not None:
            registry.inc("serve.singleflight_hits")
            return await asyncio.shield(existing)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        registry.inc("serve.singleflight_leaders")
        try:
            result = await factory()
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                # Touch the exception so a flight with zero followers does
                # not log "exception was never retrieved" at GC time.
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)
