"""Per-client token-bucket rate limiting for the observatory server.

One :class:`TokenBucket` per client (peer address), kept in a bounded
LRU so an address-rotating scanner cannot grow server memory without
bound. The clock is injectable, so the refill math is tested without
sleeping.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "_clock", "_last")

    def __init__(
        self, rate: float, burst: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def allow(self, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; refill by elapsed time."""
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class RateLimiter:
    """Bounded map of per-client token buckets.

    ``rate=None`` disables limiting entirely (every request allowed) —
    the in-process tests and benchmark drive the server far above any
    sensible public limit.
    """

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_clients <= 0:
            raise ValueError("max_clients must be positive")
        self.rate = rate
        self.burst = float(burst) if burst is not None else (rate or 0.0) * 2
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: OrderedDict[object, TokenBucket] = OrderedDict()
        self.rejected = 0

    def allow(self, client: object, cost: float = 1.0) -> bool:
        """Whether ``client`` may spend ``cost`` tokens right now."""
        if self.rate is None:
            return True
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self._clock)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        allowed = bucket.allow(cost)
        if not allowed:
            self.rejected += 1
        return allowed
