"""Persistent on-disk tier for the day-result cache.

The in-memory :class:`~repro.core.parallel.DayResultCache` dies with the
process; re-running a 122-day campaign regenerates every day from
scratch. This module adds the durable tier: each cached flow table is
written as one file in the :mod:`repro.flows.binio` fixed-record format
(header + contiguous :data:`~repro.flows.records.RECORD_DTYPE` records)
next to a small JSON sidecar carrying the schema version, the full
cache key, the ``scenario.*`` counter deltas to replay on a hit, and a
sha256 of the record bytes. Reads go through ``np.memmap`` and the
zero-copy :meth:`FlowTable.from_structured` path, so a disk hit costs
one page-cache-backed mapping plus a checksum pass — no parse, no
object churn.

Entries are content-addressed: the filename is the sha256 of the cache
key's ``repr``, and the key embeds ``ScenarioConfig.content_hash()``
(seed included) plus the takedown fingerprint. Change anything about
the world and the key digest changes with it — invalidation is
automatic, stale entries are merely unreferenced files that age out of
the byte-bounded LRU (mtime order, refreshed on hit).

Corruption is expected, not exceptional: a bad magic, a truncated
payload, a sha mismatch, or a mangled sidecar makes the entry a counted
miss (``cache.disk_corrupt``) and deletes the files — it never fails
the run. Writes are crash-safe via tmp-file + ``os.replace``, data file
before sidecar, so an interrupted write can only leave an orphan that
reads as corrupt.

Two value lanes share the store. Flow tables (the expensive values —
observed and attack day tables) go through the record format above.
Small derived reductions whose values are JSON-exact (per-port count
dicts: string keys, int values) ride entirely in the sidecar with an
empty record file, guarded by a round-trip equality check so anything
JSON would distort — tuples, numpy scalars, event objects — is simply
declined and stays memory-only.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

import numpy as np

from repro.flows.binio import HEADER, MAGIC
from repro.flows.records import RECORD_DTYPE, FlowTable
from repro.obs.metrics import metrics

__all__ = ["DiskDayCache", "SIDECAR_SCHEMA", "DEFAULT_MAX_BYTES"]

#: Sidecar schema identifier; bump on any layout change so old caches
#: read as misses instead of misparsing.
SIDECAR_SCHEMA = "repro.diskcache/1"

#: Default eviction budget for the data files (2 GiB ~= 40M records).
DEFAULT_MAX_BYTES = 2 << 30


def key_digest(key: tuple) -> str:
    """Stable filename digest for a day-cache key (sha256 of its repr)."""
    return hashlib.sha256(repr(key).encode()).hexdigest()


class DiskDayCache:
    """Byte-bounded, content-addressed on-disk store of day flow tables.

    Values move through the same ``(value, deltas)`` tuples the in-memory
    cache stores: :meth:`put` accepts ``(FlowTable, deltas-or-None)`` and
    silently declines anything else; :meth:`get` returns that tuple or
    ``None``. Attach one to the in-memory cache with
    :meth:`DayResultCache.attach_disk` and the tiers compose — memory
    miss consults disk, disk hit promotes back into memory.

    All index mutations and file writes happen under one re-entrant
    lock: the serving plane reads from ``asyncio.to_thread`` workers
    while pipeline write-throughs land from other threads, and the LRU
    index (OrderedDict plus the ``resident_bytes`` tally) is not safe
    under concurrent mutation.
    """

    def __init__(self, root: str | Path, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.corrupt = 0
        #: digest -> data-file size, in LRU order (oldest mtime first).
        self._index: OrderedDict[str, int] = OrderedDict()
        self.resident_bytes = 0
        self._scan()

    # -- index maintenance ----------------------------------------------------

    def _data_path(self, digest: str) -> Path:
        return self.root / f"{digest}.rfl"

    def _sidecar_path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def _scan(self) -> None:
        """Rebuild the LRU index from the directory (mtime order)."""
        entries = []
        for data in self.root.glob("*.rfl"):
            try:
                stat = data.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, data.stem, stat.st_size))
        entries.sort()
        self._index = OrderedDict((digest, size) for _, digest, size in entries)
        self.resident_bytes = sum(self._index.values())

    def _drop(self, digest: str) -> None:
        self.resident_bytes -= self._index.pop(digest, 0)
        for path in (self._data_path(digest), self._sidecar_path(digest)):
            try:
                path.unlink()
            except OSError:
                pass

    # -- the cache protocol ---------------------------------------------------

    def get(self, key: tuple) -> tuple[FlowTable, dict[str, float] | None] | None:
        """The stored ``(table, deltas)`` for ``key``, or ``None``.

        Any validation failure — schema drift, key collision, bad magic,
        truncation, checksum mismatch — deletes the entry and counts as
        a corrupt miss rather than raising.
        """
        with self._lock:
            digest = key_digest(key)
            data_path = self._data_path(digest)
            if not data_path.exists():
                self.misses += 1
                metrics().inc("cache.disk_misses")
                return None
            try:
                entry = self._load(key, digest, data_path)
            except Exception:
                self._drop(digest)
                self.corrupt += 1
                self.misses += 1
                registry = metrics()
                registry.inc("cache.disk_corrupt")
                registry.inc("cache.disk_misses")
                return None
            self.hits += 1
            metrics().inc("cache.disk_hits")
            if digest in self._index:
                self._index.move_to_end(digest)
            try:
                # Refresh mtime so a directory re-scan preserves LRU order.
                os.utime(data_path)
            except OSError:
                pass
            return entry

    def _load(
        self, key: tuple, digest: str, data_path: Path
    ) -> tuple[Any, dict[str, float] | None]:
        sidecar = json.loads(self._sidecar_path(digest).read_text())
        if sidecar.get("schema") != SIDECAR_SCHEMA:
            raise ValueError(f"sidecar schema {sidecar.get('schema')!r}")
        if sidecar.get("key") != repr(key):
            raise ValueError("key repr mismatch (digest collision or tamper)")
        kind = sidecar.get("kind", "table")
        n_records = int(sidecar["n_records"])
        size = data_path.stat().st_size
        if size != HEADER.size + n_records * RECORD_DTYPE.itemsize:
            raise ValueError(f"data file is {size} bytes, expected header + {n_records} records")
        with data_path.open("rb") as fh:
            magic, count = HEADER.unpack(fh.read(HEADER.size))
        if magic != MAGIC:
            raise ValueError(f"bad magic {magic!r}")
        if count != n_records:
            raise ValueError(f"header declares {count} records, sidecar {n_records}")
        if n_records == 0:
            records = np.empty(0, dtype=RECORD_DTYPE)
        else:
            records = np.memmap(data_path, dtype=RECORD_DTYPE, mode="r", offset=HEADER.size)
        if hashlib.sha256(records).hexdigest() != sidecar["sha256"]:
            raise ValueError("record checksum mismatch")
        deltas = sidecar.get("deltas")
        if deltas is not None:
            # Keep JSON-native numeric types: counters incremented with
            # ints must replay as ints, or the canonical counter digest
            # (which distinguishes 162 from 162.0) would drift.
            deltas = {str(name): value for name, value in deltas.items()}
        if kind == "json":
            if n_records != 0:
                raise ValueError("json entry with a non-empty record file")
            return sidecar["value"], deltas
        if kind != "table":
            raise ValueError(f"unknown entry kind {kind!r}")
        return FlowTable.from_structured(records), deltas

    def put(self, key: tuple, value: Any) -> bool:
        """Persist a ``(value, deltas)`` entry; returns True if stored.

        Flow tables use the record lane; JSON-exact values (checked by a
        dump/load round-trip equality) use the sidecar lane. Everything
        else — event-object lists, numpy-scalar dicts, tables whose AS
        numbers do not fit the packed i32 fields — is declined and stays
        memory-only.
        """
        if not (isinstance(value, tuple) and len(value) == 2):
            return False
        payload, deltas = value
        if deltas is not None and not isinstance(deltas, dict):
            return False
        extra: dict[str, Any] = {}
        if isinstance(payload, FlowTable):
            try:
                records = payload.to_structured()
            except ValueError:
                return False
            extra["kind"] = "table"
        else:
            try:
                if json.loads(json.dumps(payload)) != payload:
                    return False
            except (TypeError, ValueError):
                return False
            records = np.empty(0, dtype=RECORD_DTYPE)
            extra["kind"] = "json"
            extra["value"] = payload
        digest = key_digest(key)
        data_path = self._data_path(digest)
        sidecar = {
            "schema": SIDECAR_SCHEMA,
            "key": repr(key),
            "n_records": len(records),
            "sha256": hashlib.sha256(records).hexdigest(),
            "deltas": deltas,
            **extra,
        }
        with self._lock:
            tmp_data = data_path.with_suffix(".rfl.tmp")
            tmp_sidecar = self._sidecar_path(digest).with_suffix(".json.tmp")
            try:
                with tmp_data.open("wb") as fh:
                    fh.write(HEADER.pack(MAGIC, len(records)))
                    fh.write(records.tobytes())
                tmp_sidecar.write_text(json.dumps(sidecar))
                # Data before sidecar: a crash in between leaves an orphan
                # .rfl that the next get() treats as corrupt and deletes.
                os.replace(tmp_data, data_path)
                os.replace(tmp_sidecar, self._sidecar_path(digest))
            except OSError:
                for tmp in (tmp_data, tmp_sidecar):
                    try:
                        tmp.unlink()
                    except OSError:
                        pass
                return False
            size = HEADER.size + records.nbytes
            if digest in self._index:
                self.resident_bytes -= self._index.pop(digest)
            self._index[digest] = size
            self.resident_bytes += size
            self.puts += 1
            registry = metrics()
            registry.inc("cache.disk_puts")
            registry.inc("cache.disk_bytes_stored", size)
            while self.resident_bytes > self.max_bytes and len(self._index) > 1:
                oldest = next(iter(self._index))
                self._drop(oldest)
                self.evictions += 1
                registry.inc("cache.disk_evictions")
            registry.gauge("cache.disk_resident_bytes", self.resident_bytes)
            return True

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> None:
        """Delete every entry and reset the session counters."""
        with self._lock:
            for digest in list(self._index):
                self._drop(digest)
            self.hits = 0
            self.misses = 0
            self.puts = 0
            self.evictions = 0
            self.corrupt = 0
            self.resident_bytes = 0

    def stats(self) -> dict[str, int]:
        """Counters for reporting: entries, hits, misses, puts, corrupt, bytes."""
        with self._lock:
            return {
                "entries": len(self._index),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "corrupt": self.corrupt,
                "resident_bytes": self.resident_bytes,
            }

    def __len__(self) -> int:
        return len(self._index)
